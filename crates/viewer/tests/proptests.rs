//! Property-based tests for the Viewer: timeline ordering, query
//! consistency, visibility filtering, and renderer robustness.

use proptest::prelude::*;
use trips_data::{Duration, Timestamp};
use trips_dsm::builder::MallBuilder;
use trips_geom::IndoorPoint;
use trips_viewer::{ascii, Entry, MapView, SourceKind, SvgRenderer, Timeline, VisibilityControl};

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        -10.0f64..60.0,
        -10.0f64..40.0,
        0i16..2,
        0i64..10_000,
        0i64..600,
        0usize..4,
    )
        .prop_map(|(x, y, floor, start_s, dur_s, source)| {
            let source = SourceKind::all()[source];
            let start = Timestamp::from_millis(start_s * 1000);
            Entry {
                display_point: IndoorPoint::new(x, y, floor),
                start,
                end: start + Duration::from_secs(dur_s),
                source,
                label: format!("{} <&> at {start}", source.name()),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn timeline_sorted_and_navigator_consistent(entries in prop::collection::vec(arb_entry(), 0..60)) {
        let tl = Timeline::new(entries.clone());
        prop_assert_eq!(tl.len(), entries.len());
        for w in tl.entries().windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
        let nav_count = entries.iter().filter(|e| e.source == SourceKind::Semantics).count();
        prop_assert_eq!(tl.navigator_len(), nav_count);
        for e in tl.navigator() {
            prop_assert_eq!(e.source, SourceKind::Semantics);
        }
    }

    #[test]
    fn at_matches_covers(entries in prop::collection::vec(arb_entry(), 0..40), probe_s in 0i64..11_000) {
        let tl = Timeline::new(entries);
        let t = Timestamp::from_millis(probe_s * 1000);
        let hits = tl.at(t);
        for e in &hits {
            prop_assert!(e.covers(t));
        }
        let manual = tl.entries().iter().filter(|e| e.covers(t)).count();
        prop_assert_eq!(hits.len(), manual);
    }

    #[test]
    fn click_navigator_covers_clicked_range(entries in prop::collection::vec(arb_entry(), 1..40)) {
        let tl = Timeline::new(entries);
        for i in 0..tl.navigator_len() {
            let nav: Vec<&Entry> = tl.navigator().collect();
            let clicked = nav[i];
            let covered = tl.click_navigator(i).unwrap();
            prop_assert!(!covered.is_empty(), "at least the clicked entry");
            for e in covered {
                prop_assert!(e.overlaps(clicked.start, clicked.end));
            }
        }
    }

    #[test]
    fn visibility_filter_partition(entries in prop::collection::vec(arb_entry(), 0..40),
                                   hide in prop::collection::vec(0usize..4, 0..4)) {
        let mut vis = VisibilityControl::all_visible();
        for h in hide {
            vis.toggle(SourceKind::all()[h]);
        }
        let visible = vis.filter(&entries);
        for e in &visible {
            prop_assert!(vis.is_visible(e.source));
        }
        let hidden_count = entries.iter().filter(|e| !vis.is_visible(e.source)).count();
        prop_assert_eq!(visible.len() + hidden_count, entries.len());
    }

    #[test]
    fn svg_render_never_panics_and_is_wellformed(entries in prop::collection::vec(arb_entry(), 0..30)) {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let renderer = SvgRenderer::new(MapView::fit_to_floor(&dsm, 0, 640.0, 480.0));
        let svg = renderer.render(&dsm, &entries, &VisibilityControl::all_visible());
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>"));
        // Labels contain <&> — must always be escaped.
        prop_assert!(!svg.contains("<&>"), "unescaped label leaked");
        // Balanced open/close for the elements we emit.
        prop_assert_eq!(svg.matches("<title>").count(), svg.matches("</title>").count());
    }

    #[test]
    fn ascii_render_never_panics(entries in prop::collection::vec(arb_entry(), 0..30),
                                 w in 4usize..100, h in 4usize..40) {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let art = ascii::render(&dsm, 0, &entries, &VisibilityControl::all_visible(), w, h);
        let lines: Vec<&str> = art.lines().collect();
        prop_assert_eq!(lines.len(), h + 2);
        for line in &lines {
            prop_assert_eq!(line.chars().count(), w + 2);
        }
    }

    #[test]
    fn playback_instants_cover_span(entries in prop::collection::vec(arb_entry(), 1..30), step_s in 1i64..300) {
        let tl = Timeline::new(entries);
        let frames = tl.playback_instants(Duration::from_secs(step_s));
        let (start, end) = tl.span().unwrap();
        prop_assert!(!frames.is_empty());
        prop_assert_eq!(frames[0], start);
        prop_assert!(*frames.last().unwrap() <= end);
        for w in frames.windows(2) {
            prop_assert_eq!(w[1] - w[0], Duration::from_secs(step_s));
        }
    }
}
