//! Map-view state: floor switching, zoom and pan ("The map view is flexible
//! to click, drag and zoom in/out. … It allows a switch between different
//! floors", paper §2/§3).

use trips_dsm::DigitalSpaceModel;
use trips_geom::{BoundingBox, FloorId, Point};

/// The interactive map-view state and its world→screen transform.
#[derive(Debug, Clone, PartialEq)]
pub struct MapView {
    /// Currently displayed floor.
    pub floor: FloorId,
    /// World point at the viewport center.
    pub center: Point,
    /// Pixels per metre.
    pub zoom: f64,
    /// Viewport size in pixels.
    pub width: f64,
    pub height: f64,
}

impl MapView {
    /// Creates a view fitted to the given floor of a DSM.
    pub fn fit_to_floor(dsm: &DigitalSpaceModel, floor: FloorId, width: f64, height: f64) -> Self {
        let bb = dsm.floor_bbox(floor);
        Self::fit_to_bbox(&bb, floor, width, height)
    }

    /// Creates a view fitted to a bounding box with a 5 % margin.
    pub fn fit_to_bbox(bb: &BoundingBox, floor: FloorId, width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "viewport must be positive");
        let (center, zoom) = if bb.is_empty() || bb.width() == 0.0 || bb.height() == 0.0 {
            (Point::origin(), 1.0)
        } else {
            let zx = width / (bb.width() * 1.1);
            let zy = height / (bb.height() * 1.1);
            (bb.center(), zx.min(zy))
        };
        MapView {
            floor,
            center,
            zoom,
            width,
            height,
        }
    }

    /// Switches the displayed floor (keeps zoom/pan).
    pub fn switch_floor(&mut self, floor: FloorId) {
        self.floor = floor;
    }

    /// Zoom in/out by a factor around the viewport center.
    ///
    /// # Panics
    /// Panics on non-positive factors.
    pub fn zoom_by(&mut self, factor: f64) {
        assert!(factor > 0.0, "zoom factor must be positive");
        self.zoom *= factor;
    }

    /// Drag by screen-pixel deltas (content follows the pointer).
    pub fn drag(&mut self, dx_px: f64, dy_px: f64) {
        self.center.x -= dx_px / self.zoom;
        // Screen y grows downward; world y grows upward.
        self.center.y += dy_px / self.zoom;
    }

    /// World → screen transform.
    pub fn to_screen(&self, p: Point) -> (f64, f64) {
        (
            self.width / 2.0 + (p.x - self.center.x) * self.zoom,
            self.height / 2.0 - (p.y - self.center.y) * self.zoom,
        )
    }

    /// Screen → world transform (clicks).
    pub fn to_world(&self, sx: f64, sy: f64) -> Point {
        Point::new(
            self.center.x + (sx - self.width / 2.0) / self.zoom,
            self.center.y - (sy - self.height / 2.0) / self.zoom,
        )
    }

    /// Whether a world point is currently visible.
    pub fn is_visible(&self, p: Point) -> bool {
        let (sx, sy) = self.to_screen(p);
        (0.0..=self.width).contains(&sx) && (0.0..=self.height).contains(&sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_dsm::builder::MallBuilder;

    #[test]
    fn fit_covers_the_floor() {
        let dsm = MallBuilder::new().shops_per_row(4).build();
        let v = MapView::fit_to_floor(&dsm, 0, 800.0, 600.0);
        let bb = dsm.floor_bbox(0);
        assert!(v.is_visible(bb.min));
        assert!(v.is_visible(bb.max));
        assert!(v.is_visible(bb.center()));
    }

    #[test]
    fn roundtrip_world_screen() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        let p = Point::new(12.3, 7.7);
        let (sx, sy) = v.to_screen(p);
        let back = v.to_world(sx, sy);
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn zoom_changes_scale() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let mut v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        let before = v.zoom;
        v.zoom_by(2.0);
        assert_eq!(v.zoom, before * 2.0);
        // Center stays put on screen.
        let (cx, cy) = v.to_screen(v.center);
        assert!((cx - 320.0).abs() < 1e-9 && (cy - 240.0).abs() < 1e-9);
    }

    #[test]
    fn drag_moves_content_with_pointer() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let mut v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        let p = v.center;
        let (sx0, sy0) = v.to_screen(p);
        v.drag(50.0, -20.0);
        let (sx1, sy1) = v.to_screen(p);
        assert!((sx1 - sx0 - 50.0).abs() < 1e-9, "content follows drag in x");
        assert!((sy1 - sy0 + 20.0).abs() < 1e-9, "content follows drag in y");
    }

    #[test]
    fn floor_switch() {
        let dsm = MallBuilder::new().floors(3).shops_per_row(3).build();
        let mut v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        v.switch_floor(2);
        assert_eq!(v.floor, 2);
    }

    #[test]
    fn screen_y_flips_world_y() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        let low = Point::new(v.center.x, v.center.y - 5.0);
        let high = Point::new(v.center.x, v.center.y + 5.0);
        assert!(
            v.to_screen(high).1 < v.to_screen(low).1,
            "higher world y renders higher (smaller sy)"
        );
    }

    #[test]
    fn degenerate_bbox_safe() {
        let v = MapView::fit_to_bbox(&trips_geom::BoundingBox::empty(), 0, 100.0, 100.0);
        assert_eq!(v.zoom, 1.0);
    }

    #[test]
    #[should_panic(expected = "zoom factor")]
    fn rejects_bad_zoom() {
        let dsm = MallBuilder::new().shops_per_row(2).build();
        let mut v = MapView::fit_to_floor(&dsm, 0, 640.0, 480.0);
        v.zoom_by(0.0);
    }
}
