//! Timeline control (paper §3, "Map View and Timeline Control").
//!
//! "For the timeline, we use the mobility semantics as the primary navigator
//! as it is the most concise compared to other data sources. When clicking a
//! mobility semantics entry on the timeline, all relevant data entries
//! covered by its time range will be displayed on map view synchronously."

use crate::entry::{Entry, SourceKind};
use trips_data::{Duration, Timestamp};

/// A multi-source timeline with the semantics sequence as primary navigator.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// All entries from all sources, sorted by start time.
    entries: Vec<Entry>,
    /// Indices of semantics entries (the navigator), sorted by start time.
    navigator: Vec<usize>,
}

impl Timeline {
    /// Builds a timeline from entries of any sources.
    pub fn new(mut entries: Vec<Entry>) -> Self {
        entries.sort_by_key(|e| (e.start, e.end));
        let navigator = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.source == SourceKind::Semantics)
            .map(|(i, _)| i)
            .collect();
        Timeline { entries, navigator }
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The navigator entries (semantics), in time order.
    pub fn navigator(&self) -> impl Iterator<Item = &Entry> {
        self.navigator.iter().map(|&i| &self.entries[i])
    }

    /// Number of navigator entries.
    pub fn navigator_len(&self) -> usize {
        self.navigator.len()
    }

    /// Timeline span (min start, max end); `None` when empty.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        let start = self.entries.first()?.start;
        let end = self.entries.iter().map(|e| e.end).max()?;
        Some((start, end))
    }

    /// "Clicking" the `i`-th navigator entry: returns all entries (any
    /// source) covered by its time range — what the map view displays
    /// synchronously.
    pub fn click_navigator(&self, i: usize) -> Option<Vec<&Entry>> {
        let &idx = self.navigator.get(i)?;
        let nav = &self.entries[idx];
        Some(
            self.entries
                .iter()
                .filter(|e| e.overlaps(nav.start, nav.end))
                .collect(),
        )
    }

    /// All entries covering instant `t` (the slider position).
    pub fn at(&self, t: Timestamp) -> Vec<&Entry> {
        self.entries.iter().filter(|e| e.covers(t)).collect()
    }

    /// Entries intersecting `[from, to]`.
    pub fn in_range(&self, from: Timestamp, to: Timestamp) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| e.overlaps(from, to))
            .collect()
    }

    /// Slider playback: instants from span start to end at `step`
    /// (animation frames).
    pub fn playback_instants(&self, step: Duration) -> Vec<Timestamp> {
        assert!(step.as_millis() > 0, "step must be positive");
        let Some((start, end)) = self.span() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            out.push(t);
            t = t + step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_geom::IndoorPoint;

    fn entry(source: SourceKind, start_s: i64, end_s: i64) -> Entry {
        Entry {
            display_point: IndoorPoint::new(0.0, 0.0, 0),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            source,
            label: format!("{}:{start_s}-{end_s}", source.name()),
        }
    }

    fn sample() -> Timeline {
        Timeline::new(vec![
            entry(SourceKind::Raw, 5, 5),
            entry(SourceKind::Raw, 15, 15),
            entry(SourceKind::Raw, 40, 40),
            entry(SourceKind::Cleaned, 5, 5),
            entry(SourceKind::Cleaned, 15, 15),
            entry(SourceKind::Semantics, 0, 20),
            entry(SourceKind::Semantics, 30, 50),
        ])
    }

    #[test]
    fn entries_sorted_and_navigator_filtered() {
        let tl = sample();
        assert_eq!(tl.len(), 7);
        for w in tl.entries().windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(tl.navigator_len(), 2);
        let firsts: Vec<Timestamp> = tl.navigator().map(|e| e.start).collect();
        assert_eq!(
            firsts,
            vec![Timestamp::from_millis(0), Timestamp::from_millis(30_000)]
        );
    }

    #[test]
    fn clicking_navigator_reveals_covered_entries() {
        let tl = sample();
        let covered = tl.click_navigator(0).unwrap();
        // First semantics spans 0-20 s: covers raw@5, raw@15, cleaned@5,
        // cleaned@15, itself. Not raw@40 or semantics@30-50.
        assert_eq!(covered.len(), 5, "{covered:#?}");
        assert!(covered
            .iter()
            .all(|e| e.start <= Timestamp::from_millis(20_000)));
        assert!(tl.click_navigator(5).is_none(), "out of range");
    }

    #[test]
    fn slider_at_instant() {
        let tl = sample();
        let at5 = tl.at(Timestamp::from_millis(5000));
        assert_eq!(at5.len(), 3, "raw@5, cleaned@5, semantics 0-20");
        let at25 = tl.at(Timestamp::from_millis(25_000));
        assert!(at25.is_empty(), "gap between the two semantics");
    }

    #[test]
    fn range_query() {
        let tl = sample();
        let r = tl.in_range(
            Timestamp::from_millis(18_000),
            Timestamp::from_millis(35_000),
        );
        // semantics 0-20 overlaps, semantics 30-50 overlaps; no raw records
        // inside (15 < 18, 40 > 35).
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn span_and_playback() {
        let tl = sample();
        let (s, e) = tl.span().unwrap();
        assert_eq!(s, Timestamp::from_millis(0));
        assert_eq!(e, Timestamp::from_millis(50_000));
        let frames = tl.playback_instants(Duration::from_secs(10));
        assert_eq!(frames.len(), 6, "0,10,20,30,40,50");
        assert!(Timeline::default()
            .playback_instants(Duration::from_secs(1))
            .is_empty());
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::new(vec![]);
        assert!(tl.is_empty());
        assert!(tl.span().is_none());
        assert!(tl.click_navigator(0).is_none());
        assert!(tl.at(Timestamp::from_millis(0)).is_empty());
    }
}
