//! Terminal (ASCII) map rendering — a quick-look counterpart to the SVG
//! view for logs, tests and headless environments.
//!
//! Regions render as letter fills (first letter of the region name), walls
//! and empty space as dots, and data entries as per-source markers drawn on
//! top: `r` raw, `c` cleaned, `g` ground truth, `S` semantics.

use crate::entry::{Entry, SourceKind};
use crate::legend::VisibilityControl;
use trips_dsm::DigitalSpaceModel;
use trips_geom::{FloorId, IndoorPoint, Point};

/// Marker characters per source.
fn marker(source: SourceKind) -> char {
    match source {
        SourceKind::Raw => 'r',
        SourceKind::Cleaned => 'c',
        SourceKind::GroundTruth => 'g',
        SourceKind::Semantics => 'S',
    }
}

/// Renders one floor as a `width × height` character grid.
pub fn render(
    dsm: &DigitalSpaceModel,
    floor: FloorId,
    entries: &[Entry],
    visibility: &VisibilityControl,
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    let bb = dsm.floor_bbox(floor);
    if bb.is_empty() {
        return format!("(floor {floor} is empty)\n");
    }
    let bb = bb.inflated(0.5);

    let cell_w = bb.width() / width as f64;
    let cell_h = bb.height() / height as f64;
    let mut grid = vec![vec!['.'; width]; height];

    // Region fills (sample the cell center).
    for (row, line) in grid.iter_mut().enumerate() {
        for (col, cell) in line.iter_mut().enumerate() {
            let world = Point::new(
                bb.min.x + (col as f64 + 0.5) * cell_w,
                // Row 0 is the top of the map (max y).
                bb.max.y - (row as f64 + 0.5) * cell_h,
            );
            if let Some(region) = dsm.region_at(&IndoorPoint { xy: world, floor }) {
                *cell = region
                    .name
                    .chars()
                    .next()
                    .unwrap_or('?')
                    .to_ascii_lowercase();
            }
        }
    }

    // Entry markers on top (later sources overwrite earlier ones).
    for source in SourceKind::all() {
        if !visibility.is_visible(source) {
            continue;
        }
        for e in entries
            .iter()
            .filter(|e| e.source == source && e.display_point.floor == floor)
        {
            let col = ((e.display_point.xy.x - bb.min.x) / cell_w) as isize;
            let row = ((bb.max.y - e.display_point.xy.y) / cell_h) as isize;
            if (0..width as isize).contains(&col) && (0..height as isize).contains(&row) {
                grid[row as usize][col as usize] = marker(source);
            }
        }
    }

    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    for line in grid {
        out.push('|');
        out.extend(line);
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::Timestamp;
    use trips_dsm::builder::MallBuilder;

    fn entry(source: SourceKind, x: f64, y: f64, floor: i16) -> Entry {
        Entry {
            display_point: IndoorPoint::new(x, y, floor),
            start: Timestamp::from_millis(0),
            end: Timestamp::from_millis(0),
            source,
            label: String::new(),
        }
    }

    #[test]
    fn grid_dimensions_and_frame() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let s = render(&dsm, 0, &[], &VisibilityControl::all_visible(), 40, 12);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 14, "12 rows + 2 frame lines");
        assert!(lines[0].starts_with("+--"));
        assert_eq!(lines[1].len(), 42, "40 cols + 2 frame chars");
    }

    #[test]
    fn regions_fill_with_letters() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let s = render(&dsm, 0, &[], &VisibilityControl::all_visible(), 60, 20);
        // Center Hall letter 'c' must appear (hallway band).
        assert!(s.contains('c'), "hall fill:\n{s}");
        // Shop letters n(ike)/a(didas)/u(niqlo) appear.
        assert!(s.contains('n') || s.contains('a') || s.contains('u'));
    }

    #[test]
    fn markers_overwrite_fills() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![
            entry(SourceKind::Raw, 5.0, 4.0, 0),
            entry(SourceKind::Semantics, 15.0, 11.0, 0),
        ];
        let s = render(&dsm, 0, &entries, &VisibilityControl::all_visible(), 60, 20);
        assert!(s.contains('r'), "raw marker:\n{s}");
        assert!(s.contains('S'), "semantics marker:\n{s}");
    }

    #[test]
    fn hidden_sources_not_drawn() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Semantics, 15.0, 11.0, 0)];
        let mut vis = VisibilityControl::all_visible();
        vis.toggle(SourceKind::Semantics);
        let s = render(&dsm, 0, &entries, &vis, 60, 20);
        assert!(!s.contains('S'));
    }

    #[test]
    fn out_of_bounds_entries_ignored() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Raw, 9999.0, 9999.0, 0)];
        // Must not panic.
        let s = render(&dsm, 0, &entries, &VisibilityControl::all_visible(), 30, 10);
        assert!(!s.contains('r'));
    }

    #[test]
    fn empty_floor_message() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let s = render(&dsm, 9, &[], &VisibilityControl::all_visible(), 30, 10);
        assert!(s.contains("empty"));
    }

    #[test]
    fn orientation_north_is_up() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        // A raw marker in the NORTH shop row (high y) must land in the top
        // half of the grid.
        let b = MallBuilder::new().shops_per_row(3);
        let north_y = b.mall_depth() - 2.0;
        let entries = vec![entry(SourceKind::Raw, 5.0, north_y, 0)];
        let s = render(&dsm, 0, &entries, &VisibilityControl::all_visible(), 40, 16);
        let lines: Vec<&str> = s.lines().collect();
        let row = lines.iter().position(|l| l.contains('r')).unwrap();
        assert!(
            row < lines.len() / 2,
            "north marker near the top, got row {row}:\n{s}"
        );
    }
}
