//! Visibility control (paper §3): "a legend panel allows toggling the
//! visibility of data from each source. It helps users focus on the parts of
//! their interest when comparing data from different sources to assess the
//! translation result."

use crate::entry::{Entry, SourceKind};
use std::collections::BTreeSet;

/// Per-source visibility toggles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibilityControl {
    hidden: BTreeSet<SourceKind>,
}

impl Default for VisibilityControl {
    fn default() -> Self {
        Self::all_visible()
    }
}

impl VisibilityControl {
    /// All sources visible.
    pub fn all_visible() -> Self {
        VisibilityControl {
            hidden: BTreeSet::new(),
        }
    }

    /// Whether a source is currently visible.
    pub fn is_visible(&self, source: SourceKind) -> bool {
        !self.hidden.contains(&source)
    }

    /// Toggles one source; returns the new visibility.
    pub fn toggle(&mut self, source: SourceKind) -> bool {
        if !self.hidden.remove(&source) {
            self.hidden.insert(source);
        }
        self.is_visible(source)
    }

    /// Shows exactly one source, hiding the rest (focus mode).
    pub fn solo(&mut self, source: SourceKind) {
        self.hidden = SourceKind::all()
            .into_iter()
            .filter(|s| *s != source)
            .collect();
    }

    /// Shows everything again.
    pub fn show_all(&mut self) {
        self.hidden.clear();
    }

    /// Filters an entry slice down to the visible sources.
    pub fn filter<'e>(&self, entries: &'e [Entry]) -> Vec<&'e Entry> {
        entries
            .iter()
            .filter(|e| self.is_visible(e.source))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::Timestamp;
    use trips_geom::IndoorPoint;

    fn entry(source: SourceKind) -> Entry {
        Entry {
            display_point: IndoorPoint::new(0.0, 0.0, 0),
            start: Timestamp::from_millis(0),
            end: Timestamp::from_millis(0),
            source,
            label: String::new(),
        }
    }

    #[test]
    fn default_shows_everything() {
        let v = VisibilityControl::default();
        for s in SourceKind::all() {
            assert!(v.is_visible(s));
        }
    }

    #[test]
    fn toggle_roundtrip() {
        let mut v = VisibilityControl::all_visible();
        assert!(!v.toggle(SourceKind::Raw), "now hidden");
        assert!(!v.is_visible(SourceKind::Raw));
        assert!(v.is_visible(SourceKind::Cleaned), "others unaffected");
        assert!(v.toggle(SourceKind::Raw), "visible again");
    }

    #[test]
    fn solo_focus() {
        let mut v = VisibilityControl::all_visible();
        v.solo(SourceKind::Semantics);
        assert!(v.is_visible(SourceKind::Semantics));
        assert!(!v.is_visible(SourceKind::Raw));
        assert!(!v.is_visible(SourceKind::Cleaned));
        assert!(!v.is_visible(SourceKind::GroundTruth));
        v.show_all();
        assert!(v.is_visible(SourceKind::Raw));
    }

    #[test]
    fn filter_respects_toggles() {
        let entries = vec![
            entry(SourceKind::Raw),
            entry(SourceKind::Cleaned),
            entry(SourceKind::Semantics),
        ];
        let mut v = VisibilityControl::all_visible();
        v.toggle(SourceKind::Raw);
        let visible = v.filter(&entries);
        assert_eq!(visible.len(), 2);
        assert!(visible.iter().all(|e| e.source != SourceKind::Raw));
    }
}
