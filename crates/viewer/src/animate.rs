//! Animated playback: "One can slide the timeline to play an animated,
//! semantics-enriched movement for a selected device" (paper §3).

use crate::entry::{Entry, SourceKind};
use crate::timeline::Timeline;
use trips_data::{Duration, Timestamp};

/// One playback frame: the instant and everything visible at it.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub t: Timestamp,
    /// Entries active at `t` (cloned snapshots).
    pub active: Vec<Entry>,
    /// The semantics label narrating this frame, if any (the enrichment).
    pub caption: Option<String>,
}

/// Builds playback frames by sliding over the timeline at `step`.
///
/// Point entries (records, truth samples) are considered active within
/// `point_linger` of their instant so they remain briefly visible as the
/// animation passes them.
pub fn frames(timeline: &Timeline, step: Duration, point_linger: Duration) -> Vec<Frame> {
    timeline
        .playback_instants(step)
        .into_iter()
        .map(|t| {
            let active: Vec<Entry> = timeline
                .entries()
                .iter()
                .filter(|e| {
                    if e.start == e.end {
                        // Point entry: linger window.
                        e.start <= t && t - e.start <= point_linger
                    } else {
                        e.covers(t)
                    }
                })
                .cloned()
                .collect();
            let caption = active
                .iter()
                .find(|e| e.source == SourceKind::Semantics)
                .map(|e| e.label.clone());
            Frame { t, active, caption }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_geom::IndoorPoint;

    fn entry(source: SourceKind, start_s: i64, end_s: i64, label: &str) -> Entry {
        Entry {
            display_point: IndoorPoint::new(0.0, 0.0, 0),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            source,
            label: label.to_string(),
        }
    }

    fn timeline() -> Timeline {
        Timeline::new(vec![
            entry(SourceKind::Raw, 0, 0, "r0"),
            entry(SourceKind::Raw, 10, 10, "r10"),
            entry(SourceKind::Raw, 20, 20, "r20"),
            entry(SourceKind::Semantics, 0, 15, "(stay, Nike, ..)"),
            entry(SourceKind::Semantics, 16, 30, "(pass-by, Hall, ..)"),
        ])
    }

    #[test]
    fn frames_cover_span() {
        let f = frames(&timeline(), Duration::from_secs(5), Duration::from_secs(4));
        assert_eq!(f.len(), 7, "0,5,10,15,20,25,30");
        assert_eq!(f[0].t, Timestamp::from_millis(0));
        assert_eq!(f.last().unwrap().t, Timestamp::from_millis(30_000));
    }

    #[test]
    fn captions_narrate_semantics() {
        let f = frames(&timeline(), Duration::from_secs(5), Duration::from_secs(4));
        assert_eq!(f[0].caption.as_deref(), Some("(stay, Nike, ..)"));
        assert_eq!(f[4].caption.as_deref(), Some("(pass-by, Hall, ..)"));
    }

    #[test]
    fn point_entries_linger_then_fade() {
        let f = frames(&timeline(), Duration::from_secs(2), Duration::from_secs(3));
        // At t=12 the raw record from t=10 still lingers (within 3 s).
        let at12 = f
            .iter()
            .find(|fr| fr.t == Timestamp::from_millis(12_000))
            .unwrap();
        assert!(at12.active.iter().any(|e| e.label == "r10"));
        // At t=14 it has faded.
        let at14 = f
            .iter()
            .find(|fr| fr.t == Timestamp::from_millis(14_000))
            .unwrap();
        assert!(!at14.active.iter().any(|e| e.label == "r10"));
    }

    #[test]
    fn empty_timeline_no_frames() {
        let tl = Timeline::new(vec![]);
        assert!(frames(&tl, Duration::from_secs(1), Duration::from_secs(1)).is_empty());
    }
}
