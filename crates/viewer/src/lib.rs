//! The Viewer: visual tracing of all mobility data involved in a
//! translation (paper §2/§3).
//!
//! Multiple data kinds — raw and cleaned positioning sequences, the ground
//! truth trajectory, and the mobility semantics sequence — "have different
//! representations and characteristics, making it hard to process them in a
//! unified way" (paper §3). The Viewer solves this with one abstraction:
//!
//! > "We abstract each data sequence as a timeline of entries, each consists
//! > of a display point and a time range."
//!
//! * [`entry`] — that abstraction ([`Entry`], [`SourceKind`]);
//! * [`timeline`] — the timeline control with the semantics sequence as the
//!   primary navigator; clicking an entry reveals all covered entries;
//! * [`mapview`] — floor switching, zoom and pan state;
//! * [`legend`] — per-source visibility toggling;
//! * [`svg`] — the map-view renderer (SVG artifacts stand in for the web
//!   frontend, see DESIGN.md §2);
//! * [`ascii`] — a terminal renderer for quick inspection;
//! * [`animate`] — the animated, semantics-enriched playback.

pub mod animate;
pub mod ascii;
pub mod entry;
pub mod legend;
pub mod mapview;
pub mod svg;
pub mod timeline;

pub use entry::{Entry, SourceKind};
pub use legend::VisibilityControl;
pub use mapview::MapView;
pub use svg::SvgRenderer;
pub use timeline::Timeline;
