//! The unified mobility-data abstraction: a timeline of entries.

use trips_annotate::MobilitySemantics;
use trips_data::{RawRecord, Timestamp};
use trips_dsm::DigitalSpaceModel;
use trips_geom::IndoorPoint;

/// Which data sequence an entry came from (the legend's toggle unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceKind {
    /// Raw positioning records as ingested.
    Raw,
    /// Records after the Cleaning layer.
    Cleaned,
    /// The ground-truth trajectory (available for simulated data).
    GroundTruth,
    /// The mobility semantics sequence (observed or inferred).
    Semantics,
}

impl SourceKind {
    /// Display name used in the legend panel.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Raw => "raw",
            SourceKind::Cleaned => "cleaned",
            SourceKind::GroundTruth => "ground-truth",
            SourceKind::Semantics => "semantics",
        }
    }

    /// Render colour (SVG).
    pub fn color(self) -> &'static str {
        match self {
            SourceKind::Raw => "#d62728",
            SourceKind::Cleaned => "#1f77b4",
            SourceKind::GroundTruth => "#2ca02c",
            SourceKind::Semantics => "#9467bd",
        }
    }

    /// All source kinds in render order (background first).
    pub fn all() -> [SourceKind; 4] {
        [
            SourceKind::GroundTruth,
            SourceKind::Raw,
            SourceKind::Cleaned,
            SourceKind::Semantics,
        ]
    }
}

/// One timeline entry: "a display point and a time range" (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Where this entry renders on the map view.
    pub display_point: IndoorPoint,
    /// The entry's coverage of the timeline.
    pub start: Timestamp,
    pub end: Timestamp,
    pub source: SourceKind,
    /// Tooltip text (the semantics triplet, or the record line).
    pub label: String,
}

impl Entry {
    /// Abstracts a positioning record: "its display point and time range are
    /// the location and timestamp in that record".
    pub fn from_record(r: &RawRecord, source: SourceKind) -> Entry {
        Entry {
            display_point: r.location,
            start: r.ts,
            end: r.ts,
            source,
            label: r.to_string(),
        }
    }

    /// Abstracts a ground-truth sample.
    pub fn from_truth(ts: Timestamp, p: IndoorPoint) -> Entry {
        Entry {
            display_point: p,
            start: ts,
            end: ts,
            source: SourceKind::GroundTruth,
            label: format!("truth {p} @ {ts}"),
        }
    }

    /// Abstracts a mobility semantics: "its display point is selected from
    /// the positioning location(s) in \[its\] corresponding raw record(s), and
    /// its time range uses the temporal annotation directly". Inferred
    /// semantics have no raw records; they display at the region anchor.
    pub fn from_semantics(s: &MobilitySemantics, dsm: &DigitalSpaceModel) -> Entry {
        let display_point = s.display_point.unwrap_or_else(|| {
            let (xy, floor) = dsm
                .region(s.region)
                .map(|r| (r.anchor(), r.floor))
                .unwrap_or((trips_geom::Point::origin(), 0));
            IndoorPoint { xy, floor }
        });
        Entry {
            display_point,
            start: s.start,
            end: s.end,
            source: SourceKind::Semantics,
            label: s.to_string(),
        }
    }

    /// Whether the entry's range covers instant `t` (closed interval).
    pub fn covers(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the entry's range intersects `[from, to]`.
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.start <= to && self.end >= from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::DeviceId;
    use trips_dsm::builder::MallBuilder;

    #[test]
    fn record_entry_is_instantaneous() {
        let r = RawRecord::new(
            DeviceId::new("d"),
            1.0,
            2.0,
            3,
            Timestamp::from_millis(5000),
        );
        let e = Entry::from_record(&r, SourceKind::Raw);
        assert_eq!(e.start, e.end);
        assert_eq!(e.display_point, r.location);
        assert!(e.covers(r.ts));
        assert!(!e.covers(Timestamp::from_millis(5001)));
    }

    #[test]
    fn semantics_entry_uses_temporal_annotation() {
        let dsm = MallBuilder::new().shops_per_row(2).build();
        let region = dsm.regions().next().unwrap();
        let s = MobilitySemantics {
            device: DeviceId::new("d"),
            event: "stay".into(),
            region: region.id,
            region_name: region.name.clone(),
            start: Timestamp::from_millis(0),
            end: Timestamp::from_millis(60_000),
            inferred: false,
            display_point: Some(IndoorPoint::new(3.0, 3.0, 0)),
        };
        let e = Entry::from_semantics(&s, &dsm);
        assert_eq!(e.start, s.start);
        assert_eq!(e.end, s.end);
        assert_eq!(e.display_point, IndoorPoint::new(3.0, 3.0, 0));
        assert!(e.covers(Timestamp::from_millis(30_000)));
        assert!(e.label.contains("stay"));
    }

    #[test]
    fn inferred_semantics_fall_back_to_region_anchor() {
        let dsm = MallBuilder::new().shops_per_row(2).build();
        let region = dsm.regions().next().unwrap();
        let s = MobilitySemantics {
            device: DeviceId::new("d"),
            event: "pass-by".into(),
            region: region.id,
            region_name: region.name.clone(),
            start: Timestamp::from_millis(0),
            end: Timestamp::from_millis(1000),
            inferred: true,
            display_point: None,
        };
        let e = Entry::from_semantics(&s, &dsm);
        assert!(region.contains(e.display_point.xy), "anchor inside region");
        assert_eq!(e.display_point.floor, region.floor);
    }

    #[test]
    fn overlap_semantics() {
        let e = Entry {
            display_point: IndoorPoint::new(0.0, 0.0, 0),
            start: Timestamp::from_millis(100),
            end: Timestamp::from_millis(200),
            source: SourceKind::Cleaned,
            label: String::new(),
        };
        assert!(e.overlaps(Timestamp::from_millis(150), Timestamp::from_millis(300)));
        assert!(e.overlaps(Timestamp::from_millis(200), Timestamp::from_millis(300)));
        assert!(!e.overlaps(Timestamp::from_millis(201), Timestamp::from_millis(300)));
    }

    #[test]
    fn source_kind_metadata() {
        assert_eq!(SourceKind::Raw.name(), "raw");
        assert_eq!(SourceKind::all().len(), 4);
        // Colors distinct.
        let colors: std::collections::BTreeSet<&str> =
            SourceKind::all().iter().map(|s| s.color()).collect();
        assert_eq!(colors.len(), 4);
    }
}
