//! SVG map-view renderer.
//!
//! Stands in for the paper's web frontend (Figure 4): it renders one floor
//! of the DSM with any combination of overlaid mobility-data entries and a
//! legend panel, honouring the [`VisibilityControl`]. The output is a
//! standalone SVG document.

use crate::entry::{Entry, SourceKind};
use crate::legend::VisibilityControl;
use crate::mapview::MapView;
use std::fmt::Write as _;
use trips_dsm::entity::{EntityKind, Footprint};
use trips_dsm::DigitalSpaceModel;

/// XML-escapes a label.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// The SVG renderer.
#[derive(Debug, Clone)]
pub struct SvgRenderer {
    pub view: MapView,
    /// Render region name labels.
    pub show_labels: bool,
    /// Render the legend panel.
    pub show_legend: bool,
}

impl SvgRenderer {
    /// Creates a renderer over a map view.
    pub fn new(view: MapView) -> Self {
        SvgRenderer {
            view,
            show_labels: true,
            show_legend: true,
        }
    }

    /// Renders the current floor plus visible entries into an SVG document.
    pub fn render(
        &self,
        dsm: &DigitalSpaceModel,
        entries: &[Entry],
        visibility: &VisibilityControl,
    ) -> String {
        let mut svg = String::with_capacity(16 * 1024);
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"##,
            w = self.view.width,
            h = self.view.height
        );
        svg.push_str(r##"<rect width="100%" height="100%" fill="#fafafa"/>"##);

        self.render_floor(&mut svg, dsm);
        self.render_regions(&mut svg, dsm);
        self.render_entries(&mut svg, entries, visibility);
        if self.show_legend {
            self.render_legend(&mut svg, visibility);
        }

        svg.push_str("</svg>");
        svg
    }

    fn polygon_points(&self, poly: &trips_geom::Polygon) -> String {
        poly.vertices()
            .iter()
            .map(|v| {
                let (x, y) = self.view.to_screen(*v);
                format!("{x:.1},{y:.1}")
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn render_floor(&self, svg: &mut String, dsm: &DigitalSpaceModel) {
        for e in dsm.entities_on_floor(self.view.floor) {
            match (&e.footprint, e.kind) {
                (Footprint::Area(poly), kind) => {
                    let (fill, stroke) = match kind {
                        EntityKind::Hallway => ("#f2f2f2", "#999999"),
                        EntityKind::Staircase => ("#ffe9c6", "#b8860b"),
                        EntityKind::Obstacle => ("#dddddd", "#555555"),
                        _ => ("#ffffff", "#444444"),
                    };
                    let _ = write!(
                        svg,
                        r##"<polygon points="{}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"##,
                        self.polygon_points(poly)
                    );
                }
                (Footprint::Opening { anchor, width }, _) => {
                    let (x, y) = self.view.to_screen(*anchor);
                    let r = (width * self.view.zoom / 2.0).max(2.0);
                    let _ = write!(
                        svg,
                        r##"<circle cx="{x:.1}" cy="{y:.1}" r="{r:.1}" fill="#8b4513" class="door"/>"##
                    );
                }
                (Footprint::Line(line), _) => {
                    let pts: Vec<String> = line
                        .points()
                        .iter()
                        .map(|p| {
                            let (x, y) = self.view.to_screen(*p);
                            format!("{x:.1},{y:.1}")
                        })
                        .collect();
                    let _ = write!(
                        svg,
                        r##"<polyline points="{}" fill="none" stroke="#222222" stroke-width="2"/>"##,
                        pts.join(" ")
                    );
                }
            }
        }
    }

    fn render_regions(&self, svg: &mut String, dsm: &DigitalSpaceModel) {
        for r in dsm.regions_on_floor(self.view.floor) {
            for poly in &r.polygons {
                let _ = write!(
                    svg,
                    r##"<polygon points="{}" fill="{}" fill-opacity="0.25" stroke="{}" stroke-width="1" class="region"/>"##,
                    self.polygon_points(poly),
                    r.tag.style,
                    r.tag.style
                );
            }
            if self.show_labels {
                let (x, y) = self.view.to_screen(r.anchor());
                let _ = write!(
                    svg,
                    r##"<text x="{x:.1}" y="{y:.1}" font-size="9" text-anchor="middle" fill="#333333">{}</text>"##,
                    escape(&r.name)
                );
            }
        }
    }

    fn render_entries(&self, svg: &mut String, entries: &[Entry], visibility: &VisibilityControl) {
        // Render per source in a stable order so semantics draw on top.
        for source in SourceKind::all() {
            if !visibility.is_visible(source) {
                continue;
            }
            for e in entries
                .iter()
                .filter(|e| e.source == source && e.display_point.floor == self.view.floor)
            {
                let (x, y) = self.view.to_screen(e.display_point.xy);
                match source {
                    SourceKind::Semantics => {
                        // Diamond marker with tooltip label.
                        let _ = write!(
                            svg,
                            r##"<path d="M {x:.1} {y0:.1} L {x1:.1} {y:.1} L {x:.1} {y1:.1} L {x0:.1} {y:.1} Z" fill="{c}" class="entry-semantics"><title>{t}</title></path>"##,
                            y0 = y - 6.0,
                            x1 = x + 6.0,
                            y1 = y + 6.0,
                            x0 = x - 6.0,
                            c = source.color(),
                            t = escape(&e.label)
                        );
                    }
                    _ => {
                        let _ = write!(
                            svg,
                            r##"<circle cx="{x:.1}" cy="{y:.1}" r="2.5" fill="{c}" fill-opacity="0.8" class="entry-{n}"><title>{t}</title></circle>"##,
                            c = source.color(),
                            n = source.name(),
                            t = escape(&e.label)
                        );
                    }
                }
            }
        }
    }

    fn render_legend(&self, svg: &mut String, visibility: &VisibilityControl) {
        let _ = write!(
            svg,
            r##"<g class="legend"><rect x="8" y="8" width="120" height="{}" fill="white" stroke="#999999"/>"##,
            10 + 16 * SourceKind::all().len()
        );
        for (i, source) in SourceKind::all().iter().enumerate() {
            let y = 22 + i * 16;
            let opacity = if visibility.is_visible(*source) {
                1.0
            } else {
                0.25
            };
            let _ = write!(
                svg,
                r##"<circle cx="18" cy="{cy}" r="4" fill="{c}" fill-opacity="{opacity}"/><text x="28" y="{ty}" font-size="10" fill-opacity="{opacity}">{n}</text>"##,
                cy = y,
                ty = y + 3,
                c = source.color(),
                n = source.name()
            );
        }
        svg.push_str("</g>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::Timestamp;
    use trips_dsm::builder::MallBuilder;
    use trips_geom::IndoorPoint;

    fn entry(source: SourceKind, x: f64, y: f64, floor: i16) -> Entry {
        Entry {
            display_point: IndoorPoint::new(x, y, floor),
            start: Timestamp::from_millis(0),
            end: Timestamp::from_millis(1000),
            source,
            label: format!("<{}> & \"label\"", source.name()),
        }
    }

    fn renderer(dsm: &DigitalSpaceModel) -> SvgRenderer {
        SvgRenderer::new(MapView::fit_to_floor(dsm, 0, 800.0, 600.0))
    }

    use trips_dsm::DigitalSpaceModel;

    #[test]
    fn renders_floor_structure() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let svg = renderer(&dsm).render(&dsm, &[], &VisibilityControl::all_visible());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 6 shops + hallway + 2 staircases = 9 area polygons at least,
        // plus region overlays.
        assert!(svg.matches("<polygon").count() >= 9);
        // 6 doors.
        assert!(svg.matches(r##"class="door""##).count() == 6);
        // Region labels present.
        assert!(svg.contains("Center Hall"));
        assert!(svg.contains("Nike"));
    }

    #[test]
    fn entries_render_with_source_classes() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![
            entry(SourceKind::Raw, 5.0, 5.0, 0),
            entry(SourceKind::Cleaned, 6.0, 5.0, 0),
            entry(SourceKind::Semantics, 7.0, 5.0, 0),
        ];
        let svg = renderer(&dsm).render(&dsm, &entries, &VisibilityControl::all_visible());
        assert!(svg.contains(r##"class="entry-raw""##));
        assert!(svg.contains(r##"class="entry-cleaned""##));
        assert!(svg.contains(r##"class="entry-semantics""##));
    }

    #[test]
    fn hidden_sources_not_rendered() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Raw, 5.0, 5.0, 0)];
        let mut vis = VisibilityControl::all_visible();
        vis.toggle(SourceKind::Raw);
        let svg = renderer(&dsm).render(&dsm, &entries, &vis);
        assert!(!svg.contains(r##"class="entry-raw""##));
    }

    #[test]
    fn other_floor_entries_not_rendered() {
        let dsm = MallBuilder::new().floors(2).shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Raw, 5.0, 5.0, 1)];
        let svg = renderer(&dsm).render(&dsm, &entries, &VisibilityControl::all_visible());
        assert!(
            !svg.contains(r##"class="entry-raw""##),
            "floor 1 entry on floor 0 view"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Raw, 5.0, 5.0, 0)];
        let svg = renderer(&dsm).render(&dsm, &entries, &VisibilityControl::all_visible());
        assert!(svg.contains("&lt;raw&gt;"));
        assert!(svg.contains("&amp;"));
        assert!(!svg.contains("<raw>"));
    }

    #[test]
    fn legend_lists_all_sources() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let svg = renderer(&dsm).render(&dsm, &[], &VisibilityControl::all_visible());
        for s in SourceKind::all() {
            assert!(svg.contains(s.name()), "legend lists {}", s.name());
        }
        // Legend can be disabled.
        let mut r = renderer(&dsm);
        r.show_legend = false;
        let svg2 = r.render(&dsm, &[], &VisibilityControl::all_visible());
        assert!(!svg2.contains(r##"class="legend""##));
    }

    #[test]
    fn deterministic_output() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let entries = vec![entry(SourceKind::Cleaned, 6.0, 5.0, 0)];
        let a = renderer(&dsm).render(&dsm, &entries, &VisibilityControl::all_visible());
        let b = renderer(&dsm).render(&dsm, &entries, &VisibilityControl::all_visible());
        assert_eq!(a, b);
    }

    #[test]
    fn staircase_styled_distinctly() {
        let dsm = MallBuilder::new().shops_per_row(3).build();
        let svg = renderer(&dsm).render(&dsm, &[], &VisibilityControl::all_visible());
        assert!(svg.contains("#ffe9c6"), "staircase fill present");
    }
}
