use crate::{BoundingBox, Point, Segment, EPSILON};
use serde::{Deserialize, Serialize};

/// An open chain of connected segments.
///
/// Polylines model walls in the drawing tool, the geometry of walking paths
/// returned by the DSM's distance engine, and cleaned trajectories in the
/// Viewer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline.
    ///
    /// # Panics
    /// Panics if fewer than 2 points are supplied.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(
            points.len() >= 2,
            "polyline needs at least 2 points, got {}",
            points.len()
        );
        Polyline { points }
    }

    /// Fallible constructor for loaders.
    pub fn try_new(points: Vec<Point>) -> Option<Self> {
        if points.len() < 2 || points.iter().any(|p| !p.is_finite()) {
            None
        } else {
            Some(Polyline { points })
        }
    }

    /// The chain's points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points in the chain.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction guarantees ≥ 2 points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the chain's segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total chain length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding box of the chain.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_points(self.points.iter().copied())
    }

    /// Point at `fraction` (`0..=1`) of the chain's arc length.
    ///
    /// Location interpolation in the Cleaning layer places a repaired record
    /// at the time-proportional fraction of the walking path.
    pub fn point_at_fraction(&self, fraction: f64) -> Point {
        let f = fraction.clamp(0.0, 1.0);
        let total = self.length();
        if total <= EPSILON {
            return self.points[0];
        }
        let mut remaining = f * total;
        for seg in self.segments() {
            let l = seg.length();
            if remaining <= l {
                return seg.point_at(if l <= EPSILON { 0.0 } else { remaining / l });
            }
            remaining -= l;
        }
        *self.points.last().expect("polyline has >= 2 points")
    }

    /// Minimum distance from `p` to the chain.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.segments()
            .map(|s| s.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of direction changes along the chain that exceed
    /// `min_turn_angle` radians — the "number of turns" feature of the
    /// Annotation layer.
    pub fn count_turns(&self, min_turn_angle: f64) -> usize {
        let mut turns = 0;
        for w in self.points.windows(3) {
            let v1 = w[1] - w[0];
            let v2 = w[2] - w[1];
            let n1 = v1.norm();
            let n2 = v2.norm();
            if n1 <= EPSILON || n2 <= EPSILON {
                continue;
            }
            let cos = (v1.dot(v2) / (n1 * n2)).clamp(-1.0, 1.0);
            if cos.acos() >= min_turn_angle {
                turns += 1;
            }
        }
        turns
    }

    /// Ramer–Douglas–Peucker simplification with tolerance `eps`.
    ///
    /// The drawing tool uses this to thin freehand wall traces; the Viewer
    /// uses it to keep SVG payloads small.
    pub fn simplified(&self, eps: f64) -> Polyline {
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut keep = vec![false; self.points.len()];
        keep[0] = true;
        *keep.last_mut().expect("non-empty") = true;
        rdp_mark(&self.points, 0, self.points.len() - 1, eps, &mut keep);
        Polyline {
            points: self
                .points
                .iter()
                .zip(keep)
                .filter_map(|(p, k)| k.then_some(*p))
                .collect(),
        }
    }

    /// Concatenates another chain onto this one; if the junction points are
    /// identical the duplicate is dropped. Used when assembling walking
    /// paths from per-room legs.
    pub fn extend_with(&mut self, other: &Polyline) {
        let start = if self
            .points
            .last()
            .is_some_and(|l| l.distance(other.points[0]) <= EPSILON)
        {
            1
        } else {
            0
        };
        self.points.extend_from_slice(&other.points[start..]);
    }
}

fn rdp_mark(points: &[Point], lo: usize, hi: usize, eps: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let chord = Segment::new(points[lo], points[hi]);
    let mut max_d = 0.0;
    let mut max_i = lo;
    for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = chord.distance_to_point(*p);
        if d > max_d {
            max_d = d;
            max_i = i;
        }
    }
    if max_d > eps {
        keep[max_i] = true;
        rdp_mark(points, lo, max_i, eps, keep);
        rdp_mark(points, max_i, hi, eps, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn staircase() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn rejects_single_point() {
        Polyline::new(vec![Point::origin()]);
    }

    #[test]
    fn length_sums_segments() {
        assert!(approx_eq(staircase().length(), 3.0));
    }

    #[test]
    fn point_at_fraction_walks_the_chain() {
        let pl = staircase();
        assert_eq!(pl.point_at_fraction(0.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at_fraction(1.0), Point::new(2.0, 1.0));
        // 1.5 of 3.0 total → middle of second segment
        let mid = pl.point_at_fraction(0.5);
        assert!(approx_eq(mid.x, 1.0) && approx_eq(mid.y, 0.5));
        // fraction is clamped
        assert_eq!(pl.point_at_fraction(2.0), Point::new(2.0, 1.0));
        assert_eq!(pl.point_at_fraction(-1.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn zero_length_chain_fraction() {
        let pl = Polyline::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert_eq!(pl.point_at_fraction(0.7), Point::new(1.0, 1.0));
    }

    #[test]
    fn distance_to_point() {
        let pl = staircase();
        assert!(approx_eq(pl.distance_to_point(Point::new(0.5, 1.0)), 0.5));
        assert!(approx_eq(pl.distance_to_point(Point::new(1.0, 0.5)), 0.0));
    }

    #[test]
    fn turn_counting() {
        // staircase has two 90° turns
        assert_eq!(staircase().count_turns(1.0), 2);
        // straight line has none
        let line = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        assert_eq!(line.count_turns(0.1), 0);
        // shallow wiggle below threshold is not a turn
        let wiggle = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.02),
        ]);
        assert_eq!(wiggle.count_turns(0.5), 0);
        assert_eq!(wiggle.count_turns(0.001), 1);
    }

    #[test]
    fn simplification_drops_collinear_points() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ]);
        let s = pl.simplified(0.01);
        assert_eq!(s.len(), 2);
        assert!(approx_eq(s.length(), pl.length()));
    }

    #[test]
    fn simplification_keeps_real_corners() {
        let s = staircase().simplified(0.01);
        assert_eq!(s.len(), 4, "90° corners must survive");
    }

    #[test]
    fn simplification_respects_tolerance() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.05),
            Point::new(2.0, 0.0),
        ]);
        assert_eq!(pl.simplified(0.1).len(), 2);
        assert_eq!(pl.simplified(0.01).len(), 3);
    }

    #[test]
    fn extend_merges_duplicate_junction() {
        let mut a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(1.0, 0.0), Point::new(1.0, 1.0)]);
        a.extend_with(&b);
        assert_eq!(a.len(), 3);
        assert!(approx_eq(a.length(), 2.0));
    }

    #[test]
    fn extend_keeps_distinct_junction() {
        let mut a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(2.0, 0.0), Point::new(3.0, 0.0)]);
        a.extend_with(&b);
        assert_eq!(a.len(), 4);
    }
}
