use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Identifier of a building floor.
///
/// Floors are small signed integers: `0` is the ground floor, negative values
/// are basements. The demo dataset of the paper spans floors `0..=6`
/// (a 7-floor shopping mall).
pub type FloorId = i16;

/// A 2-D point in the building-local metric frame (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from metric coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt when only
    /// comparisons are needed, e.g. nearest-neighbour scans).
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector dot product, treating points as vectors from the origin.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product magnitude (`self × other`); positive when `other`
    /// is counter-clockwise of `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm of the point treated as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns the point rotated by `angle` radians counter-clockwise around
    /// `center`. Used by the drawing canvas' free-transform mode.
    pub fn rotated_around(&self, center: Point, angle: f64) -> Point {
        let (sin, cos) = angle.sin_cos();
        let dx = self.x - center.x;
        let dy = self.y - center.y;
        Point::new(
            center.x + dx * cos - dy * sin,
            center.y + dx * sin + dy * cos,
        )
    }

    /// Returns `true` if both coordinates are finite (rejects NaN/inf records
    /// coming from corrupt input files).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A point qualified with the floor it lies on — the location payload of a
/// raw positioning record, e.g. `(5.1, 12.7, 3F)` in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndoorPoint {
    /// Planar position on the floor, metres.
    pub xy: Point,
    /// Which floor the position lies on.
    pub floor: FloorId,
}

impl IndoorPoint {
    /// Creates an indoor point.
    #[inline]
    pub const fn new(x: f64, y: f64, floor: FloorId) -> Self {
        IndoorPoint {
            xy: Point::new(x, y),
            floor,
        }
    }

    /// Planar (same-floor) Euclidean distance, ignoring floors.
    ///
    /// Callers that care about floor changes must route through the DSM's
    /// indoor walking distance instead.
    #[inline]
    pub fn planar_distance(&self, other: &IndoorPoint) -> f64 {
        self.xy.distance(other.xy)
    }

    /// Returns `true` if both points are on the same floor.
    #[inline]
    pub fn same_floor(&self, other: &IndoorPoint) -> bool {
        self.floor == other.floor
    }

    /// Replaces the floor, keeping planar coordinates (floor value
    /// correction in the Cleaning layer).
    #[inline]
    pub fn with_floor(&self, floor: FloorId) -> IndoorPoint {
        IndoorPoint { xy: self.xy, floor }
    }
}

impl fmt::Display for IndoorPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}, {}F)", self.xy.x, self.xy.y, self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.distance(b), 5.0));
        assert!(approx_eq(a.distance_sq(b), 25.0));
    }

    #[test]
    fn distance_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-4.0, 7.25);
        assert!(approx_eq(a.distance(b), b.distance(a)));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }

    #[test]
    fn rotation_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let r = p.rotated_around(Point::origin(), std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(r.x, 0.0));
        assert!(approx_eq(r.y, 1.0));
    }

    #[test]
    fn rotation_preserves_distance_to_center() {
        let c = Point::new(3.0, -1.0);
        let p = Point::new(7.5, 2.0);
        let r = p.rotated_around(c, 1.2345);
        assert!(approx_eq(c.distance(p), c.distance(r)));
    }

    #[test]
    fn indoor_point_floor_semantics() {
        let a = IndoorPoint::new(0.0, 0.0, 2);
        let b = IndoorPoint::new(3.0, 4.0, 3);
        assert!(!a.same_floor(&b));
        assert!(a.same_floor(&b.with_floor(2)));
        assert!(approx_eq(a.planar_distance(&b), 5.0));
    }

    #[test]
    fn non_finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_like_paper_table() {
        let p = IndoorPoint::new(5.1, 12.7, 3);
        assert_eq!(p.to_string(), "(5.10, 12.70, 3F)");
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert!(approx_eq(a.dot(b), 13.0));
        assert!(approx_eq(Point::new(3.0, 4.0).norm(), 5.0));
    }
}
