use crate::{BoundingBox, Point, EPSILON};
use serde::{Deserialize, Serialize};

/// A directed line segment between two points.
///
/// Segments are the edges of walls, doors and drawing-tool polylines; the
/// predicates here (intersection, projection, distance) drive wall-crossing
/// checks and snapping in the Space Modeler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Bounding box of the segment.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::new(self.a, self.b)
    }

    /// Point at parameter `t` along the segment (`0` → `a`, `1` → `b`).
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Parameter of the orthogonal projection of `p` onto the supporting
    /// line, clamped to `[0, 1]` so the result lies on the segment.
    pub fn project_clamped(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq <= EPSILON {
            return 0.0; // degenerate segment: a == b
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.point_at(self.project_clamped(p))
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Returns `true` if `p` lies on the segment (within [`EPSILON`]).
    pub fn contains_point(&self, p: Point) -> bool {
        self.distance_to_point(p) <= 1e-7
    }

    /// Proper segment–segment intersection test, including collinear overlap
    /// and endpoint touching.
    pub fn intersects(&self, other: &Segment) -> bool {
        orientation_test(self, other)
    }

    /// Intersection *point* of two segments, if they cross at a single point.
    ///
    /// Returns `None` when the segments do not intersect or are collinear
    /// (overlap has no unique intersection point).
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() <= EPSILON {
            return None; // parallel or collinear
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPSILON..=1.0 + EPSILON).contains(&t) && (-EPSILON..=1.0 + EPSILON).contains(&u) {
            Some(self.point_at(t))
        } else {
            None
        }
    }
}

/// Orientation of the ordered triple (p, q, r):
/// `> 0` counter-clockwise, `< 0` clockwise, `0` collinear.
#[inline]
pub(crate) fn orient(p: Point, q: Point, r: Point) -> f64 {
    (q - p).cross(r - p)
}

fn on_segment_collinear(s: &Segment, p: Point) -> bool {
    p.x >= s.a.x.min(s.b.x) - EPSILON
        && p.x <= s.a.x.max(s.b.x) + EPSILON
        && p.y >= s.a.y.min(s.b.y) - EPSILON
        && p.y <= s.a.y.max(s.b.y) + EPSILON
}

fn orientation_test(s1: &Segment, s2: &Segment) -> bool {
    let d1 = orient(s2.a, s2.b, s1.a);
    let d2 = orient(s2.a, s2.b, s1.b);
    let d3 = orient(s1.a, s1.b, s2.a);
    let d4 = orient(s1.a, s1.b, s2.b);

    if ((d1 > EPSILON && d2 < -EPSILON) || (d1 < -EPSILON && d2 > EPSILON))
        && ((d3 > EPSILON && d4 < -EPSILON) || (d3 < -EPSILON && d4 > EPSILON))
    {
        return true;
    }
    (d1.abs() <= EPSILON && on_segment_collinear(s2, s1.a))
        || (d2.abs() <= EPSILON && on_segment_collinear(s2, s1.b))
        || (d3.abs() <= EPSILON && on_segment_collinear(s1, s2.a))
        || (d4.abs() <= EPSILON && on_segment_collinear(s1, s2.b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert!(approx_eq(s.length(), 5.0));
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
    }

    #[test]
    fn projection_inside_and_clamped() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(approx_eq(s.project_clamped(Point::new(4.0, 5.0)), 0.4));
        assert!(approx_eq(s.project_clamped(Point::new(-3.0, 1.0)), 0.0));
        assert!(approx_eq(s.project_clamped(Point::new(15.0, 1.0)), 1.0));
    }

    #[test]
    fn distance_to_point_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(approx_eq(s.distance_to_point(Point::new(5.0, 3.0)), 3.0));
        assert!(approx_eq(s.distance_to_point(Point::new(-3.0, 4.0)), 5.0));
        assert!(approx_eq(s.distance_to_point(Point::new(13.0, 4.0)), 5.0));
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert!(approx_eq(s.distance_to_point(Point::new(5.0, 6.0)), 5.0));
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 4.0, 4.0);
        let s2 = seg(0.0, 4.0, 4.0, 0.0);
        assert!(s1.intersects(&s2));
        let p = s1.intersection_point(&s2).unwrap();
        assert!(approx_eq(p.x, 2.0) && approx_eq(p.y, 2.0));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(0.0, 1.0, 4.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
    }

    #[test]
    fn collinear_overlap_intersects_without_unique_point() {
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(2.0, 0.0, 6.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
    }

    #[test]
    fn collinear_disjoint_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn endpoint_touch_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(2.0, 2.0, 4.0, 0.0);
        assert!(s1.intersects(&s2));
        let p = s1.intersection_point(&s2).unwrap();
        assert!(approx_eq(p.x, 2.0) && approx_eq(p.y, 2.0));
    }

    #[test]
    fn t_touch_midspan() {
        // s2 endpoint lands in the middle of s1
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(2.0, 0.0, 2.0, 3.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn contains_point_on_and_off() {
        let s = seg(0.0, 0.0, 10.0, 10.0);
        assert!(s.contains_point(Point::new(5.0, 5.0)));
        assert!(s.contains_point(Point::new(0.0, 0.0)));
        assert!(!s.contains_point(Point::new(5.0, 5.1)));
    }
}
