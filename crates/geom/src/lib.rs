//! Planar geometry substrate for TRIPS.
//!
//! Indoor positioning and the Digital Space Model (DSM) are built on a small
//! set of 2-D primitives: [`Point`]s on a floor, [`Segment`]s, [`Polyline`]s,
//! [`Polygon`]s and [`Circle`]s, plus the predicates the upper layers need
//! (point-in-polygon, distances, intersections, hulls).
//!
//! All coordinates are `f64` metres in a per-building local frame. Floors are
//! carried separately (see [`FloorId`] and [`IndoorPoint`]) because indoor
//! distance is *not* Euclidean across floors — the DSM topology layer owns
//! inter-floor distance.
//!
//! # Example
//!
//! ```
//! use trips_geom::{Point, Polygon};
//!
//! let shop = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 6.0));
//! assert!(shop.contains(Point::new(5.0, 3.0)));
//! assert_eq!(shop.area(), 60.0);
//! ```

mod bbox;
mod circle;
mod point;
mod polygon;
mod polyline;
mod segment;

pub mod algorithms;

pub use bbox::BoundingBox;
pub use circle::Circle;
pub use point::{FloorId, IndoorPoint, Point};
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use segment::Segment;

/// Numeric tolerance used by geometric predicates.
///
/// Indoor coordinates are metres; a nanometre tolerance keeps predicates
/// robust against f64 rounding without ever being observable at positioning
/// accuracy (metre-scale errors).
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if two floats are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }
}
