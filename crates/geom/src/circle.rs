use crate::{BoundingBox, Point, Polygon};
use serde::{Deserialize, Serialize};

/// A circle — the third drawing element of the Space Modeler (kiosks, pillars,
/// circular atria are commonly traced as circles on mall floorplans).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    /// Panics on a negative or non-finite radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Circumference length.
    pub fn circumference(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.radius
    }

    /// Closed containment test (boundary counts as inside).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius + 1e-12
    }

    /// Distance from `p` to the disk: 0 inside, distance to the boundary
    /// outside.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        (self.center.distance(p) - self.radius).max(0.0)
    }

    /// Bounding box of the disk.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Regular-polygon approximation with `sides` vertices (≥ 3).
    ///
    /// The DSM stores every entity footprint as a polygon; circles drawn in
    /// the canvas are discretised on save.
    pub fn to_polygon(&self, sides: usize) -> Polygon {
        let sides = sides.max(3);
        let verts = (0..sides)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64) / (sides as f64);
                Point::new(
                    self.center.x + self.radius * theta.cos(),
                    self.center.y + self.radius * theta.sin(),
                )
            })
            .collect();
        Polygon::new(verts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn rejects_negative_radius() {
        Circle::new(Point::origin(), -1.0);
    }

    #[test]
    fn containment() {
        let c = Circle::new(Point::new(2.0, 2.0), 1.0);
        assert!(c.contains(Point::new(2.0, 2.0)));
        assert!(c.contains(Point::new(3.0, 2.0)), "boundary counts");
        assert!(!c.contains(Point::new(3.1, 2.0)));
    }

    #[test]
    fn distances() {
        let c = Circle::new(Point::origin(), 2.0);
        assert_eq!(c.distance_to_point(Point::new(1.0, 0.0)), 0.0);
        assert!((c.distance_to_point(Point::new(5.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_covers_circle() {
        let c = Circle::new(Point::new(1.0, 1.0), 0.5);
        let b = c.bbox();
        assert_eq!(b.min, Point::new(0.5, 0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
    }

    #[test]
    fn polygon_approximation_converges_in_area() {
        let c = Circle::new(Point::new(3.0, 4.0), 2.0);
        let p16 = c.to_polygon(16).area();
        let p64 = c.to_polygon(64).area();
        let exact = c.area();
        assert!((p64 - exact).abs() < (p16 - exact).abs());
        assert!((p64 - exact).abs() / exact < 0.01);
    }

    #[test]
    fn polygon_approximation_minimum_sides() {
        assert_eq!(Circle::new(Point::origin(), 1.0).to_polygon(1).len(), 3);
    }

    #[test]
    fn zero_radius_circle() {
        let c = Circle::new(Point::new(1.0, 1.0), 0.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(!c.contains(Point::new(1.0, 1.1)));
        assert_eq!(c.area(), 0.0);
    }
}
