use crate::segment::orient;
use crate::{BoundingBox, Point, Segment, EPSILON};
use serde::{Deserialize, Serialize};

/// A simple polygon given by its vertex ring (implicitly closed; the last
/// vertex connects back to the first).
///
/// Polygons are the footprint shape of rooms, shops, staircells and
/// user-drawn semantic regions. Vertex order may be clockwise or
/// counter-clockwise; predicates normalise internally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex ring.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied — degenerate shapes must
    /// be rejected at the drawing layer.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 3,
            "polygon needs at least 3 vertices, got {}",
            vertices.len()
        );
        Polygon { vertices }
    }

    /// Fallible constructor used by file loaders: returns `None` for rings
    /// with fewer than 3 vertices or non-finite coordinates.
    pub fn try_new(vertices: Vec<Point>) -> Option<Self> {
        if vertices.len() < 3 || vertices.iter().any(|v| !v.is_finite()) {
            None
        } else {
            Some(Polygon { vertices })
        }
    }

    /// Axis-aligned rectangle from two opposite corners.
    pub fn rectangle(a: Point, b: Point) -> Self {
        let bb = BoundingBox::new(a, b);
        Polygon::new(vec![
            bb.min,
            Point::new(bb.max.x, bb.min.y),
            bb.max,
            Point::new(bb.min.x, bb.max.y),
        ])
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: construction guarantees ≥ 3 vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the boundary edges (closing edge included).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula: positive when the ring is
    /// counter-clockwise.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.cross(q);
        }
        acc / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid. Falls back to the vertex mean for near-zero-area rings.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() <= EPSILON {
            let n = self.vertices.len() as f64;
            let sum = self
                .vertices
                .iter()
                .fold(Point::origin(), |acc, p| acc + *p);
            return sum * (1.0 / n);
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Bounding box of the polygon.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_points(self.vertices.iter().copied())
    }

    /// Point-in-polygon test (boundary counts as inside).
    ///
    /// Ray casting with an explicit boundary pass; robust for the rectilinear
    /// and mildly irregular shapes floorplans are made of.
    pub fn contains(&self, p: Point) -> bool {
        if !self.bbox().inflated(EPSILON).contains(p) {
            return false;
        }
        // Boundary pass: positioning records snapped onto a wall belong to
        // the room.
        for e in self.edges() {
            if e.distance_to_point(p) <= 1e-9 {
                return true;
            }
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the polygon boundary (0 if on the boundary;
    /// interior points also measure to the boundary).
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Distance from `p` to the polygon as a region: 0 inside, boundary
    /// distance outside.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            0.0
        } else {
            self.distance_to_boundary(p)
        }
    }

    /// Closest point on the boundary to `p`.
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        let mut best = self.vertices[0];
        let mut best_d = f64::INFINITY;
        for e in self.edges() {
            let c = e.closest_point(p);
            let d = c.distance(p);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Returns `true` if the open segment `s` crosses the polygon boundary.
    ///
    /// Used by the cleaner to detect straight-line movements that would pass
    /// through a wall.
    pub fn boundary_crosses(&self, s: &Segment) -> bool {
        self.edges().any(|e| e.intersects(&s.clone()))
    }

    /// Returns `true` if the two polygons share a boundary stretch of length
    /// at least `min_overlap` (edge adjacency, e.g. rooms separated by a
    /// common wall).
    pub fn shares_edge_with(&self, other: &Polygon, min_overlap: f64) -> bool {
        for e1 in self.edges() {
            for e2 in other.edges() {
                if let Some(len) = collinear_overlap_len(&e1, &e2) {
                    if len >= min_overlap {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Convexity check (all turns the same way, allowing collinear runs).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0.0f64;
        for i in 0..n {
            let o = orient(
                self.vertices[i],
                self.vertices[(i + 1) % n],
                self.vertices[(i + 2) % n],
            );
            if o.abs() <= EPSILON {
                continue;
            }
            if sign == 0.0 {
                sign = o.signum();
            } else if o.signum() != sign {
                return false;
            }
        }
        true
    }

    /// Returns the polygon translated by `(dx, dy)` — drawing-tool move op.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        }
    }

    /// Returns the polygon scaled by `factor` around `center` — drawing-tool
    /// resize op.
    pub fn scaled(&self, center: Point, factor: f64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| center + (*p - center) * factor)
                .collect(),
        }
    }

    /// Returns the polygon rotated by `angle` radians around `center` —
    /// drawing-tool free-transform op.
    pub fn rotated(&self, center: Point, angle: f64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| p.rotated_around(center, angle))
                .collect(),
        }
    }

    /// A deterministic interior point: the centroid if it is inside,
    /// otherwise a point nudged inward from the first edge midpoint.
    pub fn interior_point(&self) -> Point {
        let c = self.centroid();
        if self.contains(c) {
            return c;
        }
        // Nudge from each edge midpoint towards the centroid until inside.
        for e in self.edges() {
            let m = e.midpoint();
            for t in [0.01, 0.05, 0.1, 0.25] {
                let candidate = m.lerp(c, t);
                if self.contains(candidate) {
                    return candidate;
                }
            }
        }
        c // pathological ring: fall back to centroid
    }
}

/// Length of the overlap between two collinear segments, `None` if they are
/// not collinear or do not overlap.
fn collinear_overlap_len(a: &Segment, b: &Segment) -> Option<f64> {
    // Must be parallel...
    let da = a.b - a.a;
    let db = b.b - b.a;
    if da.cross(db).abs() > 1e-7 * (da.norm() * db.norm()).max(1.0) {
        return None;
    }
    // ... and collinear (b.a on a's supporting line).
    if orient(a.a, a.b, b.a).abs() > 1e-7 * da.norm().max(1.0) {
        return None;
    }
    // Project b's endpoints on a's axis.
    let len_sq = da.dot(da);
    if len_sq <= EPSILON {
        return None;
    }
    let t1 = (b.a - a.a).dot(da) / len_sq;
    let t2 = (b.b - a.a).dot(da) / len_sq;
    let (lo, hi) = (t1.min(t2).max(0.0), t1.max(t2).min(1.0));
    if hi > lo {
        Some((hi - lo) * len_sq.sqrt())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::origin(), Point::new(1.0, 1.0))
    }

    fn l_shape() -> Polygon {
        // ┌─┐
        // │ └─┐
        // └───┘
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn rejects_degenerate() {
        Polygon::new(vec![Point::origin(), Point::new(1.0, 1.0)]);
    }

    #[test]
    fn try_new_rejects_bad_input() {
        assert!(Polygon::try_new(vec![Point::origin(); 2]).is_none());
        assert!(Polygon::try_new(vec![
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_none());
        assert!(Polygon::try_new(vec![
            Point::origin(),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_some());
    }

    #[test]
    fn area_and_perimeter() {
        assert!(approx_eq(unit_square().area(), 1.0));
        assert!(approx_eq(unit_square().perimeter(), 4.0));
        assert!(approx_eq(l_shape().area(), 3.0));
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
        assert!(approx_eq(ccw.area(), cw.area()));
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid();
        assert!(approx_eq(c.x, 0.5) && approx_eq(c.y, 0.5));
    }

    #[test]
    fn containment_interior_exterior_boundary() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.5)), "boundary is inside");
        assert!(sq.contains(Point::new(1.0, 1.0)), "vertex is inside");
    }

    #[test]
    fn containment_concave() {
        let l = l_shape();
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5)), "notch is outside");
    }

    #[test]
    fn distances() {
        let sq = unit_square();
        assert!(approx_eq(sq.distance_to_point(Point::new(0.5, 0.5)), 0.0));
        assert!(approx_eq(sq.distance_to_point(Point::new(2.0, 0.5)), 1.0));
        assert!(approx_eq(
            sq.distance_to_boundary(Point::new(0.5, 0.5)),
            0.5
        ));
    }

    #[test]
    fn closest_boundary_point_is_on_boundary() {
        let sq = unit_square();
        let c = sq.closest_boundary_point(Point::new(2.0, 0.5));
        assert!(approx_eq(c.x, 1.0) && approx_eq(c.y, 0.5));
    }

    #[test]
    fn wall_crossing() {
        let sq = unit_square();
        let through = Segment::new(Point::new(-1.0, 0.5), Point::new(2.0, 0.5));
        let outside = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 1.0));
        let inside = Segment::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8));
        assert!(sq.boundary_crosses(&through));
        assert!(!sq.boundary_crosses(&outside));
        assert!(!sq.boundary_crosses(&inside));
    }

    #[test]
    fn shared_edge_detection() {
        let a = Polygon::rectangle(Point::origin(), Point::new(2.0, 2.0));
        let b = Polygon::rectangle(Point::new(2.0, 0.0), Point::new(4.0, 2.0));
        let c = Polygon::rectangle(Point::new(5.0, 0.0), Point::new(7.0, 2.0));
        assert!(a.shares_edge_with(&b, 1.0));
        assert!(!a.shares_edge_with(&c, 0.1));
        // Corner touch only: overlap length 0 — not adjacency.
        let d = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(4.0, 4.0));
        assert!(!a.shares_edge_with(&d, 0.1));
    }

    #[test]
    fn convexity() {
        assert!(unit_square().is_convex());
        assert!(!l_shape().is_convex());
    }

    #[test]
    fn transforms_preserve_area() {
        let l = l_shape();
        assert!(approx_eq(l.translated(5.0, -3.0).area(), l.area()));
        assert!(approx_eq(l.rotated(Point::origin(), 0.7).area(), l.area()));
        assert!(approx_eq(
            l.scaled(Point::origin(), 2.0).area(),
            l.area() * 4.0
        ));
    }

    #[test]
    fn interior_point_is_inside() {
        assert!(unit_square().contains(unit_square().interior_point()));
        assert!(l_shape().contains(l_shape().interior_point()));
        // U-shape whose centroid is inside the notch
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(2.0, 3.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(u.contains(u.interior_point()));
    }

    #[test]
    fn rectangle_from_any_corners() {
        let r = Polygon::rectangle(Point::new(4.0, 1.0), Point::new(1.0, 3.0));
        assert!(approx_eq(r.area(), 6.0));
        assert!(r.contains(Point::new(2.0, 2.0)));
    }
}
