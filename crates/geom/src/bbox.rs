use crate::Point;
use serde::{Deserialize, Serialize};

/// Axis-aligned bounding box.
///
/// Used for cheap prefilters (spatial-range selection rules, region matching)
/// and for the Viewer's map-view fitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    pub min: Point,
    pub max: Point,
}

impl BoundingBox {
    /// Creates a bounding box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty box: contains nothing, absorbs any point on first
    /// [`expand`](Self::expand).
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns `true` if no point has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box covering all `points`; [`empty`](Self::empty) if none.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Grows the box to cover `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box to cover another box.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        BoundingBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Returns the box inflated by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Closed-boundary containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if the two boxes overlap (boundary touch counts).
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box width (x extent). Zero for the empty box.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.x - self.min.x
        }
    }

    /// Box height (y extent). Zero for the empty box.
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.y - self.min.y
        }
    }

    /// Area of the box. Zero for the empty box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point. Meaningless for the empty box (returns NaN components).
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Length of the diagonal — the "covering range" feature used by the
    /// Annotation layer's event identification.
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min.distance(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalized() {
        let b = BoundingBox::new(Point::new(5.0, 1.0), Point::new(2.0, 8.0));
        assert_eq!(b.min, Point::new(2.0, 1.0));
        assert_eq!(b.max, Point::new(5.0, 8.0));
    }

    #[test]
    fn empty_box_behaviour() {
        let b = BoundingBox::empty();
        assert!(b.is_empty());
        assert_eq!(b.width(), 0.0);
        assert_eq!(b.area(), 0.0);
        assert!(!b.contains(Point::origin()));
        assert!(!b.intersects(&BoundingBox::new(Point::origin(), Point::new(1.0, 1.0))));
    }

    #[test]
    fn expand_absorbs_points() {
        let mut b = BoundingBox::empty();
        b.expand(Point::new(1.0, 2.0));
        assert!(!b.is_empty());
        assert!(b.contains(Point::new(1.0, 2.0)));
        b.expand(Point::new(-1.0, 5.0));
        assert_eq!(b.min, Point::new(-1.0, 2.0));
        assert_eq!(b.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, -3.0),
            Point::new(4.0, 9.0),
        ];
        let b = BoundingBox::from_points(pts.clone());
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn containment_includes_boundary() {
        let b = BoundingBox::new(Point::origin(), Point::new(4.0, 4.0));
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(4.0, 4.0)));
        assert!(b.contains(Point::new(4.0, 2.0)));
        assert!(!b.contains(Point::new(4.0001, 2.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = BoundingBox::new(Point::origin(), Point::new(4.0, 4.0));
        let b = BoundingBox::new(Point::new(3.0, 3.0), Point::new(6.0, 6.0));
        let c = BoundingBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let d = BoundingBox::new(Point::new(4.0, 0.0), Point::new(8.0, 4.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d), "boundary touch counts");
    }

    #[test]
    fn union_covers_both() {
        let a = BoundingBox::new(Point::origin(), Point::new(1.0, 1.0));
        let b = BoundingBox::new(Point::new(5.0, 5.0), Point::new(6.0, 7.0));
        let u = a.union(&b);
        assert!(u.contains(Point::origin()));
        assert!(u.contains(Point::new(6.0, 7.0)));
        assert_eq!(a.union(&BoundingBox::empty()), a);
        assert_eq!(BoundingBox::empty().union(&b), b);
    }

    #[test]
    fn geometry_measures() {
        let b = BoundingBox::new(Point::origin(), Point::new(3.0, 4.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.center(), Point::new(1.5, 2.0));
        assert!((b.diagonal() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = BoundingBox::new(Point::origin(), Point::new(2.0, 2.0)).inflated(1.0);
        assert_eq!(b.min, Point::new(-1.0, -1.0));
        assert_eq!(b.max, Point::new(3.0, 3.0));
    }
}
