//! Standalone geometric algorithms shared by the DSM and the Annotation
//! layer: convex hulls (covering-range feature), dispersion statistics
//! (location-variance feature), and path statistics.

use crate::{Point, Polygon, EPSILON};

/// Convex hull of a point set (Andrew's monotone chain), returned as a
/// counter-clockwise polygon.
///
/// Returns `None` when the set has fewer than 3 non-collinear points — the
/// hull degenerates to a point or segment, for which the caller should fall
/// back to bounding-box measures.
pub fn convex_hull(points: &[Point]) -> Option<Polygon> {
    if points.len() < 3 {
        return None;
    }
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite coordinates")
            .then(a.y.partial_cmp(&b.y).expect("finite coordinates"))
    });
    pts.dedup_by(|a, b| a.distance_sq(*b) <= EPSILON * EPSILON);
    if pts.len() < 3 {
        return None;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut lower: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        return None; // all points collinear
    }
    Some(Polygon::new(lower))
}

/// Arithmetic mean of a point set. `None` for an empty set.
pub fn mean_point(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let sum = points.iter().fold(Point::origin(), |acc, p| acc + *p);
    Some(sum * (1.0 / points.len() as f64))
}

/// Spatial variance of a point set: mean squared distance to the centroid.
///
/// This is the "positioning location variance" feature of the Annotation
/// layer — low for a stay, high for a pass-by.
pub fn location_variance(points: &[Point]) -> f64 {
    match mean_point(points) {
        None => 0.0,
        Some(c) => points.iter().map(|p| p.distance_sq(c)).sum::<f64>() / points.len() as f64,
    }
}

/// Total polyline length of a point sequence (the "traveling distance"
/// feature). Zero for fewer than 2 points.
pub fn path_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Maximum pairwise distance in a point set (diameter). O(n²) — adequate for
/// snippet-sized inputs (tens of records); hull-based rotating calipers is
/// unnecessary at that scale.
pub fn diameter(points: &[Point]) -> f64 {
    let mut best = 0.0f64;
    for (i, p) in points.iter().enumerate() {
        for q in &points[i + 1..] {
            best = best.max(p.distance(*q));
        }
    }
    best
}

/// The spatially central point: the input point minimising the sum of
/// distances to all others (medoid). Used by the Viewer when configured to
/// display a semantics entry at the spatially central raw location
/// (paper footnote 1).
pub fn medoid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let mut best = points[0];
    let mut best_cost = f64::INFINITY;
    for p in points {
        let cost: f64 = points.iter().map(|q| p.distance(*q)).sum();
        if cost < best_cost {
            best_cost = cost;
            best = *p;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 2.0), // interior
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 4);
        assert!(approx_eq(hull.area(), 16.0));
        assert!(hull.signed_area() > 0.0, "ccw orientation");
    }

    #[test]
    fn hull_degenerate_cases() {
        assert!(convex_hull(&[]).is_none());
        assert!(convex_hull(&[Point::origin()]).is_none());
        assert!(convex_hull(&[Point::origin(), Point::new(1.0, 0.0)]).is_none());
        // collinear
        let line: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        assert!(convex_hull(&line).is_none());
        // duplicates collapse
        let dup = vec![Point::origin(); 10];
        assert!(convex_hull(&dup).is_none());
    }

    #[test]
    fn hull_contains_all_inputs() {
        let pts: Vec<Point> = (0..20)
            .map(|i| {
                let a = i as f64 * 0.77;
                Point::new(a.sin() * (i as f64), a.cos() * (i as f64 * 0.5))
            })
            .collect();
        let hull = convex_hull(&pts).unwrap();
        for p in &pts {
            assert!(
                hull.contains(*p) || hull.distance_to_boundary(*p) < 1e-6,
                "hull must contain {p}"
            );
        }
    }

    #[test]
    fn mean_and_variance() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        assert_eq!(mean_point(&pts), Some(Point::new(1.0, 0.0)));
        assert!(approx_eq(location_variance(&pts), 1.0));
        assert!(mean_point(&[]).is_none());
        assert_eq!(location_variance(&[]), 0.0);
    }

    #[test]
    fn variance_zero_for_identical_points() {
        let pts = vec![Point::new(3.0, 3.0); 5];
        assert!(approx_eq(location_variance(&pts), 0.0));
    }

    #[test]
    fn path_length_and_diameter() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 0.0),
        ];
        assert!(approx_eq(path_length(&pts), 9.0));
        assert!(approx_eq(diameter(&pts), 5.0));
        assert_eq!(path_length(&[Point::origin()]), 0.0);
        assert_eq!(diameter(&[]), 0.0);
    }

    #[test]
    fn medoid_picks_central_input_point() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        assert_eq!(medoid(&pts), Some(Point::new(1.0, 0.0)));
        assert!(medoid(&[]).is_none());
    }
}
