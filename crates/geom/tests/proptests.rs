//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use trips_geom::{algorithms, BoundingBox, Circle, Point, Polygon, Polyline, Segment};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn lerp_stays_on_segment(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
        let p = a.lerp(b, t);
        let s = Segment::new(a, b);
        prop_assert!(s.distance_to_point(p) < 1e-6);
    }

    #[test]
    fn bbox_contains_its_points(pts in arb_points(1..50)) {
        let b = BoundingBox::from_points(pts.iter().copied());
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
    }

    #[test]
    fn bbox_union_is_commutative_cover(p1 in arb_points(1..10), p2 in arb_points(1..10)) {
        let a = BoundingBox::from_points(p1.iter().copied());
        let b = BoundingBox::from_points(p2.iter().copied());
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        for p in p1.iter().chain(p2.iter()) {
            prop_assert!(u.contains(*p));
        }
    }

    #[test]
    fn segment_closest_point_is_on_segment(a in arb_point(), b in arb_point(), p in arb_point()) {
        let s = Segment::new(a, b);
        let c = s.closest_point(p);
        // The closest point must lie within the segment's bbox (inflated for rounding).
        prop_assert!(s.bbox().inflated(1e-6).contains(c));
        // No segment endpoint can beat it.
        prop_assert!(c.distance(p) <= a.distance(p) + 1e-9);
        prop_assert!(c.distance(p) <= b.distance(p) + 1e-9);
    }

    #[test]
    fn rectangle_contains_centroid_and_is_convex(a in arb_point(), b in arb_point()) {
        prop_assume!((a.x - b.x).abs() > 0.01 && (a.y - b.y).abs() > 0.01);
        let r = Polygon::rectangle(a, b);
        prop_assert!(r.contains(r.centroid()));
        prop_assert!(r.is_convex());
    }

    #[test]
    fn polygon_translation_preserves_area_and_perimeter(
        pts in arb_points(3..12), dx in -100.0f64..100.0, dy in -100.0f64..100.0
    ) {
        if let Some(poly) = Polygon::try_new(pts) {
            let t = poly.translated(dx, dy);
            prop_assert!((poly.area() - t.area()).abs() < 1e-6 * poly.area().max(1.0));
            prop_assert!((poly.perimeter() - t.perimeter()).abs() < 1e-6 * poly.perimeter().max(1.0));
        }
    }

    #[test]
    fn polygon_rotation_preserves_area(pts in arb_points(3..12), angle in 0.0f64..std::f64::consts::TAU) {
        if let Some(poly) = Polygon::try_new(pts) {
            let r = poly.rotated(Point::origin(), angle);
            prop_assert!((poly.area() - r.area()).abs() < 1e-5 * poly.area().max(1.0));
        }
    }

    #[test]
    fn hull_contains_all_points(pts in arb_points(3..40)) {
        if let Some(hull) = algorithms::convex_hull(&pts) {
            prop_assert!(hull.is_convex());
            for p in &pts {
                prop_assert!(
                    hull.contains(*p) || hull.distance_to_boundary(*p) < 1e-5,
                    "hull must contain every input point"
                );
            }
        }
    }

    #[test]
    fn hull_area_at_most_bbox_area(pts in arb_points(3..40)) {
        if let Some(hull) = algorithms::convex_hull(&pts) {
            let bb = BoundingBox::from_points(pts.iter().copied());
            prop_assert!(hull.area() <= bb.area() + 1e-6);
        }
    }

    #[test]
    fn polyline_fraction_monotone_along_chain(pts in arb_points(2..10), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        if let Some(pl) = Polyline::try_new(pts) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let total = pl.length();
            if total > 1e-6 {
                // Arc distance from start to point_at_fraction(hi) >= to point_at_fraction(lo)
                // measured by walking: approximate via comparing fractions of length directly.
                let a = pl.point_at_fraction(lo);
                let b = pl.point_at_fraction(hi);
                // Both points must lie on the chain.
                prop_assert!(pl.distance_to_point(a) < 1e-6);
                prop_assert!(pl.distance_to_point(b) < 1e-6);
            }
        }
    }

    #[test]
    fn simplified_polyline_stays_close(pts in arb_points(2..30), eps in 0.01f64..5.0) {
        if let Some(pl) = Polyline::try_new(pts) {
            let simp = pl.simplified(eps);
            prop_assert!(simp.len() <= pl.len());
            // Every original point stays within eps of the simplified chain.
            for p in pl.points() {
                prop_assert!(simp.distance_to_point(*p) <= eps + 1e-6);
            }
        }
    }

    #[test]
    fn circle_polygonization_inside_circle(cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 0.1f64..20.0, sides in 3usize..64) {
        let c = Circle::new(Point::new(cx, cy), r);
        let poly = c.to_polygon(sides);
        for v in poly.vertices() {
            prop_assert!(c.contains(*v));
        }
        prop_assert!(poly.area() <= c.area() + 1e-9);
    }

    #[test]
    fn variance_is_translation_invariant(pts in arb_points(1..30), dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let v1 = algorithms::location_variance(&pts);
        let v2 = algorithms::location_variance(&shifted);
        prop_assert!((v1 - v2).abs() < 1e-5 * v1.max(1.0));
    }

    #[test]
    fn medoid_is_an_input_point(pts in arb_points(1..20)) {
        let m = algorithms::medoid(&pts).unwrap();
        prop_assert!(pts.iter().any(|p| p.distance(m) < 1e-12));
    }

    #[test]
    fn diameter_bounds_path_structure(pts in arb_points(2..20)) {
        let d = algorithms::diameter(&pts);
        let l = algorithms::path_length(&pts);
        // The path visits all points, so it is at least as long as the gap
        // between the farthest consecutive-independent pair can't exceed total.
        prop_assert!(d <= l + 1e-9 || pts.len() == 2);
        let bb = BoundingBox::from_points(pts.iter().copied());
        prop_assert!(d <= bb.diagonal() + 1e-9);
    }
}
