//! The cleaning pipeline: detect → floor-correct → interpolate → (drop).

use crate::speed::SpeedChecker;
use trips_data::{PositioningSequence, RawRecord};
use trips_dsm::{DigitalSpaceModel, DsmError, PathQuery};
use trips_geom::FloorId;

/// What happened to each input record during cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// The record passed the speed constraint unchanged.
    Valid,
    /// The floor attribute was rewritten (floor value correction).
    FloorCorrected { from: FloorId, to: FloorId },
    /// The location was re-derived on the walking path between neighbours.
    Interpolated,
    /// The record could not be repaired and was removed.
    Dropped,
}

/// Cleaning configuration.
#[derive(Debug, Clone)]
pub struct CleanerConfig {
    /// Maximum feasible indoor speed, m/s. 3.0 m/s ≈ brisk walking; faster
    /// implied movement marks a record invalid.
    pub max_speed: f64,
    /// Enable floor value correction (ablation A1 switches this off).
    pub floor_correction: bool,
    /// Enable location interpolation (ablation A1 switches this off).
    pub interpolation: bool,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            max_speed: 3.0,
            floor_correction: true,
            interpolation: true,
        }
    }
}

/// Aggregate statistics of one cleaning run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleaningReport {
    pub input_records: usize,
    pub valid: usize,
    pub floor_corrected: usize,
    pub interpolated: usize,
    pub dropped: usize,
}

impl CleaningReport {
    /// Fraction of input records that needed any repair.
    pub fn repair_rate(&self) -> f64 {
        if self.input_records == 0 {
            return 0.0;
        }
        (self.floor_corrected + self.interpolated + self.dropped) as f64 / self.input_records as f64
    }
}

/// The result of cleaning one sequence: the cleaned records plus the audit
/// trail aligned with the *input* records.
#[derive(Debug, Clone)]
pub struct CleanedSequence {
    pub sequence: PositioningSequence,
    /// `repairs[i]` tells what happened to input record `i`.
    pub repairs: Vec<RepairKind>,
    pub report: CleaningReport,
}

/// The Raw Data Cleaner (paper §2, Translator module 1).
pub struct Cleaner<'a> {
    dsm: &'a DigitalSpaceModel,
    checker: SpeedChecker<'a>,
    pq: PathQuery<'a>,
    config: CleanerConfig,
}

impl<'a> Cleaner<'a> {
    /// Creates a cleaner over a frozen DSM.
    pub fn new(dsm: &'a DigitalSpaceModel, config: CleanerConfig) -> Result<Self, DsmError> {
        Ok(Cleaner {
            dsm,
            checker: SpeedChecker::new(dsm, config.max_speed)?,
            pq: PathQuery::new(dsm)?,
            config,
        })
    }

    /// Creates a cleaner with default configuration.
    pub fn with_defaults(dsm: &'a DigitalSpaceModel) -> Result<Self, DsmError> {
        Self::new(dsm, CleanerConfig::default())
    }

    /// Cleans one positioning sequence.
    pub fn clean(&self, seq: &PositioningSequence) -> CleanedSequence {
        let input = seq.records();
        let n = input.len();
        let mut working: Vec<RawRecord> = input.to_vec();
        let mut repairs = vec![RepairKind::Valid; n];
        // `alive[i]`: record i currently participates in the output.
        let mut alive = vec![true; n];
        // `settled[i]`: record i is known to satisfy the constraint w.r.t.
        // its settled predecessor.
        let mut settled = vec![false; n];

        // Pass 1: forward scan marking invalid records.
        let mut last_valid: Option<usize> = None;
        let mut invalid: Vec<usize> = Vec::new();
        for i in 0..n {
            let ok = match last_valid {
                None => true, // first record is trusted until contradicted
                Some(j) => self.checker.feasible(&working[j], &working[i]),
            };
            if ok {
                settled[i] = true;
                last_valid = Some(i);
            } else {
                invalid.push(i);
            }
        }

        // Pass 2: repair invalid records in time order.
        for &i in &invalid {
            let prev = (0..i).rev().find(|&j| alive[j] && settled[j]);
            let next = (i + 1..n).find(|&j| alive[j] && settled[j]);

            // Step 1: floor value correction — only meaningful when the
            // record's floor disagrees with its valid neighbours.
            if self.config.floor_correction {
                if let Some(target) = self.consensus_floor(&working, prev, next) {
                    if target != working[i].location.floor {
                        let mut candidate = working[i].clone();
                        candidate.location = candidate.location.with_floor(target);
                        if self.repair_fits(&working, prev, next, &candidate) {
                            let from = working[i].location.floor;
                            working[i] = candidate;
                            repairs[i] = RepairKind::FloorCorrected { from, to: target };
                            settled[i] = true;
                            continue;
                        }
                    }
                }
            }

            // Step 2: location interpolation between valid neighbours.
            if self.config.interpolation {
                if let (Some(p), Some(nx)) = (prev, next) {
                    if let Some(loc) = self.interpolate(&working[p], &working[nx], &working[i]) {
                        let mut candidate = working[i].clone();
                        candidate.location = loc;
                        if self.repair_fits(&working, Some(p), Some(nx), &candidate) {
                            working[i] = candidate;
                            repairs[i] = RepairKind::Interpolated;
                            settled[i] = true;
                            continue;
                        }
                    }
                }
            }

            // Unrepairable: drop.
            alive[i] = false;
            repairs[i] = RepairKind::Dropped;
        }

        let cleaned: Vec<RawRecord> = (0..n)
            .filter(|&i| alive[i])
            .map(|i| working[i].clone())
            .collect();

        let mut report = CleaningReport {
            input_records: n,
            ..CleaningReport::default()
        };
        for r in &repairs {
            match r {
                RepairKind::Valid => report.valid += 1,
                RepairKind::FloorCorrected { .. } => report.floor_corrected += 1,
                RepairKind::Interpolated => report.interpolated += 1,
                RepairKind::Dropped => report.dropped += 1,
            }
        }

        CleanedSequence {
            sequence: PositioningSequence::from_records(seq.device().clone(), cleaned),
            repairs,
            report,
        }
    }

    /// The floor both valid neighbours agree on (or the single neighbour's
    /// floor when only one side exists).
    fn consensus_floor(
        &self,
        working: &[RawRecord],
        prev: Option<usize>,
        next: Option<usize>,
    ) -> Option<FloorId> {
        match (prev, next) {
            (Some(p), Some(n)) => {
                let (fp, fn_) = (working[p].location.floor, working[n].location.floor);
                (fp == fn_).then_some(fp)
            }
            (Some(p), None) => Some(working[p].location.floor),
            (None, Some(n)) => Some(working[n].location.floor),
            (None, None) => None,
        }
    }

    /// Whether a candidate repair satisfies the constraint against both
    /// neighbours (where they exist).
    fn repair_fits(
        &self,
        working: &[RawRecord],
        prev: Option<usize>,
        next: Option<usize>,
        candidate: &RawRecord,
    ) -> bool {
        if let Some(p) = prev {
            if !self.checker.feasible(&working[p], candidate) {
                return false;
            }
        }
        if let Some(n) = next {
            if !self.checker.feasible(candidate, &working[n]) {
                return false;
            }
        }
        true
    }

    /// Derives the location of `mid` on the walking path `prev → next` at
    /// the time-proportional fraction (paper: "deriving the possible
    /// locations at the time of that record based on the indoor geometrical
    /// and topological information").
    fn interpolate(
        &self,
        prev: &RawRecord,
        next: &RawRecord,
        mid: &RawRecord,
    ) -> Option<trips_geom::IndoorPoint> {
        let total = (next.ts - prev.ts).as_secs_f64();
        if total <= 0.0 {
            return None;
        }
        let frac = ((mid.ts - prev.ts).as_secs_f64() / total).clamp(0.0, 1.0);
        let path = self.pq.path(&prev.location, &next.location)?;
        Some(path.point_at_fraction(frac))
    }

    /// The DSM this cleaner operates on.
    pub fn dsm(&self) -> &DigitalSpaceModel {
        self.dsm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn rec(x: f64, y: f64, floor: i16, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            floor,
            Timestamp::from_millis(secs * 1000),
        )
    }

    fn seq(recs: Vec<RawRecord>) -> PositioningSequence {
        PositioningSequence::from_records(DeviceId::new("d"), recs)
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new().floors(3).shops_per_row(4).build()
    }

    #[test]
    fn clean_sequence_passes_through() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let s = seq((0..10)
            .map(|i| rec(10.0 + i as f64, 11.0, 0, i * 7))
            .collect());
        let out = cleaner.clean(&s);
        assert_eq!(out.report.valid, 10);
        assert_eq!(out.report.repair_rate(), 0.0);
        assert_eq!(out.sequence.len(), 10);
        assert_eq!(out.sequence.records(), s.records());
    }

    #[test]
    fn floor_misread_corrected() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        // Stationary in the hallway on floor 0; one record reads floor 1.
        let mut recs: Vec<RawRecord> = (0..6).map(|i| rec(20.0, 11.0, 0, i * 7)).collect();
        recs[3] = rec(20.0, 11.0, 1, 21);
        let out = cleaner.clean(&seq(recs));
        assert_eq!(out.report.floor_corrected, 1);
        assert_eq!(out.report.dropped, 0);
        assert!(matches!(
            out.repairs[3],
            RepairKind::FloorCorrected { from: 1, to: 0 }
        ));
        assert!(out.sequence.records().iter().all(|r| r.location.floor == 0));
    }

    #[test]
    fn outlier_interpolated_onto_path() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        // Walking along the hallway; one wild outlier mid-way.
        let mut recs: Vec<RawRecord> = (0..7)
            .map(|i| rec(10.0 + 2.0 * i as f64, 11.0, 0, i * 7))
            .collect();
        recs[3] = rec(39.0, 20.5, 0, 21); // far off the hallway line
        let out = cleaner.clean(&seq(recs));
        assert_eq!(out.report.interpolated, 1, "report: {:?}", out.report);
        let repaired = &out.sequence.records()[3];
        // Interpolated between (14,11)@14s and (18,11)@28s → (16,11)@21s.
        assert!((repaired.location.xy.x - 16.0).abs() < 0.5);
        assert!((repaired.location.xy.y - 11.0).abs() < 0.5);
    }

    #[test]
    fn tail_outlier_dropped() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let mut recs: Vec<RawRecord> = (0..5)
            .map(|i| rec(10.0 + i as f64, 11.0, 0, i * 7))
            .collect();
        recs.push(rec(500.0, 500.0, 0, 35)); // unreachable tail
        let out = cleaner.clean(&seq(recs));
        assert_eq!(out.report.dropped, 1);
        assert_eq!(out.sequence.len(), 5);
        assert_eq!(out.repairs[5], RepairKind::Dropped);
    }

    #[test]
    fn disabled_repairs_drop_instead() {
        let dsm = mall();
        let cleaner = Cleaner::new(
            &dsm,
            CleanerConfig {
                floor_correction: false,
                interpolation: false,
                ..CleanerConfig::default()
            },
        )
        .unwrap();
        let mut recs: Vec<RawRecord> = (0..6).map(|i| rec(20.0, 11.0, 0, i * 7)).collect();
        recs[3] = rec(20.0, 11.0, 2, 21);
        let out = cleaner.clean(&seq(recs));
        assert_eq!(out.report.floor_corrected, 0);
        assert_eq!(out.report.dropped, 1);
    }

    #[test]
    fn cleaning_is_idempotent() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let mut recs: Vec<RawRecord> = (0..8)
            .map(|i| rec(10.0 + 2.0 * i as f64, 11.0, 0, i * 7))
            .collect();
        recs[2] = rec(14.0, 11.0, 1, 14); // floor error
        recs[5] = rec(55.0, 18.0, 0, 35); // outlier
        let once = cleaner.clean(&seq(recs));
        let twice = cleaner.clean(&once.sequence);
        assert_eq!(twice.report.repair_rate(), 0.0, "second pass finds nothing");
        assert_eq!(once.sequence.records(), twice.sequence.records());
    }

    #[test]
    fn empty_and_singleton_sequences() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let empty = cleaner.clean(&seq(vec![]));
        assert_eq!(empty.report.input_records, 0);
        assert!(empty.sequence.is_empty());
        let single = cleaner.clean(&seq(vec![rec(5.0, 5.0, 0, 0)]));
        assert_eq!(single.report.valid, 1);
        assert_eq!(single.sequence.len(), 1);
    }

    #[test]
    fn duplicate_timestamp_dropped() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let recs = vec![
            rec(10.0, 11.0, 0, 0),
            rec(10.5, 11.0, 0, 0), // same timestamp: infeasible
            rec(11.0, 11.0, 0, 7),
        ];
        let out = cleaner.clean(&seq(recs));
        assert_eq!(out.report.dropped, 1);
        assert_eq!(out.sequence.len(), 2);
    }

    #[test]
    fn audit_trail_alignment() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let mut recs: Vec<RawRecord> = (0..5)
            .map(|i| rec(10.0 + i as f64, 11.0, 0, i * 7))
            .collect();
        recs[2] = rec(70.0, 11.0, 0, 14);
        let s = seq(recs);
        let out = cleaner.clean(&s);
        assert_eq!(out.repairs.len(), s.len());
        // Exactly one non-valid entry, at index 2.
        let non_valid: Vec<usize> = out
            .repairs
            .iter()
            .enumerate()
            .filter(|(_, r)| **r != RepairKind::Valid)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(non_valid, vec![2]);
    }

    #[test]
    fn report_counts_sum_to_input() {
        let dsm = mall();
        let cleaner = Cleaner::with_defaults(&dsm).unwrap();
        let mut recs: Vec<RawRecord> = (0..20)
            .map(|i| rec(10.0 + i as f64, 11.0, 0, i * 7))
            .collect();
        recs[4] = rec(70.0, 11.0, 0, 28);
        recs[10] = rec(20.0, 11.0, 2, 70);
        recs[19] = rec(500.0, 500.0, 0, 133);
        let out = cleaner.clean(&seq(recs));
        let r = out.report;
        assert_eq!(
            r.valid + r.floor_corrected + r.interpolated + r.dropped,
            r.input_records
        );
    }
}
