//! The Cleaning layer of the three-layer translation framework (paper §3).
//!
//! Raw indoor positioning data carries characteristic errors: planar noise,
//! outlier jumps, floor misreads, and gaps. The Cleaning layer "identifies
//! and repairs the distinct raw data errors" by checking the *indoor speed
//! constraint* — people cannot move faster than a walking-speed bound along
//! the **minimum indoor walking distance** between consecutive records
//! (Yang et al., paper ref \[13\]). An invalid record is repaired in two
//! steps:
//!
//! 1. **floor value correction** — fix an erroneous floor attribute;
//! 2. **location interpolation** — if the violation persists, re-derive the
//!    location from the walking path between the surrounding valid records
//!    using the DSM's geometry and topology.
//!
//! The entry point is [`Cleaner`]; its [`Cleaner::clean`] returns both the
//! cleaned sequence and a per-record audit trail ([`RepairKind`]) that the
//! Viewer uses to display raw vs cleaned data side by side.

mod cleaner;
mod speed;

pub use cleaner::{CleanedSequence, Cleaner, CleanerConfig, CleaningReport, RepairKind};
pub use speed::{SpeedChecker, SpeedViolation};
