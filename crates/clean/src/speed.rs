//! The indoor speed constraint.

use trips_data::RawRecord;
use trips_dsm::{DigitalSpaceModel, DsmError, PathQuery};

/// A detected speed-constraint violation between two records.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedViolation {
    /// Index of the earlier (reference) record.
    pub from_idx: usize,
    /// Index of the violating record.
    pub to_idx: usize,
    /// Implied speed over the minimum walking distance, m/s.
    pub implied_speed: f64,
}

/// Checks the indoor speed constraint over the minimum walking distance.
pub struct SpeedChecker<'a> {
    dsm: &'a DigitalSpaceModel,
    pq: PathQuery<'a>,
    /// Maximum feasible indoor speed, m/s.
    pub max_speed: f64,
}

impl<'a> SpeedChecker<'a> {
    /// Creates a checker. Fails if the DSM is not frozen.
    pub fn new(dsm: &'a DigitalSpaceModel, max_speed: f64) -> Result<Self, DsmError> {
        assert!(max_speed > 0.0, "max_speed must be positive");
        Ok(SpeedChecker {
            dsm,
            pq: PathQuery::new(dsm)?,
            max_speed,
        })
    }

    /// Minimum walking distance between two record locations, with a
    /// same-area fast path (inside one room the walking distance *is* the
    /// Euclidean distance, no graph search needed).
    pub fn walking_distance(&self, a: &RawRecord, b: &RawRecord) -> Option<f64> {
        if a.location.floor == b.location.floor {
            let ra = self.dsm.locate(&a.location);
            let rb = self.dsm.locate(&b.location);
            if let (Some(ra), Some(rb)) = (ra, rb) {
                if ra.id == rb.id {
                    return Some(a.location.planar_distance(&b.location));
                }
            }
        }
        self.pq.distance(&a.location, &b.location)
    }

    /// Whether moving from `a` to `b` is feasible under the constraint.
    ///
    /// Infeasible when: timestamps do not advance, the points are mutually
    /// unreachable, or the implied speed exceeds `max_speed`.
    pub fn feasible(&self, a: &RawRecord, b: &RawRecord) -> bool {
        let dt = (b.ts - a.ts).as_secs_f64();
        if dt <= 0.0 {
            return false;
        }
        match self.walking_distance(a, b) {
            None => false,
            Some(d) => d / dt <= self.max_speed * (1.0 + 1e-9),
        }
    }

    /// Implied speed from `a` to `b` over the walking distance (m/s);
    /// `f64::INFINITY` when infeasible by time or reachability.
    pub fn implied_speed(&self, a: &RawRecord, b: &RawRecord) -> f64 {
        let dt = (b.ts - a.ts).as_secs_f64();
        if dt <= 0.0 {
            return f64::INFINITY;
        }
        match self.walking_distance(a, b) {
            None => f64::INFINITY,
            Some(d) => d / dt,
        }
    }

    /// Scans a record slice and reports all violations against the previous
    /// *valid* record (greedy forward scan — the standard online filter).
    pub fn scan(&self, records: &[RawRecord]) -> Vec<SpeedViolation> {
        let mut violations = Vec::new();
        let mut last_valid: Option<usize> = None;
        for i in 0..records.len() {
            match last_valid {
                None => {
                    last_valid = Some(i);
                }
                Some(j) => {
                    if self.feasible(&records[j], &records[i]) {
                        last_valid = Some(i);
                    } else {
                        violations.push(SpeedViolation {
                            from_idx: j,
                            to_idx: i,
                            implied_speed: self.implied_speed(&records[j], &records[i]),
                        });
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn rec(x: f64, y: f64, floor: i16, secs: i64) -> RawRecord {
        RawRecord::new(
            DeviceId::new("d"),
            x,
            y,
            floor,
            Timestamp::from_millis(secs * 1000),
        )
    }

    fn mall() -> DigitalSpaceModel {
        MallBuilder::new().floors(2).shops_per_row(4).build()
    }

    #[test]
    fn slow_movement_is_feasible() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        // 5 m in 10 s inside the hallway.
        let a = rec(10.0, 11.0, 0, 0);
        let b = rec(15.0, 11.0, 0, 10);
        assert!(c.feasible(&a, &b));
        assert!((c.implied_speed(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn teleport_violates() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        // 60 m in 1 s.
        let a = rec(5.0, 11.0, 0, 0);
        let b = rec(65.0, 11.0, 0, 1);
        assert!(!c.feasible(&a, &b));
    }

    #[test]
    fn wall_detour_counts() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        // Adjacent shops: 10 m apart planar, but the walk goes via both
        // doors through the hallway (~ 18+ m). At 4 s the planar speed is
        // 2.5 m/s (feasible) but the walking speed exceeds 3 m/s.
        let a = rec(5.0, 4.0, 0, 0);
        let b = rec(15.0, 4.0, 0, 4);
        let walk = c.walking_distance(&a, &b).unwrap();
        assert!(walk > 12.0, "walking distance must detour: {walk}");
        assert!(!c.feasible(&a, &b));
        // With more time it becomes feasible.
        let b_slow = rec(15.0, 4.0, 0, 20);
        assert!(c.feasible(&a, &b_slow));
    }

    #[test]
    fn same_room_fast_path_equals_euclidean() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        let a = rec(2.0, 2.0, 0, 0);
        let b = rec(6.0, 5.0, 0, 10);
        assert!((c.walking_distance(&a, &b).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn floor_jump_requires_staircase_time() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        // Same planar spot, different floor, 2 s apart: the staircase walk
        // makes this infeasible.
        let a = rec(20.0, 11.0, 0, 0);
        let b = rec(20.0, 11.0, 1, 2);
        assert!(!c.feasible(&a, &b));
        // Same transition with 60 s is fine.
        let b_slow = rec(20.0, 11.0, 1, 60);
        assert!(c.feasible(&a, &b_slow));
    }

    #[test]
    fn non_advancing_time_is_infeasible() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        let a = rec(1.0, 1.0, 0, 10);
        let b = rec(1.5, 1.0, 0, 10);
        assert!(!c.feasible(&a, &b));
        assert!(c.implied_speed(&a, &b).is_infinite());
        let c2 = rec(1.5, 1.0, 0, 5);
        assert!(!c.feasible(&a, &c2), "time regression");
    }

    #[test]
    fn scan_flags_outlier_and_recovers() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        let records = vec![
            rec(10.0, 11.0, 0, 0),
            rec(11.0, 11.0, 0, 7),
            rec(70.0, 11.0, 0, 14), // outlier jump
            rec(13.0, 11.0, 0, 21), // back on track
        ];
        let v = c.scan(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].from_idx, 1);
        assert_eq!(v[0].to_idx, 2);
        assert!(v[0].implied_speed > 3.0);
    }

    #[test]
    fn scan_clean_sequence_no_violations() {
        let dsm = mall();
        let c = SpeedChecker::new(&dsm, 3.0).unwrap();
        let records: Vec<RawRecord> = (0..20)
            .map(|i| rec(10.0 + i as f64, 11.0, 0, i * 7))
            .collect();
        assert!(c.scan(&records).is_empty());
        assert!(c.scan(&[]).is_empty());
        assert!(c.scan(&records[..1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_speed must be positive")]
    fn rejects_bad_speed() {
        let dsm = mall();
        let _ = SpeedChecker::new(&dsm, 0.0);
    }
}
