//! Criterion bench for Figure 2: DSM creation — drawing-tool ops, builder
//! construction, topology computation, JSON round-trip.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use trips_dsm::builder::MallBuilder;
use trips_dsm::canvas::FloorplanCanvas;
use trips_dsm::entity::EntityKind;
use trips_dsm::json as dsm_json;
use trips_geom::Point;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_dsm");

    // Drawing ops: one shop trace (polygon + door + tag) with snapping.
    g.bench_function("canvas_draw_shop", |b| {
        b.iter_batched(
            || {
                let mut canvas = FloorplanCanvas::new(0);
                canvas.draw_polygon(
                    EntityKind::Room,
                    "seed",
                    vec![
                        Point::new(0.0, 0.0),
                        Point::new(10.0, 0.0),
                        Point::new(10.0, 8.0),
                        Point::new(0.0, 8.0),
                    ],
                );
                canvas
            },
            |mut canvas| {
                let id = canvas.draw_polygon(
                    EntityKind::Room,
                    "shop",
                    vec![
                        Point::new(10.02, 0.01),
                        Point::new(20.0, 0.0),
                        Point::new(20.0, 8.0),
                        Point::new(9.98, 8.01),
                    ],
                );
                canvas.draw_door("door", Point::new(15.0, 8.0), 1.5);
                canvas
                    .assign_tag(id, trips_dsm::SemanticTag::new("shop", "shop"))
                    .expect("tag");
                canvas
            },
            BatchSize::SmallInput,
        )
    });

    // Builder + freeze at growing floor counts.
    for floors in [1u16, 4, 7] {
        g.bench_with_input(
            BenchmarkId::new("build_and_freeze", floors),
            &floors,
            |b, &floors| b.iter(|| MallBuilder::new().floors(floors).shops_per_row(8).build()),
        );
    }

    // JSON round-trip of the 7-floor mall.
    let dsm = MallBuilder::new().floors(7).shops_per_row(8).build();
    let json = dsm_json::to_json(&dsm).expect("json");
    g.bench_function("json_serialize_7floor", |b| {
        b.iter(|| dsm_json::to_json(&dsm).expect("json"))
    });
    g.bench_function("json_parse_7floor", |b| {
        b.iter(|| dsm_json::from_json(&json).expect("parse"))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
