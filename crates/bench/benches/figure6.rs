//! Criterion bench for Figure 6: demo-scale translation and the parallel
//! backend (serial vs multi-threaded on the same workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_core::{Translator, TranslatorConfig};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(7, 6, 30, 1, 0xBEF601, ErrorModel::default());
    let editor = editor_from_truth(&ds, 15);
    let seqs = ds.sequences();
    let records: usize = seqs.iter().map(|s| s.len()).sum();

    let mut g = c.benchmark_group("figure6_demo_scale");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(records as u64));

    for threads in [1usize, 4] {
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::parallel(threads))
                .expect("translator");
        g.bench_with_input(
            BenchmarkId::new("translate_30_devices_threads", threads),
            &seqs,
            |b, seqs| b.iter(|| translator.translate(seqs)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
