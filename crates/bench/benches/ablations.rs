//! Criterion bench for the ablations: cleaning repair variants (A1),
//! splitting strategies (A2), and knowledge priors (A3) as timed operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trips_annotate::{split, SplitConfig};
use trips_bench::{editor_from_truth, make_dataset};
use trips_clean::{Cleaner, CleanerConfig};
use trips_complement::MobilityKnowledge;
use trips_core::{Translator, TranslatorConfig};
use trips_data::Duration;
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(2, 4, 8, 1, 0xBEFAB1, ErrorModel::default().scaled(2.0));

    let mut g = c.benchmark_group("ablation_cleaning");
    for (name, floor_fix, interp) in [
        ("drop_only", false, false),
        ("floor_only", true, false),
        ("interp_only", false, true),
        ("both", true, true),
    ] {
        let cleaner = Cleaner::new(
            &ds.dsm,
            CleanerConfig {
                floor_correction: floor_fix,
                interpolation: interp,
                ..CleanerConfig::default()
            },
        )
        .expect("frozen");
        g.bench_with_input(BenchmarkId::new("variant", name), &ds, |b, ds| {
            b.iter(|| {
                ds.traces
                    .iter()
                    .map(|t| cleaner.clean(&t.raw).sequence.len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();

    let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");
    let cleaned: Vec<_> = ds.traces.iter().map(|t| cleaner.clean(&t.raw)).collect();
    let mut g = c.benchmark_group("ablation_splitting");
    g.bench_function("density_based", |b| {
        b.iter(|| {
            cleaned
                .iter()
                .map(|cs| split::split(&cs.sequence, &SplitConfig::default()).len())
                .sum::<usize>()
        })
    });
    g.bench_function("fixed_window_60s", |b| {
        b.iter(|| {
            cleaned
                .iter()
                .map(|cs| split::split_fixed_window(&cs.sequence, Duration::from_secs(60)).len())
                .sum::<usize>()
        })
    });
    g.finish();

    // Knowledge priors.
    let editor = editor_from_truth(&ds, 8);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());
    let all_sems: Vec<Vec<_>> = result
        .devices
        .iter()
        .map(|d| d.original_semantics.clone())
        .collect();
    let mut g = c.benchmark_group("ablation_knowledge");
    g.bench_function("uniform_prior", |b| {
        b.iter(|| MobilityKnowledge::uniform(&ds.dsm))
    });
    g.bench_function("distance_decay_prior", |b| {
        b.iter(|| MobilityKnowledge::distance_decay(&ds.dsm))
    });
    g.bench_function("learned", |b| {
        b.iter(|| MobilityKnowledge::build(&ds.dsm, &all_sems, 0.5))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
