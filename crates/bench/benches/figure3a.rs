//! Criterion bench for Figure 3 (Cleaning layer): speed-constraint checking
//! and the full cleaning pass at two error intensities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trips_bench::make_dataset;
use trips_clean::{Cleaner, SpeedChecker};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3a_cleaning");

    for scale in [1.0f64, 3.0] {
        let ds = make_dataset(3, 4, 6, 1, 0xBEF3A1, ErrorModel::default().scaled(scale));
        let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");
        let records: usize = ds.traces.iter().map(|t| t.raw.len()).sum();
        g.throughput(criterion::Throughput::Elements(records as u64));
        g.bench_with_input(
            BenchmarkId::new("clean_6_devices_err", scale),
            &ds,
            |b, ds| {
                b.iter(|| {
                    ds.traces
                        .iter()
                        .map(|t| cleaner.clean(&t.raw).report.repair_rate())
                        .sum::<f64>()
                })
            },
        );
    }

    // Raw speed-constraint scan (detection only).
    let ds = make_dataset(3, 4, 6, 1, 0xBEF3A2, ErrorModel::default());
    let checker = SpeedChecker::new(&ds.dsm, 3.0).expect("frozen");
    g.bench_function("speed_scan_6_devices", |b| {
        b.iter(|| {
            ds.traces
                .iter()
                .map(|t| checker.scan(t.raw.records()).len())
                .sum::<usize>()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
