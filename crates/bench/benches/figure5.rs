//! Criterion bench for Figure 5: the complete five-step workflow as one
//! operation (configuration reuse from the store included).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_core::{export, Configurator, Trips};
use trips_data::{Duration, SelectionRule, Selector};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(3, 4, 10, 1, 0xBEF501, ErrorModel::default());
    let editor = editor_from_truth(&ds, 10);

    let mut g = c.benchmark_group("figure5_walkthrough");
    g.sample_size(15);
    g.bench_function("five_step_workflow", |b| {
        b.iter_batched(
            || (ds.sequences(), editor.clone()),
            |(seqs, editor)| {
                let selector = Selector::new(SelectionRule::MinDuration(Duration::from_mins(5)));
                let mut system = Trips::new(
                    Configurator::new(ds.dsm.clone())
                        .with_selector(selector)
                        .with_event_editor(editor),
                );
                system.run(seqs).expect("translate");
                let device = system.result().unwrap().devices[0].raw.device().clone();
                let svg = system.render_svg(&device, 0).expect("svg");
                let text = export::to_text(system.result().unwrap());
                (svg.len(), text.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
