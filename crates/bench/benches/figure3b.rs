//! Criterion bench for Figure 3 (Annotation layer): density splitting,
//! feature extraction, model training and prediction, full annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use trips_annotate::features::FeatureVector;
use trips_annotate::model::{DecisionTree, RandomForest, TreeParams};
use trips_annotate::{split, Annotator, AnnotatorConfig, SplitConfig};
use trips_bench::{editor_from_truth, labelled_snippets, make_dataset};
use trips_clean::Cleaner;
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(2, 4, 10, 1, 0xBEF3B1, ErrorModel::default());
    let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");
    let cleaned: Vec<_> = ds.traces.iter().map(|t| cleaner.clean(&t.raw)).collect();
    let (xs, ys) = labelled_snippets(&ds);

    let mut g = c.benchmark_group("figure3b_annotation");

    g.bench_function("density_split_10_devices", |b| {
        b.iter(|| {
            cleaned
                .iter()
                .map(|cs| split::split(&cs.sequence, &SplitConfig::default()).len())
                .sum::<usize>()
        })
    });

    let sample = ds.traces[0].raw.records();
    g.bench_function("feature_extraction", |b| {
        b.iter(|| FeatureVector::extract(sample))
    });

    g.bench_function("train_decision_tree", |b| {
        b.iter(|| DecisionTree::train(&xs, &ys, 2, &TreeParams::default()))
    });

    g.bench_function("train_random_forest_15", |b| {
        b.iter(|| RandomForest::train(&xs, &ys, 2, 15, 42))
    });

    let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
    g.bench_function("tree_predict", |b| {
        use trips_annotate::model::Classifier;
        b.iter(|| tree.predict(&xs[0]))
    });

    // Full annotation of all cleaned sequences.
    let editor = editor_from_truth(&ds, 10);
    let (model, labels) = editor.train_default_model().expect("train");
    let annotator = Annotator::new(&ds.dsm, model, labels, AnnotatorConfig::standard());
    g.bench_function("annotate_10_devices", |b| {
        b.iter(|| {
            cleaned
                .iter()
                .map(|cs| annotator.annotate(&cs.sequence).len())
                .sum::<usize>()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
