//! Criterion bench for Table 1: translating a single device's sequence into
//! mobility semantics (the core translation operation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_core::{Translator, TranslatorConfig};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(2, 4, 4, 1, 0xBE7AB1, ErrorModel::default());
    let editor = editor_from_truth(&ds, 4);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let one = vec![ds.traces[0].raw.clone()];

    let mut g = c.benchmark_group("table1_translation");
    g.throughput(criterion::Throughput::Elements(one[0].len() as u64));
    g.bench_function("single_device", |b| {
        b.iter_batched(
            || one.clone(),
            |seqs| translator.translate(&seqs),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
