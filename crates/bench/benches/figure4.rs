//! Criterion bench for Figure 4: the Viewer — entry abstraction, timeline
//! construction/queries, SVG and ASCII rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_core::{Translator, TranslatorConfig};
use trips_data::Timestamp;
use trips_sim::ErrorModel;
use trips_viewer::{ascii, Entry, MapView, SourceKind, SvgRenderer, Timeline, VisibilityControl};

fn bench(c: &mut Criterion) {
    let ds = make_dataset(2, 4, 15, 1, 0xBEF401, ErrorModel::default());
    let editor = editor_from_truth(&ds, 15);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());

    let build_entries = || {
        let mut entries: Vec<Entry> = Vec::new();
        for d in &result.devices {
            for r in d.raw.records() {
                entries.push(Entry::from_record(r, SourceKind::Raw));
            }
            for s in &d.semantics {
                entries.push(Entry::from_semantics(s, &ds.dsm));
            }
        }
        entries
    };

    let mut g = c.benchmark_group("figure4_viewer");

    g.bench_function("abstraction", |b| b.iter(build_entries));

    let entries = build_entries();
    g.bench_function("timeline_build", |b| {
        b.iter(|| Timeline::new(entries.clone()))
    });

    let timeline = Timeline::new(entries);
    g.bench_function("navigator_click", |b| {
        b.iter(|| timeline.click_navigator(0).map(|v| v.len()))
    });

    let (start, end) = timeline.span().expect("non-empty");
    let mid = Timestamp((start.as_millis() + end.as_millis()) / 2);
    g.bench_function("instant_query", |b| b.iter(|| timeline.at(mid).len()));

    let renderer = SvgRenderer::new(MapView::fit_to_floor(&ds.dsm, 0, 1000.0, 700.0));
    g.bench_function("svg_render", |b| {
        b.iter(|| {
            renderer.render(
                &ds.dsm,
                timeline.entries(),
                &VisibilityControl::all_visible(),
            )
        })
    });

    g.bench_function("ascii_render", |b| {
        b.iter(|| {
            ascii::render(
                &ds.dsm,
                0,
                timeline.entries(),
                &VisibilityControl::all_visible(),
                80,
                24,
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
