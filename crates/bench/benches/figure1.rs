//! Criterion bench for Figure 1: end-to-end pipeline throughput across the
//! whole architecture (selection → cleaning → annotation → complementing).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_core::{Translator, TranslatorConfig};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let ds = make_dataset(2, 4, 12, 1, 0xBEF161, ErrorModel::default());
    let editor = editor_from_truth(&ds, 12);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let seqs = ds.sequences();
    let records: usize = seqs.iter().map(|s| s.len()).sum();

    let mut g = c.benchmark_group("figure1_pipeline");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(records as u64));
    g.bench_function("end_to_end_12_devices", |b| {
        b.iter_batched(
            || seqs.clone(),
            |s| translator.translate(&s),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
