//! Criterion bench for Figure 3 (Complementing layer): knowledge
//! construction, MAP path inference, and full gap complementing.

use criterion::{criterion_group, criterion_main, Criterion};
use trips_bench::{editor_from_truth, make_dataset};
use trips_complement::{infer, Complementor, ComplementorConfig, MobilityKnowledge};
use trips_core::{Translator, TranslatorConfig};
use trips_sim::ErrorModel;

fn bench(c: &mut Criterion) {
    let em = ErrorModel {
        burst_drop_rate: 0.04,
        burst_len: 40,
        ..ErrorModel::default()
    };
    let ds = make_dataset(2, 4, 15, 1, 0xBEF3C1, em);
    let editor = editor_from_truth(&ds, 15);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());
    let all_sems: Vec<Vec<_>> = result
        .devices
        .iter()
        .map(|d| d.original_semantics.clone())
        .collect();

    let mut g = c.benchmark_group("figure3c_complementing");

    g.bench_function("knowledge_build_15_devices", |b| {
        b.iter(|| MobilityKnowledge::build(&ds.dsm, &all_sems, 0.5))
    });

    let knowledge = MobilityKnowledge::build(&ds.dsm, &all_sems, 0.5);
    let regions: Vec<_> = ds.dsm.regions().map(|r| r.id).collect();
    g.bench_function("map_path_inference", |b| {
        b.iter(|| infer::map_path(&knowledge, regions[0], regions[regions.len() - 1], 4))
    });

    let complementor = Complementor::new(&ds.dsm, knowledge.clone(), ComplementorConfig::default());
    g.bench_function("complement_15_devices", |b| {
        b.iter(|| {
            all_sems
                .iter()
                .map(|s| complementor.complement(s).len())
                .sum::<usize>()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
