//! **Figure 5** — the five-step workflow in the shopping-mall scenario.
//!
//! Scripts the paper's walkthrough and reports each step's inputs, outputs
//! and wall time, ending with the Viewer-side assessment numbers.
//!
//! Run: `cargo run -p trips-bench --bin figure5 --release`

use trips_bench::{assess_result, editor_from_truth, f1, f3, make_dataset, time_ms, Table};
use trips_core::{export, Configurator, Trips};
use trips_data::selector::Quantifier;
use trips_data::{Duration, SelectionRule, Selector};
use trips_sim::ErrorModel;

fn main() {
    println!("== Figure 5: the five-step TRIPS workflow ==\n");
    let ds = make_dataset(7, 6, 40, 7, 0xF16005, ErrorModel::default());
    println!(
        "dataset: {} ({} records)\n",
        ds.config_summary,
        ds.record_count()
    );

    let mut t = Table::new(&["step", "what", "output", "ms"]);

    // Step 1: Data Selector.
    let selector = Selector::new(
        SelectionRule::TimeOfDayWindow {
            from: Duration::from_hours(10),
            to: Duration::from_hours(22),
            quantifier: Quantifier::All,
        }
        .and(SelectionRule::MinRecords(20)),
    );
    let (selected_count, sel_ms) = time_ms(|| selector.select_refs(&ds.sequences()).len());
    t.row(&[
        "(1)".into(),
        "Data Selector: operating hours ∧ ≥20 records".into(),
        format!("{selected_count}/{} sequences", ds.traces.len()),
        f1(sel_ms),
    ]);

    // Step 2: Space Modeler (DSM serialisation stands for the save).
    let (json, dsm_ms) = time_ms(|| trips_dsm::json::to_json(&ds.dsm).expect("json"));
    t.row(&[
        "(2)".into(),
        "Space Modeler: save DSM".into(),
        format!(
            "{} entities, {} regions, {} KiB",
            ds.dsm.entity_count(),
            ds.dsm.region_count(),
            json.len() / 1024
        ),
        f1(dsm_ms),
    ]);

    // Step 3: Event Editor.
    let (editor, editor_ms) = time_ms(|| editor_from_truth(&ds, 15));
    t.row(&[
        "(3)".into(),
        "Event Editor: designate training segments".into(),
        format!(
            "{} patterns, {} segments",
            editor.patterns().len(),
            editor.example_count()
        ),
        f1(editor_ms),
    ]);

    // Step 4: Translator.
    let mut system = Trips::new(
        Configurator::new(ds.dsm.clone())
            .with_selector(selector)
            .with_event_editor(editor),
    );
    let sequences = ds.sequences();
    let (_, translate_ms) = time_ms(|| {
        system.run(sequences).expect("translate");
    });
    let result = system.result().expect("ran");
    t.row(&[
        "(4)".into(),
        "Translator: clean + annotate + complement".into(),
        format!(
            "{} records -> {} semantics",
            result.total_records(),
            result.total_semantics()
        ),
        f1(translate_ms),
    ]);

    // Step 5: Viewer.
    let Some(first) = result.devices.first() else {
        t.print();
        println!("\n(no sequences passed selection — nothing to view)");
        return;
    };
    let device = first.raw.device().clone();
    let (artifacts, view_ms) = time_ms(|| {
        let timeline = system.timeline_for(&device).expect("timeline");
        let svg = system.render_svg(&device, 0).expect("svg");
        (timeline.len(), svg.len())
    });
    t.row(&[
        "(5)".into(),
        format!("Viewer: timeline + map for {}", device.anonymized()),
        format!("{} entries, {} KiB svg", artifacts.0, artifacts.1 / 1024),
        f1(view_ms),
    ]);

    t.print();

    // Exported result file sample (Figure 5(4)).
    let text = export::to_text(result);
    println!("\ntranslation result file (first 12 lines):");
    for line in text.lines().take(12) {
        println!("  {line}");
    }

    // Assessment.
    let report = assess_result(&ds, result);
    println!("\nassessment vs ground truth:");
    println!(
        "  region-time accuracy  {}",
        f3(report.region_time_accuracy)
    );
    println!("  coverage              {}", f3(report.coverage));
    println!("  event accuracy        {}", f3(report.event_accuracy));
}
