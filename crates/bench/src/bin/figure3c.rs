//! **Figure 3 (Complementing layer)** — gap recovery quality.
//!
//! Injects dropout bursts, then compares four complementing strategies:
//! no complementing, MAP inference with uniform prior, with distance-decay
//! prior, and with learned mobility knowledge (the full system). Reports
//! ground-truth coverage and region-time accuracy.
//!
//! Run: `cargo run -p trips-bench --bin figure3c --release`

use trips_annotate::MobilitySemantics;
use trips_bench::{editor_from_truth, f3, make_dataset, Table};
use trips_complement::{Complementor, ComplementorConfig, MobilityKnowledge};
use trips_core::assess;
use trips_core::{Translator, TranslatorConfig};
use trips_sim::{ErrorModel, SimulatedDataset};

fn assess_sequences(
    ds: &SimulatedDataset,
    per_device: &[(trips_data::DeviceId, Vec<MobilitySemantics>)],
) -> (f64, f64) {
    let mut reports = Vec::new();
    for (device, sems) in per_device {
        if let Some(trace) = ds.traces.iter().find(|t| &t.device == device) {
            reports.push(assess::assess(sems, &trace.truth_visits));
        }
    }
    let agg = assess::aggregate(&reports);
    (agg.coverage, agg.region_time_accuracy)
}

fn main() {
    println!("== Figure 3c: complementing strategies under dropout bursts ==\n");

    // Heavy burst dropouts: the Complementor's reason to exist.
    let em = ErrorModel {
        burst_drop_rate: 0.05,
        burst_len: 45,
        ..ErrorModel::default()
    };
    let ds = make_dataset(2, 4, 40, 1, 0xF16C01, em);
    let editor = editor_from_truth(&ds, 40);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());

    // The original (pre-complement) sequences feed each strategy.
    let originals: Vec<(trips_data::DeviceId, Vec<MobilitySemantics>)> = result
        .devices
        .iter()
        .map(|d| (d.raw.device().clone(), d.original_semantics.clone()))
        .collect();
    let all_original: Vec<Vec<MobilitySemantics>> =
        originals.iter().map(|(_, s)| s.clone()).collect();

    let strategies: Vec<(&str, Option<MobilityKnowledge>)> = vec![
        ("no complementing", None),
        ("uniform prior", Some(MobilityKnowledge::uniform(&ds.dsm))),
        (
            "distance-decay prior",
            Some(MobilityKnowledge::distance_decay(&ds.dsm)),
        ),
        (
            "learned knowledge",
            Some(MobilityKnowledge::build(&ds.dsm, &all_original, 0.5)),
        ),
    ];

    let mut t = Table::new(&["strategy", "coverage", "region acc", "inferred entries"]);
    for (name, knowledge) in strategies {
        let complemented: Vec<(trips_data::DeviceId, Vec<MobilitySemantics>)> = match &knowledge {
            None => originals.clone(),
            Some(k) => {
                let complementor =
                    Complementor::new(&ds.dsm, k.clone(), ComplementorConfig::default());
                originals
                    .iter()
                    .map(|(d, sems)| (d.clone(), complementor.complement(sems)))
                    .collect()
            }
        };
        let inferred: usize = complemented
            .iter()
            .map(|(_, sems)| sems.iter().filter(|s| s.inferred).count())
            .sum();
        let (coverage, accuracy) = assess_sequences(&ds, &complemented);
        t.row(&[
            name.to_string(),
            f3(coverage),
            f3(accuracy),
            inferred.to_string(),
        ]);
    }
    t.print();
    println!("\n(every prior should beat 'no complementing' on coverage; learned knowledge should lead on accuracy)");
}
