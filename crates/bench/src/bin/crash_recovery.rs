//! `crash_recovery` — the two halves of the CI SIGKILL smoke test.
//!
//! Phase `seed` drives a live durable `trips-serve` endpoint: ingest a
//! campus burst over the wire, `Flush` so everything acked is queryable
//! (and therefore journaled), run a fixed query set, and save the
//! results to a JSON file. The harness then `kill -9`s the server,
//! reboots it from the same `--wal-dir`, and phase `verify` re-runs the
//! same query set and asserts byte-identical results — the pre-kill
//! answers *are* the never-killed control.
//!
//! ```text
//! crash_recovery --addr HOST:PORT --phase seed   --out PATH
//!                [--buildings N] [--floors N] [--shops N] [--devices N] [--seed N]
//! crash_recovery --addr HOST:PORT --phase verify --expect PATH
//! ```
//!
//! Exit codes: `0` clean; `1` any protocol error or a query-result
//! mismatch after recovery; `2` usage errors.

use std::time::Duration as StdDuration;
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_server::{Client, Response};
use trips_sim::ScenarioConfig;
use trips_store::{Query, QueryRequest, QueryResult, SemanticsSelector};

struct Options {
    addr: String,
    phase: String,
    out: Option<String>,
    expect: Option<String>,
    buildings: usize,
    floors: u16,
    shops: usize,
    devices: usize,
    seed: u64,
}

fn usage_and_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: crash_recovery --addr HOST:PORT --phase seed|verify \
         [--out PATH] [--expect PATH] [--buildings N] [--floors N] \
         [--shops N] [--devices N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(value) = args.next() else {
        usage_and_exit(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage_and_exit(&format!("invalid value {value:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: String::new(),
        phase: String::new(),
        out: None,
        expect: None,
        buildings: 2,
        floors: 1,
        shops: 3,
        devices: 4,
        seed: 0xC4A5,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => opts.addr = parse(&mut args, "--addr"),
            "--phase" => opts.phase = parse(&mut args, "--phase"),
            "--out" => opts.out = Some(parse(&mut args, "--out")),
            "--expect" => opts.expect = Some(parse(&mut args, "--expect")),
            "--buildings" => opts.buildings = parse(&mut args, "--buildings"),
            "--floors" => opts.floors = parse(&mut args, "--floors"),
            "--shops" => opts.shops = parse(&mut args, "--shops"),
            "--devices" => opts.devices = parse(&mut args, "--devices"),
            "--seed" => opts.seed = parse(&mut args, "--seed"),
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    if opts.addr.is_empty() {
        usage_and_exit("--addr is required");
    }
    match opts.phase.as_str() {
        "seed" if opts.out.is_none() => usage_and_exit("--phase seed needs --out"),
        "verify" if opts.expect.is_none() => usage_and_exit("--phase verify needs --expect"),
        "seed" | "verify" => {}
        other => usage_and_exit(&format!("unknown phase {other:?} (want seed or verify)")),
    }
    opts
}

/// The fixed query set both phases compare (covers every aggregate path
/// plus a filtered rescan).
fn queries() -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(SemanticsSelector::all(), Query::Semantics),
        QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
        QueryRequest::new(SemanticsSelector::all(), Query::TopFlows { limit: 50 }),
        QueryRequest::new(
            SemanticsSelector::all(),
            Query::DwellHistogram {
                bucket: Duration::from_mins(5),
            },
        ),
        QueryRequest::new(SemanticsSelector::all(), Query::DeviceSummaries),
        QueryRequest::new(
            SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            ),
            Query::Semantics,
        ),
    ]
}

fn connect(addr: &str) -> Client {
    // A wedged server must fail the job, not hang it.
    let addr = addr
        .parse()
        .unwrap_or_else(|e| usage_and_exit(&format!("invalid --addr: {e}")));
    match Client::connect_with_timeout(addr, StdDuration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("crash_recovery: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn answers(client: &mut Client) -> Vec<QueryResult> {
    queries()
        .into_iter()
        .map(|q| match client.query(q) {
            Ok(Ok(result)) => result,
            Ok(Err(e)) => {
                eprintln!("crash_recovery: query error: {e}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("crash_recovery: query transport error: {e}");
                std::process::exit(1);
            }
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let mut client = connect(&opts.addr);

    if opts.phase == "seed" {
        let campus = trips_sim::scenario::generate_campus(
            opts.buildings,
            opts.floors,
            opts.shops,
            &ScenarioConfig {
                devices: opts.devices,
                days: 1,
                seed: opts.seed,
                ..ScenarioConfig::default()
            },
        );
        let traffic: Vec<(DeviceId, Vec<RawRecord>)> = campus
            .buildings
            .iter()
            .flat_map(|b| {
                b.dataset
                    .traces
                    .iter()
                    .map(|t| (t.device.clone(), t.raw.records().to_vec()))
            })
            .collect();
        let records: usize = traffic.iter().map(|(_, r)| r.len()).sum();
        eprintln!("crash_recovery: seeding {records} records...");
        for (_, device_records) in &traffic {
            for batch in device_records.chunks(50) {
                match client.ingest(batch.to_vec()) {
                    Ok(Response::Ingested { rejected: 0, .. }) => {}
                    other => {
                        eprintln!("crash_recovery: ingest failed: {other:?}");
                        std::process::exit(1);
                    }
                }
            }
        }
        // Flush: every acked record's semantics become queryable — and,
        // on a durable server, journaled — before we snapshot answers.
        match client.flush(None) {
            Ok(Response::Flushed { .. }) => {}
            other => {
                eprintln!("crash_recovery: flush failed: {other:?}");
                std::process::exit(1);
            }
        }
        let results = answers(&mut client);
        let json = serde_json::to_string_pretty(&results).expect("results serialize");
        let out = opts.out.expect("checked in parse_args");
        std::fs::write(&out, &json).expect("write expected-results file");
        println!(
            "crash_recovery: seeded {} records; {} query answers saved to {out}",
            records,
            results.len()
        );
    } else {
        let expect_path = opts.expect.expect("checked in parse_args");
        let json = std::fs::read_to_string(&expect_path).expect("read expected-results file");
        let expected: Vec<QueryResult> =
            serde_json::from_str(&json).expect("parse expected-results file");
        let got = answers(&mut client);
        if got.len() != expected.len() {
            eprintln!(
                "crash_recovery: MISMATCH — {} answers, expected {}",
                got.len(),
                expected.len()
            );
            std::process::exit(1);
        }
        let mut bad = 0;
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            if g != e {
                eprintln!(
                    "crash_recovery: MISMATCH in query {i}: recovered store answers differently"
                );
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!(
                "crash_recovery: {bad}/{} queries diverged after recovery — acked data was lost \
                 or phantom data resurrected",
                expected.len()
            );
            std::process::exit(1);
        }
        println!(
            "crash_recovery: all {} query answers identical after SIGKILL + recovery",
            expected.len()
        );
    }
}
