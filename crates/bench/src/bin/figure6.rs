//! **Figure 6** — demo-scale deployment.
//!
//! The paper deploys the backend on a Xeon server and serves a 7-floor,
//! 7-day mall dataset. This binary measures translation at growing device
//! counts and the parallel backend's speedup over threads.
//!
//! Run: `cargo run -p trips-bench --bin figure6 --release`
//! (set `TRIPS_FIGURE6_FULL=1` for the full-scale sweep)

use trips_bench::{editor_from_truth, f1, make_dataset, pipeline_table, time_ms, Table};
use trips_core::{Translator, TranslatorConfig};
use trips_sim::ErrorModel;

fn main() {
    println!("== Figure 6: demo-scale translation throughput ==\n");
    let full = std::env::var("TRIPS_FIGURE6_FULL").is_ok();
    let device_counts: &[usize] = if full {
        &[100, 500, 1000]
    } else {
        &[25, 50, 100]
    };
    let days = if full { 7 } else { 2 };

    let mut t = Table::new(&["devices", "records", "wall ms", "krecords/s"]);
    let mut last_report = None;
    for &devices in device_counts {
        let ds = make_dataset(7, 6, devices, days, 0xF16006, ErrorModel::default());
        let editor = editor_from_truth(&ds, 15);
        let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::parallel(4))
            .expect("translator");
        let seqs = ds.sequences();
        let records = ds.record_count();
        let (result, ms) = time_ms(|| translator.translate(&seqs));
        t.row(&[
            devices.to_string(),
            records.to_string(),
            f1(ms),
            f1(records as f64 / ms),
        ]);
        last_report = Some(result.report);
    }
    t.print();

    if let Some(report) = last_report {
        println!("\nper-stage engine timings (largest workload):");
        pipeline_table(&report).print();
    }

    // Parallel speedup at a fixed workload.
    println!("\nparallel backend speedup (fixed workload):");
    let ds = make_dataset(
        7,
        6,
        if full { 200 } else { 50 },
        days,
        0xF16007,
        ErrorModel::default(),
    );
    let editor = editor_from_truth(&ds, 15);
    let seqs = ds.sequences();
    let mut t2 = Table::new(&["threads", "wall ms", "speedup"]);
    let mut base_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::parallel(threads))
                .expect("translator");
        let (_, ms) = time_ms(|| translator.translate(&seqs));
        if threads == 1 {
            base_ms = ms;
        }
        t2.row(&[threads.to_string(), f1(ms), format!("{:.2}x", base_ms / ms)]);
    }
    t2.print();
    println!("\n(knowledge construction is the serial fraction; speedup is sub-linear by Amdahl)");
}
