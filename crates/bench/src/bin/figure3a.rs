//! **Figure 3 (Cleaning layer)** — error detection and repair quality vs
//! injected error intensity.
//!
//! Sweeps the Wi-Fi error model from mild to severe and reports, for raw vs
//! cleaned data: position RMSE against ground truth, floor error rate, and
//! the repair-action mix (floor corrections / interpolations / drops).
//!
//! Run: `cargo run -p trips-bench --bin figure3a --release`

use trips_bench::{f1, f3, make_dataset, Table};
use trips_clean::Cleaner;
use trips_data::Timestamp;
use trips_geom::IndoorPoint;
use trips_sim::ErrorModel;

struct Fidelity {
    rmse: f64,
    floor_err: f64,
}

fn fidelity(records: &[trips_data::RawRecord], truth: &[(Timestamp, IndoorPoint)]) -> Fidelity {
    let mut err = 0.0;
    let mut floor_bad = 0usize;
    let mut n = 0usize;
    for r in records {
        let idx = truth.partition_point(|(t, _)| *t <= r.ts);
        if idx == 0 {
            continue;
        }
        let t = truth[idx - 1].1;
        err += t.xy.distance(r.location.xy).powi(2);
        floor_bad += usize::from(t.floor != r.location.floor);
        n += 1;
    }
    Fidelity {
        rmse: if n > 0 { (err / n as f64).sqrt() } else { 0.0 },
        floor_err: if n > 0 {
            floor_bad as f64 / n as f64
        } else {
            0.0
        },
    }
}

fn main() {
    println!("== Figure 3a: Cleaning layer vs error intensity ==\n");
    let mut t = Table::new(&[
        "err scale",
        "raw RMSE m",
        "clean RMSE m",
        "raw floor%",
        "clean floor%",
        "floor-fix",
        "interp",
        "drop",
    ]);

    for scale in [0.5, 1.0, 2.0, 3.0, 4.0] {
        let em = ErrorModel::default().scaled(scale);
        let ds = make_dataset(3, 4, 20, 1, 0xF16003, em);
        let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");

        let mut raw_rmse = 0.0;
        let mut clean_rmse = 0.0;
        let mut raw_floor = 0.0;
        let mut clean_floor = 0.0;
        let mut fixes = 0usize;
        let mut interps = 0usize;
        let mut drops = 0usize;
        let n = ds.traces.len() as f64;

        for trace in &ds.traces {
            let raw_fid = fidelity(trace.raw.records(), &trace.truth_samples);
            let out = cleaner.clean(&trace.raw);
            let clean_fid = fidelity(out.sequence.records(), &trace.truth_samples);
            raw_rmse += raw_fid.rmse / n;
            clean_rmse += clean_fid.rmse / n;
            raw_floor += raw_fid.floor_err / n;
            clean_floor += clean_fid.floor_err / n;
            fixes += out.report.floor_corrected;
            interps += out.report.interpolated;
            drops += out.report.dropped;
        }

        t.row(&[
            f1(scale),
            f3(raw_rmse),
            f3(clean_rmse),
            f3(raw_floor * 100.0),
            f3(clean_floor * 100.0),
            fixes.to_string(),
            interps.to_string(),
            drops.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(cleaned RMSE and floor%: lower is better; expectation: cleaned < raw at every scale)"
    );
}
