//! `server_load` — closed-loop multi-threaded load generator for a live
//! `trips-serve` endpoint.
//!
//! Replays `trips_sim::scenario::generate_campus` traffic over the wire
//! (one ingest connection per building, device-major batches; each
//! connection flushes **its own** session before disconnecting — a
//! flush-all is scoped to the requesting session), then drives a
//! concurrent analyst query mix — and, unless disabled, an overload
//! burst sized to exceed the admission queue so the server's load
//! shedding is exercised. With `--scale-conns N` it additionally holds N
//! concurrent mostly-idle connections (the event-driven server's home
//! turf) and measures ping latency plus server memory while they are
//! held. Emits `BENCH_server.json` with ingest + query throughput and
//! tail latency (p50/p99/max/mean, comparable with `BENCH_store.json`)
//! plus the server's own overload counters.
//!
//! ```text
//! server_load --addr HOST:PORT [--quick] [--out PATH] [--protocol 1|2]
//!             [--buildings N] [--floors N] [--shops N] [--devices N]
//!             [--seed N] [--query-conns N] [--query-iters N]
//!             [--no-overload] [--overload-conns N] [--overload-iters N]
//!             [--scale-conns N] [--scale-rounds N]
//!             [--expect-shedding] [--expect-wal] [--shutdown]
//! ```
//!
//! `--protocol 2` runs every phase over the binary v2 framing (see
//! `trips_server::codec`); the default is NDJSON v1 — running both and
//! comparing the reports is the protocol's perf regression check.
//!
//! The `--floors/--shops` layout must match the server's (campus
//! buildings share the mall layout the server's DSM was built from).
//! With `--expect-wal` (a durable server under test) the generator also
//! requests a checkpoint after the paced phases and asserts on the WAL
//! metrics: they must be present, with ≥ 1 segment and a fresh
//! checkpoint age — so `BENCH_server.json` tracks durability overhead
//! and checkpoint health alongside throughput.
//! Exit codes: `0` clean; `1` any hard protocol error in the paced phases,
//! a violated bounded-queue invariant, a failed `--scale-conns` hold,
//! `--expect-shedding` with no sheds observed, or `--expect-wal` with
//! missing/stale WAL metrics; `2` usage errors.

use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_engine::LatencyRecorder;
use trips_server::{Client, Response, ServerError};
use trips_sim::ScenarioConfig;
use trips_store::{Query, SemanticsSelector};

struct Options {
    addr: String,
    quick: bool,
    out: String,
    protocol: u32,
    buildings: usize,
    floors: u16,
    shops: usize,
    devices: usize,
    seed: u64,
    query_conns: usize,
    query_iters: usize,
    overload: bool,
    overload_conns: usize,
    overload_iters: usize,
    scale_conns: usize,
    scale_rounds: usize,
    expect_shedding: bool,
    expect_wal: bool,
    shutdown: bool,
}

fn usage_and_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: server_load --addr HOST:PORT [--quick] [--out PATH] [--protocol 1|2] \
         [--buildings N] [--floors N] [--shops N] [--devices N] [--seed N] \
         [--query-conns N] [--query-iters N] [--no-overload] [--overload-conns N] \
         [--overload-iters N] [--scale-conns N] [--scale-rounds N] \
         [--expect-shedding] [--expect-wal] [--shutdown]"
    );
    std::process::exit(2);
}

/// Connects a client speaking the configured protocol version.
fn connect(addr: &str, protocol: u32) -> std::io::Result<Client> {
    let mut client = Client::connect(addr)?;
    client.set_protocol(protocol)?;
    Ok(client)
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(value) = args.next() else {
        usage_and_exit(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage_and_exit(&format!("invalid value {value:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: String::new(),
        quick: false,
        out: "BENCH_server.json".to_string(),
        protocol: 1,
        buildings: 3,
        floors: 2,
        shops: 3,
        devices: 8,
        seed: 0xBEC4,
        query_conns: 8,
        query_iters: 600,
        overload: true,
        overload_conns: 8,
        overload_iters: 150,
        scale_conns: 0,
        scale_rounds: 3,
        expect_shedding: false,
        expect_wal: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => opts.addr = parse(&mut args, "--addr"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = parse(&mut args, "--out"),
            "--protocol" => {
                opts.protocol = parse(&mut args, "--protocol");
                if !(opts.protocol == 1 || opts.protocol == 2) {
                    usage_and_exit("--protocol must be 1 (NDJSON) or 2 (binary)");
                }
            }
            "--buildings" => opts.buildings = parse(&mut args, "--buildings"),
            "--floors" => opts.floors = parse(&mut args, "--floors"),
            "--shops" => opts.shops = parse(&mut args, "--shops"),
            "--devices" => opts.devices = parse(&mut args, "--devices"),
            "--seed" => opts.seed = parse(&mut args, "--seed"),
            "--query-conns" => opts.query_conns = parse(&mut args, "--query-conns"),
            "--query-iters" => opts.query_iters = parse(&mut args, "--query-iters"),
            "--no-overload" => opts.overload = false,
            "--overload-conns" => opts.overload_conns = parse(&mut args, "--overload-conns"),
            "--overload-iters" => opts.overload_iters = parse(&mut args, "--overload-iters"),
            "--scale-conns" => opts.scale_conns = parse(&mut args, "--scale-conns"),
            "--scale-rounds" => opts.scale_rounds = parse(&mut args, "--scale-rounds"),
            "--expect-shedding" => opts.expect_shedding = true,
            "--expect-wal" => opts.expect_wal = true,
            "--shutdown" => opts.shutdown = true,
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    if opts.addr.is_empty() {
        usage_and_exit("--addr is required");
    }
    if opts.quick {
        // Shrink the paced phases only; overload flags are honored as
        // given (a burst must stay large enough to exceed the queue).
        opts.buildings = opts.buildings.min(2);
        opts.devices = opts.devices.min(4);
        opts.query_conns = opts.query_conns.min(4);
        opts.query_iters = opts.query_iters.min(200);
    }
    opts
}

#[derive(Serialize)]
struct PhaseReport {
    requests: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_us: f64,
    wall_ms: f64,
}

fn phase_report(recorder: &LatencyRecorder, wall: std::time::Duration) -> PhaseReport {
    let s = recorder.summary(wall);
    PhaseReport {
        requests: s.count,
        ops_per_sec: s.ops_per_sec,
        p50_us: s.p50.as_secs_f64() * 1e6,
        p99_us: s.p99.as_secs_f64() * 1e6,
        max_us: s.max.as_secs_f64() * 1e6,
        mean_us: s.mean.as_secs_f64() * 1e6,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

#[derive(Serialize)]
struct OverloadReport {
    requests: usize,
    ok: usize,
    shed: usize,
    hard_errors: usize,
}

#[derive(Serialize)]
struct ScaleReport {
    /// Connections held concurrently (on top of the phase's admin conn).
    connections: usize,
    /// Active connections the server itself reported during the hold.
    active_connections_observed: usize,
    /// Server RSS in KiB while every connection was held (`None` where
    /// the server cannot measure it). The scaling gate checks this stays
    /// flat versus the baseline run.
    rss_kb_held: Option<u64>,
    /// Round-robin ping latency across the held connections.
    ping: PhaseReport,
}

#[derive(Serialize)]
struct ServerSide {
    requests: u64,
    shed: u64,
    bad_requests: u64,
    queue_capacity: usize,
    peak_queue_depth: usize,
    /// Ingest jobs coalesced under a shared translator-lock acquisition.
    ingest_coalesced: u64,
    /// Server RSS in KiB at the end of the run.
    rss_kb: Option<u64>,
    /// WAL metrics (durable servers only): segment count, log bytes,
    /// replay debt, and checkpoint age — the durability-overhead signals
    /// the perf trajectory tracks.
    wal_segments: Option<usize>,
    wal_bytes: Option<u64>,
    wal_records_since_checkpoint: Option<u64>,
    wal_last_checkpoint_age_ms: Option<u64>,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    addr: String,
    /// Wire protocol every phase ran over (1 = NDJSON, 2 = binary).
    protocol: u32,
    ingest_connections: usize,
    records: usize,
    ingest: PhaseReport,
    query_connections: usize,
    query: PhaseReport,
    overload: Option<OverloadReport>,
    scale: Option<ScaleReport>,
    server: ServerSide,
    hard_errors: usize,
}

fn query_mix(i: usize) -> (SemanticsSelector, Query) {
    match i % 6 {
        0 => (SemanticsSelector::all(), Query::PopularRegions),
        1 => (SemanticsSelector::all(), Query::TopFlows { limit: 10 }),
        2 => (
            SemanticsSelector::all(),
            Query::DwellHistogram {
                bucket: Duration::from_mins(5),
            },
        ),
        3 => (SemanticsSelector::all(), Query::DeviceSummaries),
        4 => (
            SemanticsSelector::all().with_device_pattern("b0.*"),
            Query::PopularRegions,
        ),
        _ => (
            SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            ),
            Query::Semantics,
        ),
    }
}

fn main() {
    let opts = parse_args();
    let hard_errors = AtomicUsize::new(0);

    eprintln!(
        "server_load: generating {} campus traffic ({} buildings, {} devices/building)...",
        if opts.quick { "quick" } else { "full" },
        opts.buildings,
        opts.devices
    );
    let campus = trips_sim::scenario::generate_campus(
        opts.buildings,
        opts.floors,
        opts.shops,
        &ScenarioConfig {
            devices: opts.devices,
            days: 1,
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    );
    let traffic: Vec<Vec<(DeviceId, Vec<RawRecord>)>> = campus
        .buildings
        .iter()
        .map(|b| {
            b.dataset
                .traces
                .iter()
                .map(|t| (t.device.clone(), t.raw.records().to_vec()))
                .collect()
        })
        .collect();
    let records: usize = traffic
        .iter()
        .flat_map(|b| b.iter().map(|(_, r)| r.len()))
        .sum();

    // Phase 1 — ingest: one closed-loop connection per building.
    eprintln!(
        "server_load: ingesting {records} records over {} connections...",
        traffic.len()
    );
    let ingest_wall = Instant::now();
    let mut ingest_lat = LatencyRecorder::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = traffic
            .iter()
            .map(|building| {
                let hard_errors = &hard_errors;
                let addr = opts.addr.as_str();
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut recorder = LatencyRecorder::new();
                    let mut client = connect(addr, protocol).expect("connect for ingest");
                    for (_, device_records) in building {
                        for batch in device_records.chunks(50) {
                            let t0 = Instant::now();
                            match client.ingest(batch.to_vec()) {
                                Ok(Response::Ingested { .. }) => {}
                                Ok(other) => {
                                    eprintln!("ingest error: {other:?}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("ingest transport error: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            recorder.record(t0.elapsed());
                        }
                    }
                    // A flush-all is scoped to the requesting session, so
                    // each ingest connection publishes its own devices
                    // before disconnecting (an admin connection could not
                    // flush them on our behalf).
                    match client.flush(None) {
                        Ok(Response::Flushed { .. }) => {}
                        other => {
                            eprintln!("session flush failed: {other:?}");
                            hard_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    recorder
                })
            })
            .collect();
        for h in handles {
            ingest_lat.merge(h.join().expect("ingest thread"));
        }
    });
    let ingest_wall = ingest_wall.elapsed();

    // Everything is queryable: each ingest session flushed itself above,
    // and any remainder published when its connection tore down. Verify
    // quiescence rather than flushing globally.
    {
        let mut client = connect(opts.addr.as_str(), opts.protocol).expect("connect for health");
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match client.health() {
                Ok(Response::Health(h)) if h.open_devices == 0 => break,
                Ok(Response::Health(_)) if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                other => {
                    eprintln!("ingest did not quiesce: {other:?}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    // Phase 2 — analyst query mix, closed loop per connection.
    eprintln!(
        "server_load: querying with {} connections x {} iterations...",
        opts.query_conns, opts.query_iters
    );
    let query_wall = Instant::now();
    let mut query_lat = LatencyRecorder::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.query_conns)
            .map(|conn| {
                let hard_errors = &hard_errors;
                let addr = opts.addr.as_str();
                let iters = opts.query_iters;
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut recorder = LatencyRecorder::new();
                    let mut client = connect(addr, protocol).expect("connect for queries");
                    for i in 0..iters {
                        let (selector, query) = query_mix(conn + i);
                        let t0 = Instant::now();
                        match client.query_parts(selector, query) {
                            Ok(Ok(_)) => {}
                            Ok(Err(e)) => {
                                // Any protocol error — including Overloaded —
                                // is a failure in the paced phase.
                                eprintln!("query error: {e}");
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("query transport error: {e}");
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        recorder.record(t0.elapsed());
                    }
                    recorder
                })
            })
            .collect();
        for h in handles {
            query_lat.merge(h.join().expect("query thread"));
        }
    });
    let query_wall = query_wall.elapsed();

    // Phase 3 — overload burst: hammer the queue, expect shedding to be
    // typed Overloaded responses and nothing worse.
    let overload = if opts.overload {
        eprintln!(
            "server_load: overload burst with {} connections x {} iterations...",
            opts.overload_conns, opts.overload_iters
        );
        let ok = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        let burst_hard = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for conn in 0..opts.overload_conns {
                let (ok, shed, burst_hard) = (&ok, &shed, &burst_hard);
                let addr = opts.addr.as_str();
                let iters = opts.overload_iters;
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut client = connect(addr, protocol).expect("connect for burst");
                    for i in 0..iters {
                        let (selector, query) = query_mix(conn + i);
                        match client.query_parts(selector, query) {
                            Ok(Ok(_)) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(ServerError::Overloaded { .. })) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(e)) => {
                                eprintln!("burst hard error: {e}");
                                burst_hard.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("burst transport error: {e}");
                                burst_hard.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let report = OverloadReport {
            requests: opts.overload_conns * opts.overload_iters,
            ok: ok.load(Ordering::Relaxed),
            shed: shed.load(Ordering::Relaxed),
            hard_errors: burst_hard.load(Ordering::Relaxed),
        };
        hard_errors.fetch_add(report.hard_errors, Ordering::Relaxed);
        Some(report)
    } else {
        None
    };

    // Phase 4 — connection scaling: hold N concurrent mostly-idle
    // connections (the poll-loop's fd-per-connection model under test)
    // and round-robin pings across them while sampling the server's own
    // view of active connections and memory.
    let scale = if opts.scale_conns > 0 {
        eprintln!(
            "server_load: holding {} concurrent connections ({} ping rounds)...",
            opts.scale_conns, opts.scale_rounds
        );
        let threads = opts.scale_conns.min(16);
        let connected = std::sync::Barrier::new(threads + 1);
        let sampled = std::sync::Barrier::new(threads + 1);
        let mut ping_lat = LatencyRecorder::new();
        let mut observed = (0usize, None::<u64>);
        let hold_wall = Instant::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (connected, sampled, hard_errors) = (&connected, &sampled, &hard_errors);
                    let addr = opts.addr.as_str();
                    let (protocol, rounds) = (opts.protocol, opts.scale_rounds);
                    // Thread t holds connections t, t+threads, t+2*threads, …
                    let held = (t..opts.scale_conns).step_by(threads).count();
                    s.spawn(move || {
                        let mut clients = Vec::with_capacity(held);
                        for _ in 0..held {
                            match connect(addr, protocol) {
                                Ok(c) => clients.push(c),
                                Err(e) => {
                                    eprintln!("scale connect failed: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        connected.wait(); // every connection is now held
                        sampled.wait(); // main thread sampled the server
                        let mut recorder = LatencyRecorder::new();
                        for _ in 0..rounds {
                            for client in &mut clients {
                                let t0 = Instant::now();
                                match client.ping() {
                                    Ok(Response::Pong) => recorder.record(t0.elapsed()),
                                    other => {
                                        eprintln!("scale ping failed: {other:?}");
                                        hard_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        recorder
                    })
                })
                .collect();
            connected.wait();
            // Every connection is held: ask the server what it sees.
            match connect(opts.addr.as_str(), opts.protocol)
                .expect("connect for scale sample")
                .metrics()
            {
                Ok(Response::Metrics(m)) => observed = (m.active_connections, m.rss_kb),
                other => {
                    eprintln!("scale metrics failed: {other:?}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            sampled.wait();
            for h in handles {
                ping_lat.merge(h.join().expect("scale thread"));
            }
        });
        let (active, rss_kb_held) = observed;
        if active < opts.scale_conns {
            eprintln!(
                "server_load: held {} connections but the server saw only {active} active",
                opts.scale_conns
            );
            hard_errors.fetch_add(1, Ordering::Relaxed);
        }
        Some(ScaleReport {
            connections: opts.scale_conns,
            active_connections_observed: active,
            rss_kb_held,
            ping: phase_report(&ping_lat, hold_wall.elapsed()),
        })
    } else {
        None
    };

    // Server-side accounting: metrics prove the bounded-queue invariant
    // (and, with --expect-wal, the durability layer's health).
    let mut admin = connect(opts.addr.as_str(), opts.protocol).expect("connect for metrics");
    if opts.expect_wal {
        // Exercise checkpoint+compact over the wire so the asserted
        // metrics reflect a server that has actually checkpointed.
        match admin.snapshot("checkpoint") {
            Ok(Response::SnapshotSaved { path, .. }) => {
                eprintln!("server_load: checkpointed ({path})");
            }
            other => {
                eprintln!("checkpoint failed: {other:?}");
                hard_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let server_side = match admin.metrics() {
        Ok(Response::Metrics(m)) => {
            if m.peak_queue_depth > m.queue_capacity {
                eprintln!(
                    "BOUNDED-QUEUE VIOLATION: peak depth {} > capacity {}",
                    m.peak_queue_depth, m.queue_capacity
                );
                hard_errors.fetch_add(1, Ordering::Relaxed);
            }
            if opts.expect_wal {
                match &m.wal {
                    None => {
                        eprintln!("server_load: --expect-wal set but Metrics has no wal block");
                        hard_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(w) => {
                        if w.segments < 1 {
                            eprintln!(
                                "server_load: wal reports {} segments (want ≥ 1)",
                                w.segments
                            );
                            hard_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        match w.last_checkpoint_age_ms {
                            Some(age) if age < 60_000 => {}
                            other => {
                                eprintln!(
                                    "server_load: checkpoint age {other:?} after an explicit \
                                     checkpoint (want Some(< 60000))"
                                );
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            ServerSide {
                requests: m.requests,
                shed: m.shed,
                bad_requests: m.bad_requests,
                queue_capacity: m.queue_capacity,
                peak_queue_depth: m.peak_queue_depth,
                ingest_coalesced: m.ingest_coalesced,
                rss_kb: m.rss_kb,
                wal_segments: m.wal.as_ref().map(|w| w.segments),
                wal_bytes: m.wal.as_ref().map(|w| w.bytes),
                wal_records_since_checkpoint: m.wal.as_ref().map(|w| w.records_since_checkpoint),
                wal_last_checkpoint_age_ms: m.wal.as_ref().and_then(|w| w.last_checkpoint_age_ms),
            }
        }
        other => {
            eprintln!("metrics failed: {other:?}");
            hard_errors.fetch_add(1, Ordering::Relaxed);
            ServerSide {
                requests: 0,
                shed: 0,
                bad_requests: 0,
                queue_capacity: 0,
                peak_queue_depth: 0,
                ingest_coalesced: 0,
                rss_kb: None,
                wal_segments: None,
                wal_bytes: None,
                wal_records_since_checkpoint: None,
                wal_last_checkpoint_age_ms: None,
            }
        }
    };
    if opts.shutdown {
        let _ = admin.shutdown();
    }

    let hard = hard_errors.load(Ordering::Relaxed);
    let report = BenchReport {
        bench: "server_load".to_string(),
        quick: opts.quick,
        addr: opts.addr.clone(),
        protocol: opts.protocol,
        ingest_connections: traffic.len(),
        records,
        ingest: phase_report(&ingest_lat, ingest_wall),
        query_connections: opts.query_conns,
        query: phase_report(&query_lat, query_wall),
        overload,
        scale,
        server: server_side,
        hard_errors: hard,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write report");
    println!(
        "server_load: ingest {} batches ({} records) -> {:.0} req/s, p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.ingest.requests,
        report.records,
        report.ingest.ops_per_sec,
        report.ingest.p50_us,
        report.ingest.p99_us,
        report.ingest.max_us,
    );
    println!(
        "server_load: query {} requests over {} conns -> {:.0} req/s, p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.query.requests,
        report.query_connections,
        report.query.ops_per_sec,
        report.query.p50_us,
        report.query.p99_us,
        report.query.max_us,
    );
    if let Some(o) = &report.overload {
        println!(
            "server_load: overload burst {} requests -> {} ok, {} shed, {} hard errors",
            o.requests, o.ok, o.shed, o.hard_errors
        );
    }
    if let Some(sc) = &report.scale {
        println!(
            "server_load: held {} conns (server saw {}) -> ping p50 {:.0} us, p99 {:.0} us, rss {} KiB",
            sc.connections,
            sc.active_connections_observed,
            sc.ping.p50_us,
            sc.ping.p99_us,
            sc.rss_kb_held.map_or("n/a".to_string(), |k| k.to_string()),
        );
    }
    println!("report written to {}", opts.out);

    if hard > 0 {
        eprintln!("server_load: {hard} hard errors");
        std::process::exit(1);
    }
    if opts.expect_shedding {
        let shed = report.overload.as_ref().map_or(0, |o| o.shed);
        if shed == 0 {
            eprintln!("server_load: --expect-shedding set but no Overloaded responses observed");
            std::process::exit(1);
        }
    }
}
