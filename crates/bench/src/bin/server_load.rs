//! `server_load` — closed-loop multi-threaded load generator for a live
//! `trips-serve` endpoint.
//!
//! Replays `trips_sim::scenario::generate_campus` traffic over the wire
//! (one ingest connection per building, device-major batches; each
//! connection flushes **its own** session before disconnecting — a
//! flush-all is scoped to the requesting session), then drives a
//! concurrent analyst query mix — and, unless disabled, an overload
//! burst sized to exceed the admission queue so the server's load
//! shedding is exercised. With `--scale-conns N` it additionally holds N
//! concurrent mostly-idle connections (the event-driven server's home
//! turf) and measures ping latency plus server memory while they are
//! held. Emits `BENCH_server.json` with ingest + query throughput and
//! tail latency (p50/p99/max/mean, comparable with `BENCH_store.json`)
//! plus the server's own overload counters.
//!
//! ```text
//! server_load --addr HOST:PORT [--quick] [--out PATH] [--protocol 1|2]
//!             [--buildings N] [--floors N] [--shops N] [--devices N]
//!             [--seed N] [--ingest-sessions N] [--device-skew uniform|zipf]
//!             [--query-conns N] [--query-iters N] [--pipeline N]
//!             [--no-overload] [--overload-conns N] [--overload-iters N]
//!             [--scale-conns N] [--scale-rounds N]
//!             [--rules N] [--expect-alerts MIN] [--rules-trace PATH]
//!             [--rules-overhead N] [--obs-overhead]
//!             [--baseline PATH] [--tolerance F] [--compare PATH]
//!             [--expect-shedding] [--expect-wal] [--shutdown]
//! ```
//!
//! `--protocol 2` runs every phase over the binary v2 framing (see
//! `trips_server::codec`); the default is NDJSON v1 — running both and
//! comparing the reports is the protocol's perf regression check.
//!
//! `--pipeline N` adds a pipelined-query phase after the closed-loop
//! query mix: each query connection sends its requests in back-to-back
//! batches of N (one write, N responses read in order) and the recorded
//! latency is the **whole-batch** round trip — the workload the server's
//! segmented `writev(2)` response batching is measured on. The report
//! gains a `pipeline` block, `--compare` embeds the other run's
//! pipelined p99 alongside the ingest numbers, and `--baseline` gates on
//! it when both runs measured one. The report also records
//! `loop_shard_spread` — the server's max/min per-loop-shard
//! `bytes_read` ratio — so shard-placement skew (and rebalancing wins)
//! are visible in the perf trajectory.
//!
//! `--ingest-sessions N` replaces the per-building ingest layout with N
//! concurrent sessions: every campus device is assigned to one session
//! (sticky round-robin — a device never splits across sessions), and each
//! session interleaves its devices' batches, drawing the next device from
//! a deterministic per-session LCG. `--device-skew` shapes that draw:
//! `uniform` (default) spreads batches evenly, `zipf` weights device `i`
//! by `1/(i+1)` — a few hot devices, a long cold tail. This is the
//! multi-session workload the sharded translator lock is measured on.
//!
//! `--baseline PATH` compares this run against a previously committed
//! report and **fails the run** (exit 1) when it regresses beyond
//! `--tolerance F` (default 4.0 — wide, because shared CI runners jitter
//! heavily; the gate catches collapses, not percent drift): ingest
//! throughput below `baseline/F`, ingest p99 above `baseline×F`, or (when
//! both runs held connections) scale ping p99 above `baseline×F`.
//! `--compare PATH` embeds another run's ingest numbers (e.g. a
//! single-lock topology) into this report as `comparison`, recording the
//! measured speedup alongside the raw numbers.
//!
//! `--rules N` registers N standing TQL rules (a deterministic mix of
//! `ENTERS` / `DWELLS` / `occupancy` / `flow` conditions) on a dedicated
//! subscriber connection **before** the ingest phase, so every ingest
//! batch is evaluated against them — the measured throughput then
//! includes rule evaluation. The subscriber's alerts are drained after
//! the paced phases; `--expect-alerts MIN` fails the run (exit 1) when
//! fewer arrive, and `--rules-trace PATH` writes the server's per-rule
//! evaluation traces (evals, fires, canonical source) as JSON.
//! `--rules-overhead N` runs a separate **in-process** A/B: the same
//! campus traffic through a `StreamingTranslator`-fed store with 0 and
//! with N registered rules (best of 3 rounds each, so scheduler noise
//! cannot fail the gate spuriously); the run fails when the with-rules
//! ingest wall exceeds baseline × 1.10 — the "<10% overhead" acceptance
//! gate, measured without wire noise.
//!
//! `--obs-overhead` runs the same in-process A/B shape for the
//! observability layer: identical campus traffic through a
//! translator-fed store with the `trips-obs` instrumentation globally
//! disabled and then enabled (best of 3 alternating rounds, repeats
//! summed exactly like `--rules-overhead`); the run fails when the
//! instrumented ingest wall exceeds baseline × 1.05 — the "<5%
//! observability overhead" acceptance gate, measured without wire noise.
//!
//! The report also records per-phase wall-clock (`phase_wall_ms`:
//! ingest / post-ingest drain / query mix / overload / scale hold) so
//! the perf trajectory is attributable phase by phase.
//!
//! The `--floors/--shops` layout must match the server's (campus
//! buildings share the mall layout the server's DSM was built from).
//! With `--expect-wal` (a durable server under test) the generator also
//! requests a checkpoint after the paced phases and asserts on the WAL
//! metrics: they must be present, with ≥ 1 segment and a fresh
//! checkpoint age — so `BENCH_server.json` tracks durability overhead
//! and checkpoint health alongside throughput.
//! Exit codes: `0` clean; `1` any hard protocol error in the paced phases,
//! a violated bounded-queue invariant, a failed `--scale-conns` hold,
//! `--expect-shedding` with no sheds observed, or `--expect-wal` with
//! missing/stale WAL metrics; `2` usage errors.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use trips_core::stream::{StreamConfig, StreamingTranslator};
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_obs::LatencyRecorder;
use trips_server::{bootstrap_scenario, Client, Request, Response, ServerBootstrap, ServerError};
use trips_sim::ScenarioConfig;
use trips_store::{
    Alert, AlertSink, Query, QueryRequest, RuleSpec, SemanticsSelector, SemanticsStore,
};

struct Options {
    addr: String,
    quick: bool,
    out: String,
    protocol: u32,
    buildings: usize,
    floors: u16,
    shops: usize,
    devices: usize,
    seed: u64,
    /// `0` = legacy layout (one ingest connection per building).
    ingest_sessions: usize,
    skew: DeviceSkew,
    query_conns: usize,
    query_iters: usize,
    /// `0` = no pipelined-query phase; otherwise the batch depth each
    /// query connection pipelines per write.
    pipeline: usize,
    overload: bool,
    overload_conns: usize,
    overload_iters: usize,
    scale_conns: usize,
    scale_rounds: usize,
    /// `0` = no standing rules registered before ingest.
    rules: usize,
    /// Minimum pushed alerts the subscriber must receive (`0` = no gate).
    expect_alerts: usize,
    /// Where to write the server's per-rule evaluation traces as JSON.
    rules_trace: Option<String>,
    /// `0` = skip the in-process rule-evaluation overhead A/B gate.
    rules_overhead: usize,
    /// Run the in-process observability-instrumentation overhead A/B.
    obs_overhead: bool,
    baseline: Option<String>,
    tolerance: f64,
    compare: Option<String>,
    expect_shedding: bool,
    expect_wal: bool,
    shutdown: bool,
}

/// How a multi-session ingest run draws the next device to send a batch
/// for (among the session's devices that still have batches left).
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeviceSkew {
    Uniform,
    Zipf,
}

impl DeviceSkew {
    fn parse(raw: &str) -> Option<Self> {
        match raw {
            "uniform" => Some(DeviceSkew::Uniform),
            "zipf" => Some(DeviceSkew::Zipf),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            DeviceSkew::Uniform => "uniform",
            DeviceSkew::Zipf => "zipf",
        }
    }
}

fn usage_and_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: server_load --addr HOST:PORT [--quick] [--out PATH] [--protocol 1|2] \
         [--buildings N] [--floors N] [--shops N] [--devices N] [--seed N] \
         [--ingest-sessions N] [--device-skew uniform|zipf] \
         [--query-conns N] [--query-iters N] [--pipeline N] \
         [--no-overload] [--overload-conns N] \
         [--overload-iters N] [--scale-conns N] [--scale-rounds N] \
         [--rules N] [--expect-alerts MIN] [--rules-trace PATH] [--rules-overhead N] \
         [--obs-overhead] [--baseline PATH] [--tolerance F] [--compare PATH] \
         [--expect-shedding] [--expect-wal] [--shutdown]"
    );
    std::process::exit(2);
}

/// Connects a client speaking the configured protocol version.
fn connect(addr: &str, protocol: u32) -> std::io::Result<Client> {
    let mut client = Client::connect(addr)?;
    client.set_protocol(protocol)?;
    Ok(client)
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(value) = args.next() else {
        usage_and_exit(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage_and_exit(&format!("invalid value {value:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: String::new(),
        quick: false,
        out: "BENCH_server.json".to_string(),
        protocol: 1,
        buildings: 3,
        floors: 2,
        shops: 3,
        devices: 8,
        seed: 0xBEC4,
        ingest_sessions: 0,
        skew: DeviceSkew::Uniform,
        query_conns: 8,
        query_iters: 600,
        pipeline: 0,
        overload: true,
        overload_conns: 8,
        overload_iters: 150,
        scale_conns: 0,
        scale_rounds: 3,
        rules: 0,
        expect_alerts: 0,
        rules_trace: None,
        rules_overhead: 0,
        obs_overhead: false,
        baseline: None,
        tolerance: 4.0,
        compare: None,
        expect_shedding: false,
        expect_wal: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => opts.addr = parse(&mut args, "--addr"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = parse(&mut args, "--out"),
            "--protocol" => {
                opts.protocol = parse(&mut args, "--protocol");
                if !(opts.protocol == 1 || opts.protocol == 2) {
                    usage_and_exit("--protocol must be 1 (NDJSON) or 2 (binary)");
                }
            }
            "--buildings" => opts.buildings = parse(&mut args, "--buildings"),
            "--floors" => opts.floors = parse(&mut args, "--floors"),
            "--shops" => opts.shops = parse(&mut args, "--shops"),
            "--devices" => opts.devices = parse(&mut args, "--devices"),
            "--seed" => opts.seed = parse(&mut args, "--seed"),
            "--ingest-sessions" => opts.ingest_sessions = parse(&mut args, "--ingest-sessions"),
            "--device-skew" => {
                let raw: String = parse(&mut args, "--device-skew");
                match DeviceSkew::parse(&raw) {
                    Some(skew) => opts.skew = skew,
                    None => usage_and_exit(&format!(
                        "invalid value {raw:?} for --device-skew (uniform|zipf)"
                    )),
                }
            }
            "--query-conns" => opts.query_conns = parse(&mut args, "--query-conns"),
            "--query-iters" => opts.query_iters = parse(&mut args, "--query-iters"),
            "--pipeline" => opts.pipeline = parse(&mut args, "--pipeline"),
            "--no-overload" => opts.overload = false,
            "--overload-conns" => opts.overload_conns = parse(&mut args, "--overload-conns"),
            "--overload-iters" => opts.overload_iters = parse(&mut args, "--overload-iters"),
            "--scale-conns" => opts.scale_conns = parse(&mut args, "--scale-conns"),
            "--scale-rounds" => opts.scale_rounds = parse(&mut args, "--scale-rounds"),
            "--rules" => opts.rules = parse(&mut args, "--rules"),
            "--expect-alerts" => opts.expect_alerts = parse(&mut args, "--expect-alerts"),
            "--rules-trace" => opts.rules_trace = Some(parse(&mut args, "--rules-trace")),
            "--rules-overhead" => opts.rules_overhead = parse(&mut args, "--rules-overhead"),
            "--obs-overhead" => opts.obs_overhead = true,
            "--baseline" => opts.baseline = Some(parse(&mut args, "--baseline")),
            "--tolerance" => {
                opts.tolerance = parse(&mut args, "--tolerance");
                if opts.tolerance.is_nan() || opts.tolerance < 1.0 {
                    usage_and_exit("--tolerance must be >= 1.0");
                }
            }
            "--compare" => opts.compare = Some(parse(&mut args, "--compare")),
            "--expect-shedding" => opts.expect_shedding = true,
            "--expect-wal" => opts.expect_wal = true,
            "--shutdown" => opts.shutdown = true,
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    if opts.addr.is_empty() {
        usage_and_exit("--addr is required");
    }
    if opts.quick {
        // Shrink the paced phases only; overload flags are honored as
        // given (a burst must stay large enough to exceed the queue).
        opts.buildings = opts.buildings.min(2);
        opts.devices = opts.devices.min(4);
        opts.query_conns = opts.query_conns.min(4);
        opts.query_iters = opts.query_iters.min(200);
    }
    opts
}

#[derive(Serialize, Deserialize)]
struct PhaseReport {
    requests: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_us: f64,
    wall_ms: f64,
}

fn phase_report(recorder: &LatencyRecorder, wall: std::time::Duration) -> PhaseReport {
    let s = recorder.summary(wall);
    PhaseReport {
        requests: s.count,
        ops_per_sec: s.ops_per_sec,
        p50_us: s.p50.as_secs_f64() * 1e6,
        p99_us: s.p99.as_secs_f64() * 1e6,
        max_us: s.max.as_secs_f64() * 1e6,
        mean_us: s.mean.as_secs_f64() * 1e6,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// The `--pipeline N` phase: batches of N requests per write, responses
/// read in order; latency is the whole-batch round trip.
#[derive(Serialize, Deserialize)]
struct PipelineReport {
    /// Requests pipelined per write (`--pipeline N`).
    depth: usize,
    /// Whole-batch round-trip latency (each sample covers `depth`
    /// requests leaving in one write and `depth` responses read back).
    batch_rtt: PhaseReport,
}

#[derive(Serialize, Deserialize)]
struct OverloadReport {
    requests: usize,
    ok: usize,
    shed: usize,
    hard_errors: usize,
}

#[derive(Serialize, Deserialize)]
struct ScaleReport {
    /// Connections held concurrently (on top of the phase's admin conn).
    connections: usize,
    /// Active connections the server itself reported during the hold.
    active_connections_observed: usize,
    /// Server RSS in KiB while every connection was held (`None` where
    /// the server cannot measure it). The scaling gate checks this stays
    /// flat versus the baseline run.
    rss_kb_held: Option<u64>,
    /// Round-robin ping latency across the held connections.
    ping: PhaseReport,
}

#[derive(Serialize, Deserialize)]
struct ServerSide {
    requests: u64,
    shed: u64,
    bad_requests: u64,
    queue_capacity: usize,
    peak_queue_depth: usize,
    /// Ingest jobs coalesced under a shared translator-lock acquisition.
    ingest_coalesced: u64,
    /// Server RSS in KiB at the end of the run.
    rss_kb: Option<u64>,
    /// WAL metrics (durable servers only): segment count, log bytes,
    /// replay debt, and checkpoint age — the durability-overhead signals
    /// the perf trajectory tracks.
    wal_segments: Option<usize>,
    wal_bytes: Option<u64>,
    wal_records_since_checkpoint: Option<u64>,
    wal_last_checkpoint_age_ms: Option<u64>,
}

/// Standing-rules phase: what the subscriber connection saw, what the
/// server accounted, and (when `--rules-overhead` ran) the in-process
/// evaluation-overhead A/B.
#[derive(Serialize, Deserialize)]
struct RulesReport {
    /// Rules registered on the subscriber connection before ingest.
    registered: usize,
    /// Alerts the subscriber connection actually received over the wire.
    alerts_received: usize,
    /// Server-side delivered/dropped counters (drops = sink refused +
    /// slow-subscriber backpressure).
    server_alerts_delivered: u64,
    server_alerts_dropped: u64,
    /// Total fires across every rule's server-side trace.
    fires_total: u64,
    overhead: Option<RulesOverheadReport>,
}

/// The `--rules-overhead` A/B: identical traffic through an in-process
/// translator-fed store with 0 vs N rules, best-of-3 walls.
#[derive(Serialize, Deserialize)]
struct RulesOverheadReport {
    rules: usize,
    baseline_wall_ms: f64,
    with_rules_wall_ms: f64,
    /// `(with - baseline) / baseline`, in percent. May be negative under
    /// runner noise; the gate only fails past +10%.
    overhead_pct: f64,
    /// Alerts the N rules fired during the measured run (proof the rules
    /// were actually exercised, not globbed out of the hot path).
    alerts_fired: u64,
    ok: bool,
}

/// The `--obs-overhead` A/B: identical in-process ingest with the
/// `trips-obs` instrumentation globally disabled vs enabled, best-of-3
/// alternating rounds (the rules-overhead gate's repeats-summed
/// methodology applied to the observability layer).
#[derive(Serialize, Deserialize)]
struct ObsOverheadReport {
    baseline_wall_ms: f64,
    with_obs_wall_ms: f64,
    /// `(with - baseline) / baseline`, in percent. May be negative under
    /// runner noise; the gate only fails past +5%.
    overhead_pct: f64,
    ok: bool,
}

/// Wall-clock per phase of the run, milliseconds. `drain_ms` is the
/// post-ingest quiescence wait (open sessions publishing their tails).
#[derive(Serialize, Deserialize, Default)]
struct PhaseWalls {
    ingest_ms: f64,
    drain_ms: f64,
    query_ms: f64,
    #[serde(default)]
    pipeline_ms: Option<f64>,
    overload_ms: Option<f64>,
    scale_ms: Option<f64>,
}

/// A cross-run comparison embedded in the report (`--compare`): this
/// run's ingest throughput against another report's, e.g. a single-lock
/// topology measured on the same machine moments before.
#[derive(Serialize, Deserialize)]
struct ComparisonReport {
    against: String,
    against_ingest_ops_per_sec: f64,
    this_ingest_ops_per_sec: f64,
    /// `this / against` — > 1.0 means this run was faster.
    speedup: f64,
    /// Pipelined batch-RTT p99s, when both runs measured one (`--pipeline`
    /// here and in the `--compare` run) — the response-batching A/B.
    #[serde(default)]
    against_pipeline_p99_us: Option<f64>,
    #[serde(default)]
    this_pipeline_p99_us: Option<f64>,
    /// `against / this` — > 1.0 means this run's pipelined p99 improved.
    #[serde(default)]
    pipeline_p99_speedup: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    addr: String,
    /// Wire protocol every phase ran over (1 = NDJSON, 2 = binary).
    protocol: u32,
    ingest_connections: usize,
    /// Multi-session layout (`--ingest-sessions`); 0 = per-building.
    ingest_sessions: usize,
    /// Device-draw distribution the ingest sessions used.
    device_skew: Option<String>,
    /// Cores visible to the *generator* — context for cross-machine
    /// comparisons (a 1-core runner cannot show parallel speedups).
    host_parallelism: usize,
    records: usize,
    ingest: PhaseReport,
    query_connections: usize,
    query: PhaseReport,
    /// The `--pipeline N` batched-query phase, when it ran.
    #[serde(default)]
    pipeline: Option<PipelineReport>,
    /// Max/min per-loop-shard `bytes_read` ratio reported by the server
    /// at the end of the run (min clamped to 1 byte; `None` when the
    /// server reported no loop shards). 1.0 = perfectly even placement.
    #[serde(default)]
    loop_shard_spread: Option<f64>,
    overload: Option<OverloadReport>,
    scale: Option<ScaleReport>,
    rules: Option<RulesReport>,
    /// The `--obs-overhead` instrumentation-cost A/B, when it ran.
    #[serde(default)]
    obs_overhead: Option<ObsOverheadReport>,
    /// Per-phase wall-clock, so the perf trajectory is attributable
    /// phase by phase (absent in reports from older generators).
    #[serde(default)]
    phase_wall_ms: Option<PhaseWalls>,
    comparison: Option<ComparisonReport>,
    server: ServerSide,
    hard_errors: usize,
}

/// The deterministic standing-rule mix `--rules` registers: all four
/// condition families, parameterized so no two rules are identical.
fn rule_tql(i: usize) -> String {
    match i % 4 {
        0 => format!(r#"RULE "load-enter-{i}" WHEN device ENTERS region "*" ALERT "entered""#),
        1 => format!(
            r#"RULE "load-dwell-{i}" WHEN device "b*" DWELLS IN region "*" >= {}m ALERT "long dwell""#,
            1 + i % 10
        ),
        2 => format!(
            r#"RULE "load-occ-{i}" WHEN occupancy(region "*") > {} ALERT "crowded""#,
            3 + i % 16
        ),
        _ => format!(
            r#"RULE "load-flow-{i}" WHEN flow(region "*" -> region "*") > {} ALERT "corridor""#,
            2 + i % 8
        ),
    }
}

/// The `--rules-overhead` mix: realistic *monitoring* rules — concrete
/// region ids, device-scoped globs, thresholds that rarely trip — plus
/// one live rule (index 0, scoped to building 0's devices) so
/// `alerts_fired` proves the engine ran. A fleet of match-everything
/// rules would measure alert-construction throughput, not evaluation
/// overhead — real monitoring fleets alert on a small fraction of
/// traffic.
fn overhead_rule_tql(i: usize) -> String {
    if i == 0 {
        return r#"RULE "ov-hot" WHEN device "b0.*" ENTERS region "*" ALERT "entered""#.to_string();
    }
    match i % 4 {
        0 => format!(
            r#"RULE "ov-enter-{i}" WHEN device "b{}.watch*" ENTERS region {} ALERT "watched device""#,
            i % 8,
            i % 24
        ),
        1 => format!(
            r#"RULE "ov-dwell-{i}" WHEN device "b{}.vip*" DWELLS IN region {} >= {}m ALERT "long dwell""#,
            i % 8,
            (7 + i) % 24,
            10 + i % 50
        ),
        2 => format!(
            r#"RULE "ov-occ-{i}" WHEN occupancy(region {}) > {} ALERT "crowded""#,
            i % 24,
            20 + i % 30
        ),
        _ => format!(
            r#"RULE "ov-flow-{i}" WHEN flow(region {} -> region {}) > {} ALERT "hot corridor""#,
            i % 24,
            (i + 5) % 24,
            15 + i % 25
        ),
    }
}

/// Counting sink for the in-process overhead A/B — delivery must cost
/// something nonzero (an atomic add) but never block.
struct CountSink(AtomicU64);

impl AlertSink for CountSink {
    fn deliver(&self, _alert: &Alert) -> bool {
        self.0.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// One timed in-process ingest round: the campus traffic through a
/// fresh translator-fed store with `rules` registered, `repeats` times
/// over (fresh store each repeat — store/translator construction is
/// excluded from the clock). Repeating aggregates the timed region into
/// tens of milliseconds so a 10% delta is measurable above scheduler
/// noise on small default workloads. Returns the summed wall clock.
fn timed_ingest(
    boot: &ServerBootstrap,
    traffic: &[Vec<(DeviceId, Vec<RawRecord>)>],
    rules: &[RuleSpec],
    sink: &Arc<CountSink>,
    repeats: usize,
) -> std::time::Duration {
    let mut total = std::time::Duration::ZERO;
    for _ in 0..repeats {
        let store = Arc::new(SemanticsStore::new());
        for spec in rules {
            store
                .rules()
                .register(spec.clone(), Some(sink.clone() as Arc<dyn AlertSink>))
                .expect("overhead rule registers");
        }
        store
            .rules()
            .set_region_floors(boot.dsm.regions().map(|r| (r.id, r.floor)));
        let mut translator = StreamingTranslator::from_editor(
            &boot.dsm,
            &boot.editor,
            None,
            StreamConfig::default(),
        )
        .expect("overhead translator")
        .with_store(store.clone());
        let t0 = Instant::now();
        for building in traffic {
            for (_, records) in building {
                for r in records {
                    translator.push(r.clone());
                }
            }
        }
        translator.finish();
        total += t0.elapsed();
    }
    total
}

/// The `--rules-overhead N` gate: same traffic, 0 vs N rules, best of 3
/// rounds each (alternating, so thermal/scheduler drift hits both arms).
/// Gate: with-rules wall ≤ baseline × 1.10.
fn rules_overhead_gate(
    n_rules: usize,
    traffic: &[Vec<(DeviceId, Vec<RawRecord>)>],
    opts: &Options,
) -> RulesOverheadReport {
    eprintln!(
        "server_load: in-process rule-overhead A/B (0 vs {n_rules} rules, best of 3 rounds)..."
    );
    let boot = bootstrap_scenario(
        opts.floors,
        opts.shops,
        &ScenarioConfig {
            devices: opts.devices,
            days: 1,
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    );
    let specs: Vec<RuleSpec> = (0..n_rules)
        .map(|i| {
            let src = overhead_rule_tql(i);
            match trips_query_lang::compile(&src) {
                Ok(trips_query_lang::Compiled::Rule(spec)) => spec,
                other => panic!("rule mix {src:?} must compile to a rule: {other:?}"),
            }
        })
        .collect();
    let sink = Arc::new(CountSink(AtomicU64::new(0)));
    // Size each round so its timed region is large enough that the 10%
    // gate measures evaluation cost, not clock granularity: on the quick
    // default workload (~tens of thousands of records, low-ms ingest) a
    // single pass is noise-dominated.
    let records: usize = traffic
        .iter()
        .flat_map(|b| b.iter().map(|(_, r)| r.len()))
        .sum();
    let repeats = (400_000 / records.max(1)).clamp(1, 64);
    let mut base_best = std::time::Duration::MAX;
    let mut with_best = std::time::Duration::MAX;
    let mut alerts_fired = 0u64;
    for _ in 0..3 {
        base_best = base_best.min(timed_ingest(&boot, traffic, &[], &sink, repeats));
        let before = sink.0.load(Ordering::Relaxed);
        with_best = with_best.min(timed_ingest(&boot, traffic, &specs, &sink, repeats));
        // Per-pass count: every repeat fires identically on a fresh store.
        alerts_fired = (sink.0.load(Ordering::Relaxed) - before) / repeats as u64;
    }
    let baseline_wall_ms = base_best.as_secs_f64() * 1e3;
    let with_rules_wall_ms = with_best.as_secs_f64() * 1e3;
    let overhead_pct = (with_rules_wall_ms - baseline_wall_ms) / baseline_wall_ms * 100.0;
    RulesOverheadReport {
        rules: n_rules,
        baseline_wall_ms,
        with_rules_wall_ms,
        overhead_pct,
        alerts_fired,
        ok: with_rules_wall_ms <= baseline_wall_ms * 1.10,
    }
}

/// The `--obs-overhead` gate: same traffic through an in-process
/// translator-fed store with `trips_obs` instrumentation off vs on,
/// best of 3 alternating rounds. The store/rules hot paths gate their
/// timing and contention accounting on `trips_obs::enabled()`, so the
/// toggle isolates exactly the instrumentation cost the server pays.
/// Gate: instrumented wall ≤ baseline × 1.05.
fn obs_overhead_gate(
    traffic: &[Vec<(DeviceId, Vec<RawRecord>)>],
    opts: &Options,
) -> ObsOverheadReport {
    eprintln!(
        "server_load: in-process observability-overhead A/B (obs off vs on, best of 3 rounds)..."
    );
    let boot = bootstrap_scenario(
        opts.floors,
        opts.shops,
        &ScenarioConfig {
            devices: opts.devices,
            days: 1,
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    );
    let sink = Arc::new(CountSink(AtomicU64::new(0)));
    let records: usize = traffic
        .iter()
        .flat_map(|b| b.iter().map(|(_, r)| r.len()))
        .sum();
    // Same sizing rationale as the rules gate: aggregate the timed
    // region into tens of milliseconds so a 5% delta outweighs clock
    // granularity and scheduler noise.
    let repeats = (400_000 / records.max(1)).clamp(1, 64);
    let was_enabled = trips_obs::enabled();
    let mut off_best = std::time::Duration::MAX;
    let mut on_best = std::time::Duration::MAX;
    for _ in 0..3 {
        trips_obs::set_enabled(false);
        off_best = off_best.min(timed_ingest(&boot, traffic, &[], &sink, repeats));
        trips_obs::set_enabled(true);
        on_best = on_best.min(timed_ingest(&boot, traffic, &[], &sink, repeats));
    }
    trips_obs::set_enabled(was_enabled);
    let baseline_wall_ms = off_best.as_secs_f64() * 1e3;
    let with_obs_wall_ms = on_best.as_secs_f64() * 1e3;
    ObsOverheadReport {
        baseline_wall_ms,
        with_obs_wall_ms,
        overhead_pct: (with_obs_wall_ms - baseline_wall_ms) / baseline_wall_ms * 100.0,
        ok: with_obs_wall_ms <= baseline_wall_ms * 1.05,
    }
}

fn query_mix(i: usize) -> (SemanticsSelector, Query) {
    match i % 6 {
        0 => (SemanticsSelector::all(), Query::PopularRegions),
        1 => (SemanticsSelector::all(), Query::TopFlows { limit: 10 }),
        2 => (
            SemanticsSelector::all(),
            Query::DwellHistogram {
                bucket: Duration::from_mins(5),
            },
        ),
        3 => (SemanticsSelector::all(), Query::DeviceSummaries),
        4 => (
            SemanticsSelector::all().with_device_pattern("b0.*"),
            Query::PopularRegions,
        ),
        _ => (
            SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            ),
            Query::Semantics,
        ),
    }
}

/// Picks which of a session's devices sends its next batch. `r53` is a
/// 53-bit uniform draw; only devices with batches left are candidates.
/// Uniform: every live device equally. Zipf: device `i` (by session
/// order) weighted `1/(i+1)` — the first devices dominate, the tail
/// trickles, concentrating traffic on a few translator shards the way a
/// real deployment's busiest devices do.
fn draw_device(pending: &[VecDeque<&[RawRecord]>], r53: u64, skew: DeviceSkew) -> usize {
    let live: Vec<usize> = (0..pending.len())
        .filter(|&i| !pending[i].is_empty())
        .collect();
    assert!(!live.is_empty(), "draw_device called with nothing left");
    match skew {
        DeviceSkew::Uniform => {
            // Multiply-shift, not modulo: unbiased over the live set.
            live[((u128::from(r53) * live.len() as u128) >> 53) as usize]
        }
        DeviceSkew::Zipf => {
            let total: f64 = live.iter().map(|&i| 1.0 / (i as f64 + 1.0)).sum();
            let mut u = (r53 as f64 / (1u64 << 53) as f64) * total;
            for &i in &live {
                u -= 1.0 / (i as f64 + 1.0);
                if u <= 0.0 {
                    return i;
                }
            }
            *live.last().expect("live is non-empty")
        }
    }
}

/// The legacy ingest layout: one closed-loop connection per building,
/// device-major batches, each connection flushing its own session.
fn ingest_legacy_layout(
    traffic: &[Vec<(DeviceId, Vec<RawRecord>)>],
    opts: &Options,
    hard_errors: &AtomicUsize,
    ingest_lat: &mut LatencyRecorder,
) {
    std::thread::scope(|s| {
        let handles: Vec<_> = traffic
            .iter()
            .map(|building| {
                let addr = opts.addr.as_str();
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut recorder = LatencyRecorder::new();
                    let mut client = connect(addr, protocol).expect("connect for ingest");
                    for (_, device_records) in building {
                        for batch in device_records.chunks(50) {
                            let t0 = Instant::now();
                            match client.ingest(batch.to_vec()) {
                                Ok(Response::Ingested { .. }) => {}
                                Ok(other) => {
                                    eprintln!("ingest error: {other:?}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("ingest transport error: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            recorder.record(t0.elapsed());
                        }
                    }
                    // A flush-all is scoped to the requesting session, so
                    // each ingest connection publishes its own devices
                    // before disconnecting (an admin connection could not
                    // flush them on our behalf).
                    match client.flush(None) {
                        Ok(Response::Flushed { .. }) => {}
                        other => {
                            eprintln!("session flush failed: {other:?}");
                            hard_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    recorder
                })
            })
            .collect();
        for h in handles {
            ingest_lat.merge(h.join().expect("ingest thread"));
        }
    });
}

fn main() {
    let opts = parse_args();
    let hard_errors = AtomicUsize::new(0);

    eprintln!(
        "server_load: generating {} campus traffic ({} buildings, {} devices/building)...",
        if opts.quick { "quick" } else { "full" },
        opts.buildings,
        opts.devices
    );
    let campus = trips_sim::scenario::generate_campus(
        opts.buildings,
        opts.floors,
        opts.shops,
        &ScenarioConfig {
            devices: opts.devices,
            days: 1,
            seed: opts.seed,
            ..ScenarioConfig::default()
        },
    );
    let traffic: Vec<Vec<(DeviceId, Vec<RawRecord>)>> = campus
        .buildings
        .iter()
        .map(|b| {
            b.dataset
                .traces
                .iter()
                .map(|t| (t.device.clone(), t.raw.records().to_vec()))
                .collect()
        })
        .collect();
    let records: usize = traffic
        .iter()
        .flat_map(|b| b.iter().map(|(_, r)| r.len()))
        .sum();

    // Phase 0 — standing rules: registered before ingest so every paced
    // phase below measures a server that is evaluating them. The
    // subscriber connection stays open (rules are session-scoped) and is
    // drained after the phases.
    let mut subscriber = if opts.rules > 0 {
        eprintln!(
            "server_load: subscribing {} standing rules before ingest...",
            opts.rules
        );
        let mut client = connect(opts.addr.as_str(), opts.protocol).expect("connect for rules");
        for i in 0..opts.rules {
            let tql = rule_tql(i);
            match client.subscribe(&tql) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    eprintln!("subscribe rejected ({tql}): {e}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    eprintln!("subscribe transport error: {e}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Some(client)
    } else {
        None
    };

    // Phase 1 — ingest. Two layouts:
    //  * legacy (`--ingest-sessions 0`): one closed-loop connection per
    //    building, device-major batches;
    //  * multi-session (`--ingest-sessions N`): campus devices assigned
    //    sticky round-robin to N sessions, each interleaving its devices'
    //    batches under the configured skew — the workload the sharded
    //    translator lock is measured on.
    let ingest_connections = if opts.ingest_sessions > 0 {
        opts.ingest_sessions
    } else {
        traffic.len()
    };
    eprintln!(
        "server_load: ingesting {records} records over {ingest_connections} connections{}...",
        if opts.ingest_sessions > 0 {
            format!(" ({} skew)", opts.skew.name())
        } else {
            String::new()
        }
    );
    let ingest_wall = Instant::now();
    let mut ingest_lat = LatencyRecorder::new();
    if opts.ingest_sessions > 0 {
        // Device k (campus-wide) belongs to session k % N for the whole
        // run — a device's records always flow through one connection, in
        // order, so translation semantics are unchanged by the layout.
        let mut per_session: Vec<Vec<&(DeviceId, Vec<RawRecord>)>> =
            (0..opts.ingest_sessions).map(|_| Vec::new()).collect();
        for (k, dev) in traffic.iter().flatten().enumerate() {
            per_session[k % opts.ingest_sessions].push(dev);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = per_session
                .iter()
                .enumerate()
                .map(|(sid, devices)| {
                    let hard_errors = &hard_errors;
                    let addr = opts.addr.as_str();
                    let (protocol, skew) = (opts.protocol, opts.skew);
                    s.spawn(move || {
                        let mut recorder = LatencyRecorder::new();
                        let mut client = connect(addr, protocol).expect("connect for ingest");
                        // Per-device batch queues; each draw sends one
                        // device's next batch (order within a device is
                        // preserved, interleaving across devices is the
                        // point).
                        let mut pending: Vec<VecDeque<&[RawRecord]>> = devices
                            .iter()
                            .map(|(_, recs)| recs.chunks(50).collect())
                            .collect();
                        let mut remaining: usize = pending.iter().map(|q| q.len()).sum();
                        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15
                            ^ (sid as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407);
                        while remaining > 0 {
                            lcg = lcg
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let idx = draw_device(&pending, lcg >> 11, skew);
                            let batch = pending[idx].pop_front().expect("drawn queue non-empty");
                            remaining -= 1;
                            let t0 = Instant::now();
                            match client.ingest(batch.to_vec()) {
                                Ok(Response::Ingested { .. }) => {}
                                Ok(other) => {
                                    eprintln!("ingest error: {other:?}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("ingest transport error: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            recorder.record(t0.elapsed());
                        }
                        match client.flush(None) {
                            Ok(Response::Flushed { .. }) => {}
                            other => {
                                eprintln!("session flush failed: {other:?}");
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        recorder
                    })
                })
                .collect();
            for h in handles {
                ingest_lat.merge(h.join().expect("ingest session thread"));
            }
        });
    } else {
        ingest_legacy_layout(&traffic, &opts, &hard_errors, &mut ingest_lat);
    }
    let ingest_wall = ingest_wall.elapsed();

    // Everything is queryable: each ingest session flushed itself above,
    // and any remainder published when its connection tore down. Verify
    // quiescence rather than flushing globally.
    let drain_wall = Instant::now();
    {
        let mut client = connect(opts.addr.as_str(), opts.protocol).expect("connect for health");
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match client.health() {
                Ok(Response::Health(h)) if h.open_devices == 0 => break,
                Ok(Response::Health(_)) if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                other => {
                    eprintln!("ingest did not quiesce: {other:?}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    let drain_wall = drain_wall.elapsed();

    // Phase 2 — analyst query mix, closed loop per connection.
    eprintln!(
        "server_load: querying with {} connections x {} iterations...",
        opts.query_conns, opts.query_iters
    );
    let query_wall = Instant::now();
    let mut query_lat = LatencyRecorder::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.query_conns)
            .map(|conn| {
                let hard_errors = &hard_errors;
                let addr = opts.addr.as_str();
                let iters = opts.query_iters;
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut recorder = LatencyRecorder::new();
                    let mut client = connect(addr, protocol).expect("connect for queries");
                    for i in 0..iters {
                        let (selector, query) = query_mix(conn + i);
                        let t0 = Instant::now();
                        match client.query_parts(selector, query) {
                            Ok(Ok(_)) => {}
                            Ok(Err(e)) => {
                                // Any protocol error — including Overloaded —
                                // is a failure in the paced phase.
                                eprintln!("query error: {e}");
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("query transport error: {e}");
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        recorder.record(t0.elapsed());
                    }
                    recorder
                })
            })
            .collect();
        for h in handles {
            query_lat.merge(h.join().expect("query thread"));
        }
    });
    let query_wall = query_wall.elapsed();

    // Phase 2b — pipelined query mix (`--pipeline N`): the same analyst
    // mix, but each connection sends batches of N requests in one write
    // and reads the N responses back in order. Each recorded latency is
    // the whole-batch round trip — N replies leaving the server in (at
    // best) one writev instead of N writes is exactly what this phase
    // measures.
    let mut pipeline_wall_ms = None;
    let pipeline = if opts.pipeline > 0 {
        eprintln!(
            "server_load: pipelined queries, {} connections x {} iterations, depth {}...",
            opts.query_conns, opts.query_iters, opts.pipeline
        );
        let pipe_wall = Instant::now();
        let mut pipe_lat = LatencyRecorder::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..opts.query_conns)
                .map(|conn| {
                    let hard_errors = &hard_errors;
                    let addr = opts.addr.as_str();
                    let (iters, depth, protocol) = (opts.query_iters, opts.pipeline, opts.protocol);
                    s.spawn(move || {
                        let mut recorder = LatencyRecorder::new();
                        let mut client =
                            connect(addr, protocol).expect("connect for pipelined queries");
                        let mut sent = 0usize;
                        while sent < iters {
                            let batch = depth.min(iters - sent);
                            let reqs: Vec<Request> = (0..batch)
                                .map(|i| {
                                    let (selector, query) = query_mix(conn + sent + i);
                                    Request::Query {
                                        request: QueryRequest::new(selector, query),
                                    }
                                })
                                .collect();
                            sent += batch;
                            let t0 = Instant::now();
                            match client.call_pipelined(reqs) {
                                Ok(resps) => {
                                    recorder.record(t0.elapsed());
                                    for resp in resps {
                                        match resp {
                                            Response::Query { .. } => {}
                                            other => {
                                                eprintln!("pipelined query error: {other:?}");
                                                hard_errors.fetch_add(1, Ordering::Relaxed);
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    eprintln!("pipelined transport error: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        recorder
                    })
                })
                .collect();
            for h in handles {
                pipe_lat.merge(h.join().expect("pipelined query thread"));
            }
        });
        let pipe_wall = pipe_wall.elapsed();
        pipeline_wall_ms = Some(pipe_wall.as_secs_f64() * 1e3);
        Some(PipelineReport {
            depth: opts.pipeline,
            batch_rtt: phase_report(&pipe_lat, pipe_wall),
        })
    } else {
        None
    };

    // Phase 3 — overload burst: hammer the queue, expect shedding to be
    // typed Overloaded responses and nothing worse.
    let mut overload_wall_ms = None;
    let overload = if opts.overload {
        eprintln!(
            "server_load: overload burst with {} connections x {} iterations...",
            opts.overload_conns, opts.overload_iters
        );
        let burst_wall = Instant::now();
        let ok = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        let burst_hard = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for conn in 0..opts.overload_conns {
                let (ok, shed, burst_hard) = (&ok, &shed, &burst_hard);
                let addr = opts.addr.as_str();
                let iters = opts.overload_iters;
                let protocol = opts.protocol;
                s.spawn(move || {
                    let mut client = connect(addr, protocol).expect("connect for burst");
                    for i in 0..iters {
                        let (selector, query) = query_mix(conn + i);
                        match client.query_parts(selector, query) {
                            Ok(Ok(_)) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(ServerError::Overloaded { .. })) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Err(e)) => {
                                eprintln!("burst hard error: {e}");
                                burst_hard.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("burst transport error: {e}");
                                burst_hard.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        overload_wall_ms = Some(burst_wall.elapsed().as_secs_f64() * 1e3);
        let report = OverloadReport {
            requests: opts.overload_conns * opts.overload_iters,
            ok: ok.load(Ordering::Relaxed),
            shed: shed.load(Ordering::Relaxed),
            hard_errors: burst_hard.load(Ordering::Relaxed),
        };
        hard_errors.fetch_add(report.hard_errors, Ordering::Relaxed);
        Some(report)
    } else {
        None
    };

    // Phase 4 — connection scaling: hold N concurrent mostly-idle
    // connections (the poll-loop's fd-per-connection model under test)
    // and round-robin pings across them while sampling the server's own
    // view of active connections and memory.
    let mut scale_wall_ms = None;
    let scale = if opts.scale_conns > 0 {
        eprintln!(
            "server_load: holding {} concurrent connections ({} ping rounds)...",
            opts.scale_conns, opts.scale_rounds
        );
        let threads = opts.scale_conns.min(16);
        let connected = std::sync::Barrier::new(threads + 1);
        let sampled = std::sync::Barrier::new(threads + 1);
        let mut ping_lat = LatencyRecorder::new();
        let mut observed = (0usize, None::<u64>);
        let hold_wall = Instant::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (connected, sampled, hard_errors) = (&connected, &sampled, &hard_errors);
                    let addr = opts.addr.as_str();
                    let (protocol, rounds) = (opts.protocol, opts.scale_rounds);
                    // Thread t holds connections t, t+threads, t+2*threads, …
                    let held = (t..opts.scale_conns).step_by(threads).count();
                    s.spawn(move || {
                        let mut clients = Vec::with_capacity(held);
                        for _ in 0..held {
                            match connect(addr, protocol) {
                                Ok(c) => clients.push(c),
                                Err(e) => {
                                    eprintln!("scale connect failed: {e}");
                                    hard_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        connected.wait(); // every connection is now held
                        sampled.wait(); // main thread sampled the server
                        let mut recorder = LatencyRecorder::new();
                        for _ in 0..rounds {
                            for client in &mut clients {
                                let t0 = Instant::now();
                                match client.ping() {
                                    Ok(Response::Pong) => recorder.record(t0.elapsed()),
                                    other => {
                                        eprintln!("scale ping failed: {other:?}");
                                        hard_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        recorder
                    })
                })
                .collect();
            connected.wait();
            // Every connection is held: ask the server what it sees.
            match connect(opts.addr.as_str(), opts.protocol)
                .expect("connect for scale sample")
                .metrics()
            {
                Ok(Response::Metrics(m)) => observed = (m.active_connections, m.rss_kb),
                other => {
                    eprintln!("scale metrics failed: {other:?}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            sampled.wait();
            for h in handles {
                ping_lat.merge(h.join().expect("scale thread"));
            }
        });
        let held = hold_wall.elapsed();
        scale_wall_ms = Some(held.as_secs_f64() * 1e3);
        let (active, rss_kb_held) = observed;
        if active < opts.scale_conns {
            eprintln!(
                "server_load: held {} connections but the server saw only {active} active",
                opts.scale_conns
            );
            hard_errors.fetch_add(1, Ordering::Relaxed);
        }
        Some(ScaleReport {
            connections: opts.scale_conns,
            active_connections_observed: active,
            rss_kb_held,
            ping: phase_report(&ping_lat, held),
        })
    } else {
        None
    };

    // Standing-rules wrap-up: drain the pushed alerts (the subscriber was
    // deliberately idle through the paced phases — exactly the slow
    // consumer the server's alert backpressure is sized for) and capture
    // the server's per-rule traces while the rules are still registered.
    let mut rules_summary: Option<(usize, u64)> = None;
    if let Some(client) = subscriber.as_mut() {
        let mut received = 0usize;
        loop {
            match client.recv_alert(std::time::Duration::from_millis(500)) {
                Ok(Some(_)) => received += 1,
                Ok(None) => break,
                Err(e) => {
                    eprintln!("alert drain failed: {e}");
                    hard_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let fires_total = match client.list_rules() {
            Ok(Ok(traces)) => {
                if let Some(path) = &opts.rules_trace {
                    let json = serde_json::to_string_pretty(&traces).expect("traces serialize");
                    std::fs::write(path, json).expect("write rules trace");
                    eprintln!("server_load: per-rule traces written to {path}");
                }
                traces.iter().map(|t| t.fires).sum()
            }
            other => {
                eprintln!("list_rules failed: {other:?}");
                hard_errors.fetch_add(1, Ordering::Relaxed);
                0
            }
        };
        rules_summary = Some((received, fires_total));
    }
    drop(subscriber);

    // Server-side accounting: metrics prove the bounded-queue invariant
    // (and, with --expect-wal, the durability layer's health).
    let mut alert_counters = (0u64, 0u64);
    let mut loop_shard_spread = None;
    let mut admin = connect(opts.addr.as_str(), opts.protocol).expect("connect for metrics");
    if opts.expect_wal {
        // Exercise checkpoint+compact over the wire so the asserted
        // metrics reflect a server that has actually checkpointed.
        match admin.snapshot("checkpoint") {
            Ok(Response::SnapshotSaved { path, .. }) => {
                eprintln!("server_load: checkpointed ({path})");
            }
            other => {
                eprintln!("checkpoint failed: {other:?}");
                hard_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let server_side = match admin.metrics() {
        Ok(Response::Metrics(m)) => {
            if m.peak_queue_depth > m.queue_capacity {
                eprintln!(
                    "BOUNDED-QUEUE VIOLATION: peak depth {} > capacity {}",
                    m.peak_queue_depth, m.queue_capacity
                );
                hard_errors.fetch_add(1, Ordering::Relaxed);
            }
            if opts.expect_wal {
                match &m.wal {
                    None => {
                        eprintln!("server_load: --expect-wal set but Metrics has no wal block");
                        hard_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(w) => {
                        if w.segments < 1 {
                            eprintln!(
                                "server_load: wal reports {} segments (want ≥ 1)",
                                w.segments
                            );
                            hard_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        match w.last_checkpoint_age_ms {
                            Some(age) if age < 60_000 => {}
                            other => {
                                eprintln!(
                                    "server_load: checkpoint age {other:?} after an explicit \
                                     checkpoint (want Some(< 60000))"
                                );
                                hard_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            alert_counters = (m.alerts_delivered, m.alerts_dropped);
            // Placement skew across event-loop shards: max/min bytes_read
            // (min clamped to 1 byte so an idle shard reads as a large —
            // not infinite — spread). 1.0 = perfectly even.
            if !m.loop_shards.is_empty() {
                let max = m
                    .loop_shards
                    .iter()
                    .map(|s| s.bytes_read)
                    .max()
                    .unwrap_or(0);
                let min = m
                    .loop_shards
                    .iter()
                    .map(|s| s.bytes_read)
                    .min()
                    .unwrap_or(0);
                loop_shard_spread = Some(max.max(1) as f64 / min.max(1) as f64);
            }
            ServerSide {
                requests: m.requests,
                shed: m.shed,
                bad_requests: m.bad_requests,
                queue_capacity: m.queue_capacity,
                peak_queue_depth: m.peak_queue_depth,
                ingest_coalesced: m.ingest_coalesced,
                rss_kb: m.rss_kb,
                wal_segments: m.wal.as_ref().map(|w| w.segments),
                wal_bytes: m.wal.as_ref().map(|w| w.bytes),
                wal_records_since_checkpoint: m.wal.as_ref().map(|w| w.records_since_checkpoint),
                wal_last_checkpoint_age_ms: m.wal.as_ref().and_then(|w| w.last_checkpoint_age_ms),
            }
        }
        other => {
            eprintln!("metrics failed: {other:?}");
            hard_errors.fetch_add(1, Ordering::Relaxed);
            ServerSide {
                requests: 0,
                shed: 0,
                bad_requests: 0,
                queue_capacity: 0,
                peak_queue_depth: 0,
                ingest_coalesced: 0,
                rss_kb: None,
                wal_segments: None,
                wal_bytes: None,
                wal_records_since_checkpoint: None,
                wal_last_checkpoint_age_ms: None,
            }
        }
    };
    if opts.shutdown {
        let _ = admin.shutdown();
    }

    let hard = hard_errors.load(Ordering::Relaxed);
    let ingest_phase = phase_report(&ingest_lat, ingest_wall);
    // `--compare`: embed another run's ingest throughput (e.g. the
    // single-lock topology measured moments earlier) and the speedup.
    let comparison = opts.compare.as_ref().map(|path| {
        let against = load_report(path);
        let speedup = if against.ingest.ops_per_sec > 0.0 {
            ingest_phase.ops_per_sec / against.ingest.ops_per_sec
        } else {
            0.0
        };
        let against_pipe = against.pipeline.as_ref().map(|p| p.batch_rtt.p99_us);
        let this_pipe = pipeline.as_ref().map(|p| p.batch_rtt.p99_us);
        let pipe_speedup = match (against_pipe, this_pipe) {
            (Some(a), Some(t)) if t > 0.0 => Some(a / t),
            _ => None,
        };
        ComparisonReport {
            against: path.clone(),
            against_ingest_ops_per_sec: against.ingest.ops_per_sec,
            this_ingest_ops_per_sec: ingest_phase.ops_per_sec,
            speedup,
            against_pipeline_p99_us: against_pipe,
            this_pipeline_p99_us: this_pipe,
            pipeline_p99_speedup: pipe_speedup,
        }
    });
    // The overhead A/B runs in-process after the wire phases (it needs no
    // server, and running it earlier would contend with them for cores).
    let overhead = (opts.rules_overhead > 0)
        .then(|| rules_overhead_gate(opts.rules_overhead, &traffic, &opts));
    let obs_overhead = opts
        .obs_overhead
        .then(|| obs_overhead_gate(&traffic, &opts));
    let rules_report = if rules_summary.is_some() || overhead.is_some() {
        let (alerts_received, fires_total) = rules_summary.unwrap_or((0, 0));
        Some(RulesReport {
            registered: opts.rules,
            alerts_received,
            server_alerts_delivered: alert_counters.0,
            server_alerts_dropped: alert_counters.1,
            fires_total,
            overhead,
        })
    } else {
        None
    };
    let report = BenchReport {
        bench: "server_load".to_string(),
        quick: opts.quick,
        addr: opts.addr.clone(),
        protocol: opts.protocol,
        ingest_connections,
        ingest_sessions: opts.ingest_sessions,
        device_skew: (opts.ingest_sessions > 0).then(|| opts.skew.name().to_string()),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        records,
        ingest: ingest_phase,
        query_connections: opts.query_conns,
        query: phase_report(&query_lat, query_wall),
        pipeline,
        loop_shard_spread,
        overload,
        scale,
        rules: rules_report,
        obs_overhead,
        phase_wall_ms: Some(PhaseWalls {
            ingest_ms: ingest_wall.as_secs_f64() * 1e3,
            drain_ms: drain_wall.as_secs_f64() * 1e3,
            query_ms: query_wall.as_secs_f64() * 1e3,
            pipeline_ms: pipeline_wall_ms,
            overload_ms: overload_wall_ms,
            scale_ms: scale_wall_ms,
        }),
        comparison,
        server: server_side,
        hard_errors: hard,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write report");
    println!(
        "server_load: ingest {} batches ({} records) -> {:.0} req/s, p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.ingest.requests,
        report.records,
        report.ingest.ops_per_sec,
        report.ingest.p50_us,
        report.ingest.p99_us,
        report.ingest.max_us,
    );
    println!(
        "server_load: query {} requests over {} conns -> {:.0} req/s, p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        report.query.requests,
        report.query_connections,
        report.query.ops_per_sec,
        report.query.p50_us,
        report.query.p99_us,
        report.query.max_us,
    );
    if let Some(p) = &report.pipeline {
        println!(
            "server_load: pipelined depth {} -> {} batches, batch RTT p50 {:.0} us, p99 {:.0} us, max {:.0} us",
            p.depth, p.batch_rtt.requests, p.batch_rtt.p50_us, p.batch_rtt.p99_us, p.batch_rtt.max_us,
        );
    }
    if let Some(spread) = report.loop_shard_spread {
        println!("server_load: loop-shard bytes spread (max/min) {spread:.2}x");
    }
    if let Some(o) = &report.overload {
        println!(
            "server_load: overload burst {} requests -> {} ok, {} shed, {} hard errors",
            o.requests, o.ok, o.shed, o.hard_errors
        );
    }
    if let Some(sc) = &report.scale {
        println!(
            "server_load: held {} conns (server saw {}) -> ping p50 {:.0} us, p99 {:.0} us, rss {} KiB",
            sc.connections,
            sc.active_connections_observed,
            sc.ping.p50_us,
            sc.ping.p99_us,
            sc.rss_kb_held.map_or("n/a".to_string(), |k| k.to_string()),
        );
    }
    if let Some(r) = &report.rules {
        println!(
            "server_load: rules {} registered -> {} alerts received ({} delivered / {} dropped \
             server-side), {} fires total",
            r.registered,
            r.alerts_received,
            r.server_alerts_delivered,
            r.server_alerts_dropped,
            r.fires_total,
        );
        if let Some(o) = &r.overhead {
            println!(
                "server_load: rule overhead A/B ({} rules): ingest {:.0} ms -> {:.0} ms \
                 ({:+.1}%, {} alerts fired) ({})",
                o.rules,
                o.baseline_wall_ms,
                o.with_rules_wall_ms,
                o.overhead_pct,
                o.alerts_fired,
                if o.ok { "ok" } else { "FAIL" },
            );
        }
    }
    if let Some(o) = &report.obs_overhead {
        println!(
            "server_load: observability overhead A/B: ingest {:.0} ms -> {:.0} ms ({:+.1}%) ({})",
            o.baseline_wall_ms,
            o.with_obs_wall_ms,
            o.overhead_pct,
            if o.ok { "ok" } else { "FAIL" },
        );
    }
    if let Some(w) = &report.phase_wall_ms {
        println!(
            "server_load: phase walls: ingest {:.0} ms, drain {:.0} ms, query {:.0} ms{}{}",
            w.ingest_ms,
            w.drain_ms,
            w.query_ms,
            w.overload_ms
                .map_or(String::new(), |m| format!(", overload {m:.0} ms")),
            w.scale_ms
                .map_or(String::new(), |m| format!(", scale {m:.0} ms")),
        );
    }
    if let Some(c) = &report.comparison {
        println!(
            "server_load: vs {} -> ingest {:.0} req/s against {:.0} req/s ({:.2}x)",
            c.against, c.this_ingest_ops_per_sec, c.against_ingest_ops_per_sec, c.speedup
        );
        if let (Some(t), Some(a), Some(s)) = (
            c.this_pipeline_p99_us,
            c.against_pipeline_p99_us,
            c.pipeline_p99_speedup,
        ) {
            println!(
                "server_load: vs {} -> pipelined batch p99 {t:.0} us against {a:.0} us ({s:.2}x)",
                c.against
            );
        }
    }
    println!("report written to {}", opts.out);

    if hard > 0 {
        eprintln!("server_load: {hard} hard errors");
        std::process::exit(1);
    }
    if opts.expect_shedding {
        let shed = report.overload.as_ref().map_or(0, |o| o.shed);
        if shed == 0 {
            eprintln!("server_load: --expect-shedding set but no Overloaded responses observed");
            std::process::exit(1);
        }
    }
    if opts.expect_alerts > 0 {
        let got = report.rules.as_ref().map_or(0, |r| r.alerts_received);
        if got < opts.expect_alerts {
            eprintln!(
                "server_load: --expect-alerts {} but only {got} alerts arrived",
                opts.expect_alerts
            );
            std::process::exit(1);
        }
    }
    if let Some(o) = report.rules.as_ref().and_then(|r| r.overhead.as_ref()) {
        if !o.ok {
            eprintln!(
                "server_load: rule evaluation overhead {:+.1}% with {} rules exceeds the 10% gate",
                o.overhead_pct, o.rules
            );
            std::process::exit(1);
        }
    }
    if let Some(o) = report.obs_overhead.as_ref() {
        if !o.ok {
            eprintln!(
                "server_load: observability instrumentation overhead {:+.1}% exceeds the 5% gate",
                o.overhead_pct
            );
            std::process::exit(1);
        }
    }
    // `--baseline`: regression gate against a committed report. Runs
    // last, after this run's report is on disk for post-mortems.
    if let Some(path) = &opts.baseline {
        let baseline = load_report(path);
        let tol = opts.tolerance;
        let mut failed = false;
        let mut gate = |what: &str, ok: bool, got: f64, bound: f64| {
            let verdict = if ok { "ok" } else { "FAIL" };
            println!("server_load: baseline {what}: {got:.0} vs bound {bound:.0} ({verdict})");
            failed |= !ok;
        };
        let ops_floor = baseline.ingest.ops_per_sec / tol;
        gate(
            "ingest ops/sec >= floor",
            ingest_ops_ok(report.ingest.ops_per_sec, ops_floor),
            report.ingest.ops_per_sec,
            ops_floor,
        );
        let p99_ceil = baseline.ingest.p99_us * tol;
        gate(
            "ingest p99 <= ceiling",
            report.ingest.p99_us <= p99_ceil,
            report.ingest.p99_us,
            p99_ceil,
        );
        if let (Some(here), Some(base)) = (&report.scale, &baseline.scale) {
            let ping_ceil = base.ping.p99_us * tol;
            gate(
                "scale ping p99 <= ceiling",
                here.ping.p99_us <= ping_ceil,
                here.ping.p99_us,
                ping_ceil,
            );
        }
        if let (Some(here), Some(base)) = (&report.pipeline, &baseline.pipeline) {
            let batch_ceil = base.batch_rtt.p99_us * tol;
            gate(
                "pipelined batch p99 <= ceiling",
                here.batch_rtt.p99_us <= batch_ceil,
                here.batch_rtt.p99_us,
                batch_ceil,
            );
        }
        if failed {
            eprintln!("server_load: regression beyond tolerance {tol} against baseline {path}");
            std::process::exit(1);
        }
    }
}

/// Reads a prior `server_load` report (`--baseline` / `--compare`).
fn load_report(path: &str) -> BenchReport {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_and_exit(&format!("cannot read report {path}: {e}")));
    serde_json::from_str(&raw)
        .unwrap_or_else(|e| usage_and_exit(&format!("cannot parse report {path}: {e}")))
}

/// A throughput floor holds when this run met it (a zero baseline —
/// e.g. a hand-edited report — gates nothing).
fn ingest_ops_ok(got: f64, floor: f64) -> bool {
    floor <= 0.0 || got >= floor
}
