//! **Table 1** — Raw Indoor Positioning Data vs Mobility Semantics.
//!
//! Regenerates the paper's side-by-side comparison for one simulated
//! shopper, and quantifies the conciseness claim ("a more condensed form").
//!
//! Run: `cargo run -p trips-bench --bin table1`

use trips_bench::{editor_from_truth, f1, make_dataset, Table};
use trips_core::{Configurator, Trips};
use trips_sim::ErrorModel;

fn main() {
    let ds = make_dataset(7, 4, 5, 1, 0x7AB1E1, ErrorModel::default());
    let editor = editor_from_truth(&ds, 5);
    let device = ds.traces[0].device.clone();
    let mut system = Trips::new(Configurator::new(ds.dsm.clone()).with_event_editor(editor));
    let result = system.run(ds.sequences()).expect("translate");
    let d = result.device(&device).expect("device");

    println!("== Table 1: Raw Indoor Positioning Data vs Mobility Semantics ==\n");
    println!("Raw Positioning Records ({} total, first 6):", d.raw.len());
    for r in d.raw.records().iter().take(6) {
        println!("    {r}");
    }
    println!("    . . . . . . . . .\n");
    println!("Mobility Semantics ({} triplets):", d.semantics.len());
    println!("    {}:", device.anonymized());
    for s in &d.semantics {
        println!("    {s}");
    }

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["raw records".into(), d.raw.len().to_string()]);
    t.row(&["semantics triplets".into(), d.semantics.len().to_string()]);
    t.row(&["records per triplet".into(), f1(d.conciseness_ratio())]);
    t.row(&[
        "raw bytes (CSV)".into(),
        trips_data::io::to_csv_string(d.raw.records())
            .len()
            .to_string(),
    ]);
    t.row(&[
        "semantics bytes (text)".into(),
        d.semantics
            .iter()
            .map(|s| s.to_string().len() + 1)
            .sum::<usize>()
            .to_string(),
    ]);
    println!();
    t.print();
}
