//! **Ablations A1–A4** — design choices DESIGN.md calls out.
//!
//! * A1: cleaning repair order (none / floor-correction only /
//!   interpolation only / both — the paper's two-step order).
//! * A2: density-based splitting vs fixed-window splitting.
//! * A3: complementing priors (covered quantitatively in figure3c; repeated
//!   here in compact form for the ablation table).
//! * A4: timeline navigation cost, semantics-first vs record-first.
//!
//! Run: `cargo run -p trips-bench --bin ablations --release`

use trips_annotate::{split, Annotator, AnnotatorConfig};
use trips_bench::{assess_result, editor_from_truth, f3, make_dataset, time_ms, Table};
use trips_clean::{Cleaner, CleanerConfig};
use trips_core::{Translator, TranslatorConfig};
use trips_data::Duration;
use trips_sim::ErrorModel;
use trips_viewer::{Entry, SourceKind, Timeline};

fn main() {
    ablation_a1();
    ablation_a2();
    ablation_a3();
    ablation_a4();
}

/// A1: the Cleaning layer's two-step repair.
fn ablation_a1() {
    println!("== A1: cleaning repair steps ==\n");
    let em = ErrorModel {
        outlier_rate: 0.08,
        floor_error_rate: 0.08,
        ..ErrorModel::default()
    };
    let ds = make_dataset(3, 4, 15, 1, 0xAB1A1, em);

    let variants: &[(&str, bool, bool)] = &[
        ("no repair (drop only)", false, false),
        ("floor correction only", true, false),
        ("interpolation only", false, true),
        ("both (paper order)", true, true),
    ];
    let mut t = Table::new(&["variant", "RMSE m", "floor err%", "records kept%"]);
    for (name, floor_fix, interp) in variants {
        let cleaner = Cleaner::new(
            &ds.dsm,
            CleanerConfig {
                floor_correction: *floor_fix,
                interpolation: *interp,
                ..CleanerConfig::default()
            },
        )
        .expect("frozen");
        let mut rmse = 0.0;
        let mut floor_err = 0.0;
        let mut kept = 0.0;
        let n = ds.traces.len() as f64;
        for trace in &ds.traces {
            let out = cleaner.clean(&trace.raw);
            let truth = &trace.truth_samples;
            let mut err = 0.0;
            let mut bad_floor = 0usize;
            let mut m = 0usize;
            for r in out.sequence.records() {
                let idx = truth.partition_point(|(t, _)| *t <= r.ts);
                if idx == 0 {
                    continue;
                }
                let tpos = truth[idx - 1].1;
                err += tpos.xy.distance(r.location.xy).powi(2);
                bad_floor += usize::from(tpos.floor != r.location.floor);
                m += 1;
            }
            if m > 0 {
                rmse += (err / m as f64).sqrt() / n;
                floor_err += bad_floor as f64 / m as f64 / n;
            }
            kept += out.sequence.len() as f64 / trace.raw.len().max(1) as f64 / n;
        }
        t.row(&[
            name.to_string(),
            f3(rmse),
            f3(floor_err * 100.0),
            f3(kept * 100.0),
        ]);
    }
    t.print();
    println!();
}

/// A2: density-based vs fixed-window splitting, end-to-end quality.
fn ablation_a2() {
    println!("== A2: density-based vs fixed-window splitting ==\n");
    let ds = make_dataset(2, 4, 25, 1, 0xAB1A2, ErrorModel::default());
    let editor = editor_from_truth(&ds, 25);

    // End-to-end with density splitting (the system default).
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let dense_result = translator.translate(&ds.sequences());
    let dense = assess_result(&ds, &dense_result);

    // Fixed-window annotation: emulate by splitting with an effectively
    // density-free configuration (everything dense within 60 s windows).
    let (model, labels) = editor.train_default_model().expect("train");
    let annotator = Annotator::new(&ds.dsm, model, labels, AnnotatorConfig::standard());
    let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");
    let mut window_reports = Vec::new();
    for trace in &ds.traces {
        let cleaned = cleaner.clean(&trace.raw);
        // Fixed-window snippets, each annotated as a whole via the
        // annotator's own model by reusing its label through region runs is
        // complex; approximate by annotating each window-slice sequence.
        let windows = split::split_fixed_window(&cleaned.sequence, Duration::from_secs(60));
        let mut sems = Vec::new();
        for w in &windows {
            let slice = trips_data::PositioningSequence::from_records(
                trace.device.clone(),
                w.records(&cleaned.sequence).to_vec(),
            );
            sems.extend(annotator.annotate(&slice));
        }
        sems.sort_by_key(|s| s.start);
        window_reports.push(trips_core::assess::assess(&sems, &trace.truth_visits));
    }
    let windowed = trips_core::assess::aggregate(&window_reports);

    let mut t = Table::new(&["splitting", "region acc", "coverage", "event acc"]);
    t.row(&[
        "density-based (paper)".into(),
        f3(dense.region_time_accuracy),
        f3(dense.coverage),
        f3(dense.event_accuracy),
    ]);
    t.row(&[
        "fixed 60 s windows".into(),
        f3(windowed.region_time_accuracy),
        f3(windowed.coverage),
        f3(windowed.event_accuracy),
    ]);
    t.print();
    println!();
}

/// A3: knowledge priors — compact repetition of figure3c's sweep.
fn ablation_a3() {
    println!("== A3: complementing priors (see figure3c for the full sweep) ==\n");
    println!("run `cargo run -p trips-bench --bin figure3c --release`\n");
}

/// A4: navigation cost — semantics-first vs record-first timelines.
fn ablation_a4() {
    println!("== A4: timeline navigation, semantics-first vs record-first ==\n");
    let ds = make_dataset(2, 4, 30, 1, 0xAB1A4, ErrorModel::default());
    let editor = editor_from_truth(&ds, 15);
    let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
        .expect("translator");
    let result = translator.translate(&ds.sequences());

    let mut entries: Vec<Entry> = Vec::new();
    for d in &result.devices {
        for r in d.raw.records() {
            entries.push(Entry::from_record(r, SourceKind::Raw));
        }
        for s in &d.semantics {
            entries.push(Entry::from_semantics(s, &ds.dsm));
        }
    }
    let timeline = Timeline::new(entries);

    // Semantics-first: iterate navigator entries (concise).
    let (nav_steps, nav_ms) = time_ms(|| timeline.navigator_len());
    // Record-first: a navigator over every raw record entry would need this
    // many steps to scan the same timeline.
    let record_steps = timeline.len() - timeline.navigator_len();

    let mut t = Table::new(&["navigator", "entries to scan", "build ms"]);
    t.row(&[
        "semantics-first (paper)".into(),
        nav_steps.to_string(),
        f3(nav_ms),
    ]);
    t.row(&["record-first".into(), record_steps.to_string(), "-".into()]);
    t.print();
    println!(
        "\nconciseness factor: {:.1}x fewer navigation steps",
        record_steps as f64 / nav_steps.max(1) as f64
    );
}
