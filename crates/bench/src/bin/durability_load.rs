//! `durability_load` — measures what durability costs on the store's
//! ingest hot path, and what recovery costs at boot.
//!
//! Ingests identical synthetic semantics batches into four stores — a
//! no-WAL baseline and one durable store per fsync policy (`never`,
//! `every=N`, `always`) — recording per-batch append latency, then
//! measures wall-clock recovery (WAL replay) from the written logs.
//! Emits `BENCH_wal.json`.
//!
//! ```text
//! durability_load [--quick] [--out PATH] [--devices N] [--batches N]
//!                 [--batch-size N] [--every N] [--segment-bytes N]
//!                 [--no-gate]
//! ```
//!
//! Unless `--no-gate`, exits 1 when the `every=N` policy (the default
//! serving configuration) falls below **75%** of the no-WAL baseline
//! per-batch throughput — the durability layer is supposed to ride the
//! page cache, not double the ingest cost. The gate binds only the full
//! (canonical) workload; `--quick` runs are too short to gate reliably
//! on a shared machine, so there the ratio is reported but never fails
//! the run.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use trips_annotate::MobilitySemantics;
use trips_data::{DeviceId, Timestamp};
use trips_dsm::RegionId;
use trips_engine::LatencyRecorder;
use trips_store::{DurabilityConfig, FsyncPolicy, SemanticsStore};

struct Options {
    quick: bool,
    out: String,
    devices: usize,
    batches: usize,
    batch_size: usize,
    every: u32,
    segment_bytes: u64,
    gate: bool,
}

fn usage_and_exit(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: durability_load [--quick] [--out PATH] [--devices N] [--batches N] \
         [--batch-size N] [--every N] [--segment-bytes N] [--no-gate]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(value) = args.next() else {
        usage_and_exit(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => usage_and_exit(&format!("invalid value {value:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        out: "BENCH_wal.json".to_string(),
        devices: 32,
        batches: 600,
        // The serving path ingests in 50-record wire chunks (the
        // server_load/e2e batch size); measure at that granularity.
        batch_size: 50,
        every: 64,
        segment_bytes: 4 * 1024 * 1024,
        gate: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = parse(&mut args, "--out"),
            "--devices" => opts.devices = parse(&mut args, "--devices"),
            "--batches" => opts.batches = parse(&mut args, "--batches"),
            "--batch-size" => opts.batch_size = parse(&mut args, "--batch-size"),
            "--every" => opts.every = parse(&mut args, "--every"),
            "--segment-bytes" => opts.segment_bytes = parse(&mut args, "--segment-bytes"),
            "--no-gate" => opts.gate = false,
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    if opts.quick {
        // Shrink the run length only — fewer devices would also shrink
        // the baseline's per-batch cost and skew the overhead ratio.
        opts.batches = opts.batches.min(300);
    }
    opts
}

fn sem(device: &str, region: u32, event: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
    MobilitySemantics {
        device: DeviceId::new(device),
        event: event.into(),
        region: RegionId(region),
        region_name: format!("Region-{region}"),
        start: Timestamp::from_millis(start_s * 1000),
        end: Timestamp::from_millis(end_s * 1000),
        inferred: false,
        display_point: None,
    }
}

/// Deterministic workload: `batches` batches of `batch_size` semantics,
/// round-robined over `devices` devices.
fn workload(opts: &Options) -> Vec<(DeviceId, Vec<MobilitySemantics>)> {
    (0..opts.batches)
        .map(|b| {
            let id = format!("dev-{:04}", b % opts.devices);
            let batch = (0..opts.batch_size)
                .map(|i| {
                    let t = (b * opts.batch_size + i) as i64 * 30;
                    sem(
                        &id,
                        ((b * 7 + i) % 23) as u32,
                        if (b + i) % 3 == 0 { "pass-by" } else { "stay" },
                        t,
                        t + 25,
                    )
                })
                .collect();
            (DeviceId::new(&id), batch)
        })
        .collect()
}

#[derive(Serialize)]
struct PolicyReport {
    policy: String,
    batches: usize,
    semantics: usize,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mean_us: f64,
    wall_ms: f64,
    /// Per-batch throughput relative to the no-WAL baseline, derived
    /// from median latencies (`baseline_p50 / p50`; 1.0 = free).
    vs_baseline: f64,
    wal_segments: usize,
    wal_bytes: u64,
}

#[derive(Serialize)]
struct RecoveryBench {
    /// Fsync policy of the log being replayed (recovery itself is
    /// policy-independent; the log length is what matters).
    from_policy: String,
    replayed_records: u64,
    segments: usize,
    wall_ms: f64,
    records_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    devices: usize,
    batches: usize,
    batch_size: usize,
    baseline_ops_per_sec: f64,
    baseline_p50_us: f64,
    baseline_p99_us: f64,
    policies: Vec<PolicyReport>,
    recovery: Vec<RecoveryBench>,
    /// The gated ratio: `every=N` per-batch throughput / baseline
    /// (median-derived).
    everyn_vs_baseline: f64,
    gate_threshold: f64,
    gate_passed: bool,
}

fn ingest_all(
    store: &SemanticsStore,
    work: &[(DeviceId, Vec<MobilitySemantics>)],
) -> (LatencyRecorder, f64) {
    let wall = Instant::now();
    let mut recorder = LatencyRecorder::new();
    for (device, batch) in work {
        let t0 = Instant::now();
        store.ingest(device, batch);
        recorder.record(t0.elapsed());
    }
    (recorder, wall.elapsed().as_secs_f64())
}

fn main() {
    let opts = parse_args();
    let work = workload(&opts);
    let semantics: usize = work.iter().map(|(_, b)| b.len()).sum();
    let scratch =
        std::env::temp_dir().join(format!("trips-durability-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    eprintln!(
        "durability_load: {} batches x {} semantics over {} devices ({})",
        opts.batches,
        opts.batch_size,
        opts.devices,
        if opts.quick { "quick" } else { "full" }
    );

    // Warmup: populate allocator arenas and fault in the workload so the
    // first measured store doesn't pay one-time costs.
    {
        let warmup = SemanticsStore::with_shards(8);
        let _ = ingest_all(&warmup, &work);
    }

    // Every configuration runs REPS times and keeps its best (lowest-
    // median) run: a single sub-second run on a shared machine can be
    // 2× off from scheduler/IO noise, and noise only ever slows a run.
    let reps = 3;

    // No-WAL baseline.
    let baseline = (0..reps)
        .map(|_| {
            let store = SemanticsStore::with_shards(8);
            let (lat, wall) = ingest_all(&store, &work);
            lat.summary(std::time::Duration::from_secs_f64(wall))
        })
        .min_by_key(|s| s.p50)
        .expect("at least one rep");
    eprintln!(
        "durability_load: baseline (no wal)    {:>9.0} batches/s  p50 {:>6.1} us  p99 {:>7.1} us",
        baseline.ops_per_sec,
        baseline.p50.as_secs_f64() * 1e6,
        baseline.p99.as_secs_f64() * 1e6,
    );

    let policies = [
        FsyncPolicy::Never,
        FsyncPolicy::EveryN(opts.every),
        FsyncPolicy::Always,
    ];
    let mut policy_reports = Vec::new();
    let mut recovery_reports = Vec::new();
    let mut everyn_vs_baseline = 0.0;

    for policy in policies {
        // A fresh directory per rep (recovering an existing log would
        // replay it); the last rep's directory feeds the recovery bench.
        let mut best: Option<(usize, u64, trips_engine::LatencySummary, f64)> = None;
        let mut dir: PathBuf = scratch.clone();
        for rep in 0..reps {
            dir = scratch.join(format!("{}-{rep}", policy.to_string().replace('=', "-")));
            let config = DurabilityConfig {
                dir: dir.clone(),
                fsync: policy,
                segment_bytes: opts.segment_bytes,
            };
            let (store, _) = SemanticsStore::recover(&config, 8).expect("fresh wal dir");
            let (lat, wall) = ingest_all(&store, &work);
            store.sync_wal().expect("final sync");
            let stats = store.wal_stats().expect("durable store has wal stats");
            let summary = lat.summary(std::time::Duration::from_secs_f64(wall));
            if best
                .as_ref()
                .map_or(true, |(_, _, b, _)| summary.p50 < b.p50)
            {
                best = Some((stats.segments, stats.bytes, summary, wall));
            }
        }
        let config = DurabilityConfig {
            dir: dir.clone(),
            fsync: policy,
            segment_bytes: opts.segment_bytes,
        };
        let (segments, bytes, summary, wall) = best.expect("at least one rep");
        // Median-based per-batch throughput ratio: wall-clock ops/sec on
        // sub-second runs swings ±30% with scheduler noise, while p50
        // latency is stable run to run — gate on the robust signal.
        let vs_baseline = if summary.p50.as_nanos() > 0 {
            baseline.p50.as_secs_f64() / summary.p50.as_secs_f64()
        } else {
            0.0
        };
        if matches!(policy, FsyncPolicy::EveryN(_)) {
            everyn_vs_baseline = vs_baseline;
        }
        eprintln!(
            "durability_load: fsync {:<12} {:>9.0} batches/s  p50 {:>6.1} us  p99 {:>7.1} us  ({:.0}% of baseline)",
            policy.to_string(),
            summary.ops_per_sec,
            summary.p50.as_secs_f64() * 1e6,
            summary.p99.as_secs_f64() * 1e6,
            vs_baseline * 100.0,
        );
        policy_reports.push(PolicyReport {
            policy: policy.to_string(),
            batches: opts.batches,
            semantics,
            ops_per_sec: summary.ops_per_sec,
            p50_us: summary.p50.as_secs_f64() * 1e6,
            p99_us: summary.p99.as_secs_f64() * 1e6,
            max_us: summary.max.as_secs_f64() * 1e6,
            mean_us: summary.mean.as_secs_f64() * 1e6,
            wall_ms: wall * 1e3,
            vs_baseline,
            wal_segments: segments,
            wal_bytes: bytes,
        });

        // Recovery time vs WAL length: replay the log we just wrote.
        let t0 = Instant::now();
        let (recovered, report) = SemanticsStore::recover(&config, 8).expect("recover");
        let recovery_wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            recovered.semantics_count(),
            semantics,
            "recovery must reproduce the ingested state"
        );
        recovery_reports.push(RecoveryBench {
            from_policy: policy.to_string(),
            replayed_records: report.replayed_records,
            segments: report.segments,
            wall_ms: recovery_wall * 1e3,
            records_per_sec: if recovery_wall > 0.0 {
                report.replayed_records as f64 / recovery_wall
            } else {
                0.0
            },
        });
        eprintln!(
            "durability_load: recovery from {:<10} replayed {} records in {:.1} ms",
            policy.to_string(),
            report.replayed_records,
            recovery_wall * 1e3,
        );
    }

    let gate_threshold = 0.75;
    let gate_passed = everyn_vs_baseline >= gate_threshold;
    let report = BenchReport {
        bench: "durability_load".to_string(),
        quick: opts.quick,
        devices: opts.devices,
        batches: opts.batches,
        batch_size: opts.batch_size,
        baseline_ops_per_sec: baseline.ops_per_sec,
        baseline_p50_us: baseline.p50.as_secs_f64() * 1e6,
        baseline_p99_us: baseline.p99.as_secs_f64() * 1e6,
        policies: policy_reports,
        recovery: recovery_reports,
        everyn_vs_baseline,
        gate_threshold,
        gate_passed,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write report");
    println!("report written to {}", opts.out);
    let _ = std::fs::remove_dir_all(&scratch);

    if !gate_passed {
        eprintln!(
            "durability_load: gate ratio {:.0}% is below the {:.0}% floor{}",
            everyn_vs_baseline * 100.0,
            gate_threshold * 100.0,
            if opts.quick {
                " (informational in --quick mode)"
            } else {
                ""
            },
        );
        if opts.gate && !opts.quick {
            eprintln!(
                "durability_load: GATE FAILED — every={} throughput is {:.0}% of the no-WAL \
                 baseline",
                opts.every,
                everyn_vs_baseline * 100.0,
            );
            std::process::exit(1);
        }
    }
}
