//! **Figure 2** — the Space Modeler's drawing tool / DSM creation.
//!
//! Measures the three-step DSM creation at growing floorplan complexity:
//! drawing-operation throughput (with snapping and undo/redo), topology
//! computation time, walking-graph size, and DSM JSON size.
//!
//! Run: `cargo run -p trips-bench --bin figure2 --release`

use trips_bench::{f1, time_ms, Table};
use trips_dsm::builder::MallBuilder;
use trips_dsm::canvas::FloorplanCanvas;
use trips_dsm::entity::EntityKind;
use trips_dsm::{json as dsm_json, DigitalSpaceModel, SemanticTag};
use trips_geom::Point;

/// Traces one floor of `n` shops through the canvas, exactly as an analyst
/// would: polygons with snapped corners, a door each, a tag each.
fn draw_floor(n: usize) -> (FloorplanCanvas, f64) {
    let mut canvas = FloorplanCanvas::new(0);
    canvas.import_image("floorplan.png");
    let (_, ms) = time_ms(|| {
        for i in 0..n {
            let x = (i as f64) * 10.0;
            let id = canvas.draw_polygon(
                EntityKind::Room,
                &format!("Shop-{i}"),
                vec![
                    Point::new(x + 0.05, 0.02), // snaps onto the neighbour
                    Point::new(x + 10.0, 0.0),
                    Point::new(x + 10.0, 8.0),
                    Point::new(x + 0.02, 7.98),
                ],
            );
            canvas.draw_door(&format!("door-{i}"), Point::new(x + 5.0, 8.0), 1.5);
            canvas
                .assign_tag(id, SemanticTag::new("shop", "shop"))
                .expect("tag");
            // Editing pass: every 8th shop is adjusted then the adjustment
            // reconsidered (undo/redo traffic).
            if i % 8 == 0 {
                canvas.move_element(id, 0.0, 0.1).expect("move");
                canvas.undo().expect("undo");
            }
        }
        canvas.draw_polygon(
            EntityKind::Hallway,
            "Hall",
            vec![
                Point::new(0.0, 8.0),
                Point::new(n as f64 * 10.0, 8.0),
                Point::new(n as f64 * 10.0, 14.0),
                Point::new(0.0, 14.0),
            ],
        );
    });
    (canvas, ms)
}

fn main() {
    println!("== Figure 2: DSM creation via the drawing tool ==\n");

    let mut t = Table::new(&[
        "shops",
        "draw ms",
        "ops/s",
        "export ms",
        "freeze ms",
        "graph nodes",
        "json KiB",
    ]);
    for shops in [8usize, 16, 32, 64, 128] {
        let (canvas, draw_ms) = draw_floor(shops);
        let ops = shops * 3 + shops / 8 * 2 + 1;
        let mut dsm = DigitalSpaceModel::new("figure2");
        let (_, export_ms) = time_ms(|| canvas.export_to_dsm(&mut dsm).expect("export"));
        let (_, freeze_ms) = time_ms(|| dsm.freeze());
        let nodes = dsm.topology().expect("frozen").nodes.len();
        let json = dsm_json::to_json(&dsm).expect("json");
        t.row(&[
            shops.to_string(),
            f1(draw_ms),
            f1(ops as f64 / (draw_ms / 1000.0)),
            f1(export_ms),
            f1(freeze_ms),
            nodes.to_string(),
            (json.len() / 1024).to_string(),
        ]);
    }
    t.print();

    // Multi-floor scaling with the parametric builder (the evaluation mall).
    println!("\nmulti-floor builder (8 shops/row):");
    let mut t2 = Table::new(&[
        "floors",
        "entities",
        "regions",
        "build+freeze ms",
        "json KiB",
    ]);
    for floors in [1u16, 2, 4, 7] {
        let (dsm, ms) = time_ms(|| MallBuilder::new().floors(floors).shops_per_row(8).build());
        let json = dsm_json::to_json(&dsm).expect("json");
        t2.row(&[
            floors.to_string(),
            dsm.entity_count().to_string(),
            dsm.region_count().to_string(),
            f1(ms),
            (json.len() / 1024).to_string(),
        ]);
    }
    t2.print();
}
