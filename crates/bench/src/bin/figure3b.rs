//! **Figure 3 (Annotation layer)** — event identification quality.
//!
//! Compares the learning-based identification model (decision tree, random
//! forest, k-NN) against the two literature baselines (fixed-threshold
//! classification \[10\]; duration-only stop/move \[12\]) across training-set
//! sizes, on held-out simulated ground truth.
//!
//! Run: `cargo run -p trips-bench --bin figure3b --release`

use trips_annotate::baseline::ThresholdClassifier;
use trips_annotate::model::{
    evaluate, Classifier, DecisionTree, KNearest, RandomForest, TreeParams,
};
use trips_bench::{f3, labelled_snippets, make_dataset, Table};
use trips_sim::ErrorModel;

/// Duration-only stop/move rule (SMoT-style): an interval ≥ 90 s is a stop.
struct DurationRule;

impl Classifier for DurationRule {
    fn predict(&self, x: &[f64]) -> usize {
        // Feature 6 is the snippet duration in seconds.
        usize::from(x[6] < 90.0)
    }
    fn name(&self) -> &'static str {
        "stop-move"
    }
}

fn main() {
    println!("== Figure 3b: event identification accuracy / macro-F1 ==\n");

    let train_ds = make_dataset(2, 4, 40, 1, 0xF16B01, ErrorModel::default());
    let test_ds = make_dataset(2, 4, 30, 1, 0xF16B02, ErrorModel::default());
    let (full_x, full_y) = labelled_snippets(&train_ds);
    let (test_x, test_y) = labelled_snippets(&test_ds);
    println!(
        "training pool: {} snippets; held-out test: {} snippets\n",
        full_x.len(),
        test_x.len()
    );

    let mut t = Table::new(&[
        "train n",
        "tree acc",
        "tree F1",
        "forest acc",
        "knn acc",
        "threshold acc",
        "stop-move acc",
    ]);

    let sizes: Vec<usize> = [10usize, 20, 40, 80, full_x.len()]
        .into_iter()
        .filter(|&n| n <= full_x.len())
        .collect();
    for n in sizes {
        // Class-balanced prefix.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut counts = [0usize; 2];
        for (x, &y) in full_x.iter().zip(&full_y) {
            if counts[y] < n.div_ceil(2) {
                xs.push(x.clone());
                ys.push(y);
                counts[y] += 1;
            }
        }
        if ys.iter().collect::<std::collections::BTreeSet<_>>().len() < 2 {
            continue;
        }

        let tree = DecisionTree::train(&xs, &ys, 2, &TreeParams::default());
        let forest = RandomForest::train(&xs, &ys, 2, 15, 42);
        let knn = KNearest::train(&xs, &ys, 2, 5);
        let tm = evaluate(&tree, &test_x, &test_y, 2);
        let fm = evaluate(&forest, &test_x, &test_y, 2);
        let km = evaluate(&knn, &test_x, &test_y, 2);
        let bm = evaluate(&ThresholdClassifier::default(), &test_x, &test_y, 2);
        let sm = evaluate(&DurationRule, &test_x, &test_y, 2);

        t.row(&[
            xs.len().to_string(),
            f3(tm.accuracy),
            f3(tm.macro_f1),
            f3(fm.accuracy),
            f3(km.accuracy),
            f3(bm.accuracy),
            f3(sm.accuracy),
        ]);
    }
    t.print();
    println!("\n(learned models should dominate the two parameter-only baselines, and grow with train n)");
}
