//! **Figure 1** — system architecture dataflow.
//!
//! Pushes one day of mall traffic through every component of the
//! architecture in order (Data Selector → Raw Data Cleaner → Annotator →
//! Complementor → Viewer abstraction) and reports per-component throughput,
//! demonstrating the dataflow of the paper's architecture diagram.
//!
//! Run: `cargo run -p trips-bench --bin figure1 --release`

use trips_annotate::{Annotator, AnnotatorConfig, MobilitySemantics};
use trips_bench::{editor_from_truth, f1, make_dataset, time_ms, Table};
use trips_clean::Cleaner;
use trips_complement::{Complementor, ComplementorConfig, MobilityKnowledge};
use trips_data::{Duration, SelectionRule, Selector};
use trips_sim::ErrorModel;
use trips_viewer::{Entry, SourceKind};

fn main() {
    let ds = make_dataset(3, 6, 60, 1, 0xF16001, ErrorModel::default());
    let total_records = ds.record_count();
    println!(
        "== Figure 1: architecture dataflow ({total_records} records, {} devices) ==\n",
        ds.traces.len()
    );

    let mut t = Table::new(&["component", "input", "output", "ms", "krecords/s"]);

    // Data Selector.
    let sequences = ds.sequences();
    let selector = Selector::new(SelectionRule::MinDuration(Duration::from_mins(5)));
    let (selected, sel_ms) = time_ms(|| selector.select(sequences));
    let sel_records: usize = selected.iter().map(|s| s.len()).sum();
    t.row(&[
        "Data Selector".into(),
        format!("{total_records} rec"),
        format!("{sel_records} rec"),
        f1(sel_ms),
        f1(total_records as f64 / sel_ms),
    ]);

    // Raw Data Cleaner.
    let cleaner = Cleaner::with_defaults(&ds.dsm).expect("frozen");
    let (cleaned, clean_ms) = time_ms(|| {
        selected
            .iter()
            .map(|s| cleaner.clean(s))
            .collect::<Vec<_>>()
    });
    let cleaned_records: usize = cleaned.iter().map(|c| c.sequence.len()).sum();
    t.row(&[
        "Raw Data Cleaner".into(),
        format!("{sel_records} rec"),
        format!("{cleaned_records} rec"),
        f1(clean_ms),
        f1(sel_records as f64 / clean_ms),
    ]);

    // Mobility Semantics Annotator.
    let editor = editor_from_truth(&ds, 20);
    let (model, labels) = editor.train_default_model().expect("train");
    let annotator = Annotator::new(&ds.dsm, model, labels, AnnotatorConfig::standard());
    let (annotated, ann_ms) = time_ms(|| {
        cleaned
            .iter()
            .map(|c| annotator.annotate(&c.sequence))
            .collect::<Vec<Vec<MobilitySemantics>>>()
    });
    let sem_count: usize = annotated.iter().map(|a| a.len()).sum();
    t.row(&[
        "Annotator".into(),
        format!("{cleaned_records} rec"),
        format!("{sem_count} sem"),
        f1(ann_ms),
        f1(cleaned_records as f64 / ann_ms),
    ]);

    // Mobility Semantics Complementor.
    let (knowledge, know_ms) = time_ms(|| MobilityKnowledge::build(&ds.dsm, &annotated, 0.5));
    let complementor = Complementor::new(&ds.dsm, knowledge, ComplementorConfig::default());
    let (complemented, comp_ms) = time_ms(|| {
        annotated
            .iter()
            .map(|a| complementor.complement(a))
            .collect::<Vec<_>>()
    });
    let total_sem: usize = complemented.iter().map(|c| c.len()).sum();
    t.row(&[
        "Complementor".into(),
        format!("{sem_count} sem"),
        format!("{total_sem} sem"),
        f1(know_ms + comp_ms),
        f1(sem_count as f64 / (know_ms + comp_ms)),
    ]);

    // Viewer abstraction.
    let (entries, view_ms) = time_ms(|| {
        let mut entries: Vec<Entry> = Vec::new();
        for (seq, sems) in selected.iter().zip(&complemented) {
            for r in seq.records() {
                entries.push(Entry::from_record(r, SourceKind::Raw));
            }
            for s in sems {
                entries.push(Entry::from_semantics(s, &ds.dsm));
            }
        }
        entries
    });
    t.row(&[
        "Viewer abstraction".into(),
        format!("{} rec+sem", sel_records + total_sem),
        format!("{} entries", entries.len()),
        f1(view_ms),
        f1((sel_records + total_sem) as f64 / view_ms),
    ]);

    t.print();
    println!(
        "\nend-to-end: {} raw records -> {} semantics ({:.1} rec/sem) in {:.0} ms",
        total_records,
        total_sem,
        sel_records as f64 / total_sem.max(1) as f64,
        sel_ms + clean_ms + ann_ms + know_ms + comp_ms + view_ms
    );
}
