//! **Figure 4** — visualization of mobility data sequences.
//!
//! Measures the Viewer pipeline at growing entry counts: abstraction of all
//! four data kinds into timeline entries, timeline construction, navigator
//! clicks, instant queries, SVG map rendering, and ASCII rendering.
//!
//! Run: `cargo run -p trips-bench --bin figure4 --release`

use trips_bench::{editor_from_truth, f1, make_dataset, time_ms, Table};
use trips_core::{Translator, TranslatorConfig};
use trips_data::{Duration, Timestamp};
use trips_sim::ErrorModel;
use trips_viewer::{ascii, Entry, MapView, SourceKind, SvgRenderer, Timeline, VisibilityControl};

fn main() {
    println!("== Figure 4: Viewer performance ==\n");

    let mut t = Table::new(&[
        "devices",
        "entries",
        "abstract ms",
        "timeline ms",
        "click µs",
        "at() µs",
        "svg ms",
        "svg KiB",
        "ascii ms",
    ]);

    for devices in [5usize, 20, 60] {
        let ds = make_dataset(2, 4, devices, 1, 0xF16004, ErrorModel::default());
        let editor = editor_from_truth(&ds, devices.min(20));
        let translator = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard())
            .expect("translator");
        let result = translator.translate(&ds.sequences());

        // Abstraction: all four sources into entries.
        let (entries, abstract_ms) = time_ms(|| {
            let mut entries: Vec<Entry> = Vec::new();
            for (d, trace) in result.devices.iter().zip(&ds.traces) {
                for r in d.raw.records() {
                    entries.push(Entry::from_record(r, SourceKind::Raw));
                }
                for r in d.cleaned.sequence.records() {
                    entries.push(Entry::from_record(r, SourceKind::Cleaned));
                }
                for (ts, p) in trace.truth_samples.iter().step_by(5) {
                    entries.push(Entry::from_truth(*ts, *p));
                }
                for s in &d.semantics {
                    entries.push(Entry::from_semantics(s, &ds.dsm));
                }
            }
            entries
        });

        let (timeline, timeline_ms) = time_ms(|| Timeline::new(entries.clone()));

        // Navigator clicks (average over all navigators).
        let clicks = timeline.navigator_len().max(1);
        let (_, click_total_ms) = time_ms(|| {
            let mut total = 0usize;
            for i in 0..timeline.navigator_len() {
                total += timeline.click_navigator(i).map_or(0, |v| v.len());
            }
            total
        });

        // Instant queries across the span.
        let span = timeline.span().unwrap_or((Timestamp(0), Timestamp(0)));
        let probes: Vec<Timestamp> = (0..200)
            .map(|i| span.0 + Duration((span.1 - span.0).as_millis() * i / 200))
            .collect();
        let (_, at_total_ms) =
            time_ms(|| probes.iter().map(|t| timeline.at(*t).len()).sum::<usize>());

        // SVG render of floor 0.
        let view = MapView::fit_to_floor(&ds.dsm, 0, 1000.0, 700.0);
        let renderer = SvgRenderer::new(view);
        let (svg, svg_ms) = time_ms(|| {
            renderer.render(
                &ds.dsm,
                timeline.entries(),
                &VisibilityControl::all_visible(),
            )
        });

        // ASCII render.
        let (_, ascii_ms) = time_ms(|| {
            ascii::render(
                &ds.dsm,
                0,
                timeline.entries(),
                &VisibilityControl::all_visible(),
                80,
                24,
            )
        });

        t.row(&[
            devices.to_string(),
            timeline.len().to_string(),
            f1(abstract_ms),
            f1(timeline_ms),
            f1(click_total_ms * 1000.0 / clicks as f64),
            f1(at_total_ms * 1000.0 / probes.len() as f64),
            f1(svg_ms),
            (svg.len() / 1024).to_string(),
            f1(ascii_ms),
        ]);
    }
    t.print();
    println!("\n(abstraction is linear in entries; click/at() linear in timeline; svg linear in visible entries)");
}
