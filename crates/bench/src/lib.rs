//! Shared harness for the TRIPS evaluation: dataset builders, ground-truth
//! training, assessment shortcuts, and an aligned table printer.
//!
//! Every table and figure of the paper maps to one binary in `src/bin/` (a
//! printable reproduction) and one criterion bench in `benches/` (the timing
//! side). See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! recorded results.

use trips_annotate::features::FeatureVector;
use trips_annotate::EventEditor;
use trips_core::assess::{self, AssessmentReport};
use trips_core::TranslationResult;
use trips_data::RawRecord;
use trips_engine::PipelineReport;
use trips_sim::{ErrorModel, ScenarioConfig, SimulatedDataset};

/// Standard dataset builder used across experiments.
pub fn make_dataset(
    floors: u16,
    shops_per_row: usize,
    devices: usize,
    days: usize,
    seed: u64,
    error_model: ErrorModel,
) -> SimulatedDataset {
    trips_sim::scenario::generate(
        floors,
        shops_per_row,
        &ScenarioConfig {
            devices,
            days,
            seed,
            error_model,
            ..ScenarioConfig::default()
        },
    )
}

/// Builds an Event Editor trained from ground-truth designations (the demo
/// analyst's step 3), using at most `max_traces` devices.
pub fn editor_from_truth(ds: &SimulatedDataset, max_traces: usize) -> EventEditor {
    let mut editor = EventEditor::with_default_patterns();
    for trace in ds.traces.iter().take(max_traces) {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    editor
}

/// Labelled snippet features from ground truth (0 = stay, 1 = pass-by).
pub fn labelled_snippets(ds: &SimulatedDataset) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for trace in &ds.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() < 2 {
                continue;
            }
            xs.push(FeatureVector::extract(&segment).values().to_vec());
            ys.push(match visit.kind {
                trips_sim::VisitKind::Stay => 0,
                trips_sim::VisitKind::PassBy => 1,
            });
        }
    }
    (xs, ys)
}

/// Aggregated assessment of a translation result against the dataset's
/// ground truth.
pub fn assess_result(ds: &SimulatedDataset, result: &TranslationResult) -> AssessmentReport {
    let reports: Vec<AssessmentReport> = ds
        .traces
        .iter()
        .filter_map(|trace| {
            result
                .device(&trace.device)
                .map(|d| assess::assess(&d.semantics, &trace.truth_visits))
        })
        .collect();
    assess::aggregate(&reports)
}

/// Aligned plain-text table printer for the experiment binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders an engine [`PipelineReport`] as an aligned table — the timing
/// side of every experiment binary that runs the Translator.
pub fn pipeline_table(report: &PipelineReport) -> Table {
    let mut t = Table::new(&["stage", "items", "wall ms"]);
    for s in &report.stages {
        t.row(&[
            s.name.clone(),
            s.items.to_string(),
            f1(s.wall.as_secs_f64() * 1000.0),
        ]);
    }
    t.row(&[
        "total".to_string(),
        String::new(),
        f1(report.total_wall().as_secs_f64() * 1000.0),
    ]);
    t
}

/// Formats a float with 3 decimals (table cells).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal (table cells).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Milliseconds elapsed by a closure.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["metric", "value"]);
        t.row(&["accuracy".to_string(), f3(0.912)]);
        t.row(&["x".to_string(), f1(10.0)]);
        let s = t.render();
        assert!(s.contains("accuracy"));
        assert!(s.contains("0.912"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn harness_helpers_work_end_to_end() {
        let ds = make_dataset(1, 2, 2, 1, 9, ErrorModel::default());
        let editor = editor_from_truth(&ds, 2);
        assert!(editor.example_count() > 0);
        let (xs, ys) = labelled_snippets(&ds);
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        let (_, ms) = time_ms(|| 1 + 1);
        assert!(ms >= 0.0);
    }
}
