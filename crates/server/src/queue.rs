//! Bounded MPMC admission queue — the server's overload valve.
//!
//! Producers (connection sessions) use [`BoundedQueue::try_push`], which
//! **fails immediately** when the queue is at capacity instead of blocking
//! or growing: the caller turns that into a typed `Overloaded` response
//! (load shedding). Consumers (the worker pool) block on
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed and
//! drained — so a graceful shutdown finishes every admitted request but
//! admits nothing new. Memory is bounded by construction: the deque never
//! holds more than `capacity` items, and [`BoundedQueue::peak_depth`]
//! records the high-water mark so tests and metrics can prove it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — shed the request.
    Full,
    /// Closed — the server is draining.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    peak: usize,
}

/// A fixed-capacity multi-producer / multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items at once. There
    /// is no rendezvous path: `capacity` 0 means **every** push sheds,
    /// whether or not a consumer is blocked in [`BoundedQueue::pop`]
    /// (useful for forcing overload in tests).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                peak: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item` unless the queue is full (shed) or closed (draining).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        inner.peak = inner.peak.max(inner.items.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed **and** drained (returning `None` — the consumer's signal to
    /// exit). Items admitted before `close` are always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Non-blocking pop: returns an item if one is queued right now,
    /// `None` otherwise (empty **or** closed — callers that need to
    /// distinguish should use [`BoundedQueue::pop`]). Used by workers to
    /// opportunistically coalesce adjacent ingest jobs under one
    /// translator lock acquisition without ever waiting for more work.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().expect("queue lock").items.pop_front()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain the remaining items then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Current depth (racy — diagnostics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy — diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the depth since construction. Bounded memory in
    /// one number: this can never exceed [`BoundedQueue::capacity`].
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().expect("queue lock").peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.peak_depth(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_sheds_without_growing() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.try_push(4), Err(PushError::Full));
        assert_eq!(q.len(), 2, "shed pushes must not enqueue");
        assert_eq!(q.peak_depth(), 2);
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some(1));
        q.try_push(5).unwrap();
        assert_eq!(q.peak_depth(), 2, "peak never exceeded capacity");
    }

    #[test]
    fn close_drains_admitted_items_then_signals_exit() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained + closed -> exit signal");
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = BoundedQueue::<u32>::new(4);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|_| s.spawn(|| q.pop())).collect();
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = BoundedQueue::<usize>::new(16);
        let consumed = AtomicUsize::new(0);
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::scope(|prod| {
                for t in 0..4usize {
                    let admitted = &admitted;
                    let q = &q;
                    prod.spawn(move || {
                        for i in 0..500 {
                            if q.try_push(t * 1000 + i).is_ok() {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            // Producers joined; consumers drain the remainder, then exit.
            q.close();
        });
        assert!(q.peak_depth() <= 16, "memory stayed bounded");
        assert_eq!(
            consumed.load(Ordering::Relaxed),
            admitted.load(Ordering::Relaxed),
            "every admitted item is delivered exactly once"
        );
        assert!(consumed.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_pop(), None, "empty queue -> None immediately");
        q.try_push(7).unwrap();
        assert_eq!(q.try_pop(), Some(7));
        q.close();
        assert_eq!(q.try_pop(), None, "closed + drained -> None");
    }

    #[test]
    fn zero_capacity_always_sheds() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Err(PushError::Full));
        assert_eq!(q.peak_depth(), 0);
    }
}
