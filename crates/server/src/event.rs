//! Readiness backends for the event-driven serve loops.
//!
//! Each loop shard multiplexes its connections (plus a wake-up channel)
//! on one thread, so ten thousand mostly idle device streams cost ten
//! thousand registered fds — not ten thousand parked threads with 8 MiB
//! stacks. The container toolchain has no `libc` crate (same situation
//! as `trips-wal`'s mmap path), so every syscall wrapper is declared
//! directly; the constants are the values shared by Linux and the BSDs
//! (epoll is Linux-only and gated as such).
//!
//! Two backends behind one [`Poller`] enum so `server.rs` stays
//! backend-agnostic:
//!
//! * **epoll** (Linux, the default): edge-triggered. Every fd is
//!   registered once with `EPOLLIN | EPOLLOUT | EPOLLET`; readiness
//!   edges are cached by the caller (`can_read`/`can_write` on each
//!   connection) and re-armed by the kernel only on state transitions,
//!   so a wakeup costs O(ready fds), not O(registered fds).
//! * **poll(2)** (portable fallback): level-triggered, the poll set is
//!   rebuilt from the registry on every wait. O(fds) per wakeup but
//!   runs anywhere with `poll.h` semantics; on non-unix targets it
//!   degrades further to a bounded sleep that reports everything ready.
//!
//! The [`Waker`] pairs with the backend: an `eventfd(2)` under epoll
//! (one fd, a u64 counter, edge-friendly), a loopback UDP socket pair
//! under poll (no `pipe(2)` FFI needed, sends never block).

use std::io;
use std::net::UdpSocket;

/// Interest/readiness bits (POSIX `poll.h` values).
pub const POLLIN: i16 = 0x1;
pub const POLLOUT: i16 = 0x4;
pub const POLLERR: i16 = 0x8;
pub const POLLHUP: i16 = 0x10;

/// One registered fd: `fd` + interest `events` in, readiness `revents` out.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any readiness (or error/hangup — both mean "go look at the
    /// socket") was reported.
    pub fn is_ready(&self) -> bool {
        self.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until at least one fd is ready, the timeout elapses, or a
    /// signal interrupts (retried). Returns the number of ready fds.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            for fd in fds.iter_mut() {
                fd.revents = 0;
            }
            // Safety: `fds` is a valid, exclusively-borrowed slice of
            // `#[repr(C)]` pollfd-layout structs for the duration of the
            // call; the kernel writes only `revents`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;

    /// Degraded fallback without `poll(2)`: sleep briefly, then report
    /// every fd ready at its interest bits. All sockets are nonblocking,
    /// so spurious readiness costs one `WouldBlock` syscall each — a busy
    /// loop bounded by the sleep, trading efficiency for portability.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let ms = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
        std::thread::sleep(std::time::Duration::from_millis(ms as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
        Ok(fds.len())
    }
}

pub use sys::poll_fds;

/// Raw fd accessor, unix only (the poll set is built from these).
#[cfg(unix)]
pub fn fd_of<T: std::os::fd::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

/// On non-unix targets the fallback `poll_fds` ignores fds entirely.
#[cfg(not(unix))]
pub fn fd_of<T>(_sock: &T) -> i32 {
    -1
}

/// Upper bound on iovecs per [`writev_fd`] call — comfortably under every
/// platform's `IOV_MAX` (1024 on Linux) while keeping the on-stack iovec
/// array small. Callers with more segments just call again.
pub const WRITEV_BATCH_MAX: usize = 64;

#[cfg(unix)]
mod writev_sys {
    use std::io;
    use std::os::raw::{c_int, c_void};

    /// Kernel `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *const c_void,
        len: usize,
    }

    extern "C" {
        fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }

    /// Gather-writes up to [`WRITEV_BATCH_MAX`](super::WRITEV_BATCH_MAX)
    /// buffers in one syscall, with EINTR retry. Returns total bytes
    /// written (a short count spanning segment boundaries is normal);
    /// `WouldBlock` surfaces as the usual `io::ErrorKind`.
    pub fn writev_fd(fd: i32, bufs: &[&[u8]]) -> io::Result<usize> {
        let mut iov = [IoVec {
            base: std::ptr::null(),
            len: 0,
        }; super::WRITEV_BATCH_MAX];
        let n = bufs.len().min(super::WRITEV_BATCH_MAX);
        for (slot, buf) in iov.iter_mut().zip(&bufs[..n]) {
            slot.base = buf.as_ptr().cast();
            slot.len = buf.len();
        }
        loop {
            // Safety: the first `n` iovecs point into slices that outlive
            // the call; the kernel only reads them.
            let rc = unsafe { writev(fd, iov.as_ptr(), n as c_int) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

#[cfg(unix)]
pub use writev_sys::writev_fd;

/// Without unix fds there is nothing to gather-write into; the serve loop
/// only selects the writev flush path on unix backends.
#[cfg(not(unix))]
pub fn writev_fd(_fd: i32, _bufs: &[&[u8]]) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "writev requires unix",
    ))
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const TFD_CLOEXEC: c_int = 0o2000000;
    const TFD_NONBLOCK: c_int = 0o4000;
    const CLOCK_MONOTONIC: c_int = 1;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI there
    /// has no padding between `events` and `data`); natural layout on
    /// other architectures.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn timerfd_create(clockid: c_int, flags: c_int) -> c_int;
        fn timerfd_settime(
            fd: c_int,
            flags: c_int,
            new_value: *const Itimerspec,
            old_value: *mut Itimerspec,
        ) -> c_int;
    }

    /// Kernel `struct timespec` (64-bit time_t targets).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Timespec {
        tv_sec: std::os::raw::c_long,
        tv_nsec: std::os::raw::c_long,
    }

    /// Kernel `struct itimerspec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Itimerspec {
        it_interval: Timespec,
        it_value: Timespec,
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct EpollFd(c_int);

    impl EpollFd {
        pub fn new() -> io::Result<Self> {
            // Safety: plain syscall, no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollFd(fd))
        }

        pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // Safety: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.0, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn del(&self, fd: i32) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event even for DEL;
            // passing one is harmless everywhere.
            let mut ev = EpollEvent { events: 0, data: 0 };
            // Safety: as in `add`.
            let rc = unsafe { epoll_ctl(self.0, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits for readiness edges, with EINTR retry. Returns how many
        /// entries of `out` were filled.
        pub fn wait(&self, out: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // Safety: `out` is a valid exclusively-borrowed buffer of
                // kernel-layout events for the duration of the call.
                let rc =
                    unsafe { epoll_wait(self.0, out.as_mut_ptr(), out.len() as c_int, timeout_ms) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
        }
    }

    impl Drop for EpollFd {
        fn drop(&mut self) {
            // Safety: fd is owned and closed exactly once.
            unsafe { close(self.0) };
        }
    }

    /// An owned nonblocking `eventfd(2)` — the wake-up channel under epoll.
    /// Writes add to a kernel u64 counter (an edge for EPOLLET); one read
    /// returns and clears it, so any number of wakes coalesce.
    #[derive(Debug)]
    pub struct EventFd(c_int);

    impl EventFd {
        pub fn new() -> io::Result<Self> {
            // Safety: plain syscall, no pointers.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd(fd))
        }

        pub fn fd(&self) -> i32 {
            self.0
        }

        /// Adds 1 to the counter. Never blocks: EAGAIN means the counter
        /// is saturated, i.e. more than enough wakes are already pending.
        pub fn signal(&self) {
            let one: u64 = 1;
            // Safety: 8 valid bytes at a valid pointer.
            unsafe { write(self.0, (&one as *const u64).cast(), 8) };
        }

        /// Reads and clears the counter (EAGAIN when already clear).
        pub fn clear(&self) {
            let mut buf: u64 = 0;
            // Safety: 8 writable bytes at a valid pointer.
            unsafe { read(self.0, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // Safety: fd is owned and closed exactly once.
            unsafe { close(self.0) };
        }
    }

    /// An owned nonblocking `timerfd(2)` armed with a repeating interval —
    /// the idle-reap tick under epoll. Expirations accumulate in a kernel
    /// u64 counter (an edge for EPOLLET); one [`TimerFd::drain`] clears
    /// however many fired.
    #[derive(Debug)]
    pub struct TimerFd(c_int);

    impl TimerFd {
        /// Creates a monotonic timer firing every `period` (floored to
        /// 1 ms — a zero `it_value` would disarm it entirely).
        pub fn new_interval(period: std::time::Duration) -> io::Result<Self> {
            // Safety: plain syscall, no pointers.
            let fd = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let timer = TimerFd(fd);
            let period = period.max(std::time::Duration::from_millis(1));
            let spec = Timespec {
                tv_sec: period.as_secs() as std::os::raw::c_long,
                tv_nsec: period.subsec_nanos() as std::os::raw::c_long,
            };
            let its = Itimerspec {
                it_interval: spec,
                it_value: spec,
            };
            // Safety: `its` outlives the call; the kernel copies it.
            let rc = unsafe { timerfd_settime(timer.0, 0, &its, std::ptr::null_mut()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(timer)
        }

        pub fn fd(&self) -> i32 {
            self.0
        }

        /// Reads and clears the expiration counter (EAGAIN when clear).
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // Safety: 8 writable bytes at a valid pointer.
            unsafe { read(self.0, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for TimerFd {
        fn drop(&mut self) {
            // Safety: fd is owned and closed exactly once.
            unsafe { close(self.0) };
        }
    }
}

/// Re-export for the serve loop's timerfd-driven idle reaping (linux only;
/// the poll backend reaps on its bounded wait laps instead).
#[cfg(target_os = "linux")]
pub use epoll_sys::TimerFd;

/// Which readiness backend to run. `Auto` resolves to epoll on Linux and
/// poll(2) everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    #[default]
    Auto,
    Epoll,
    Poll,
}

impl BackendChoice {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(BackendChoice::Auto),
            "epoll" => Some(BackendChoice::Epoll),
            "poll" => Some(BackendChoice::Poll),
            _ => None,
        }
    }

    /// The concrete backend this choice resolves to on the current target.
    pub fn resolved(self) -> BackendChoice {
        match self {
            BackendChoice::Auto => {
                if cfg!(target_os = "linux") {
                    BackendChoice::Epoll
                } else {
                    BackendChoice::Poll
                }
            }
            other => other,
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Epoll => "epoll",
            BackendChoice::Poll => "poll",
        })
    }
}

/// One readiness edge reported by [`Poller::wait`]. `token` is whatever
/// the caller registered the fd under. Error/hangup conditions are folded
/// into both directions — "go do I/O and discover the truth".
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// Registry for the poll(2) backend: token → (fd, interest). The poll set
/// is rebuilt from this on every [`Poller::wait`].
#[derive(Debug, Default)]
pub struct PollRegistry {
    slots: std::collections::BTreeMap<u64, (i32, i16)>,
}

/// A readiness backend instance owned by one loop shard.
#[derive(Debug)]
pub enum Poller {
    Poll(PollRegistry),
    #[cfg(target_os = "linux")]
    Epoll(epoll_sys::EpollFd),
}

impl Poller {
    /// Opens a backend. `Epoll` on a non-Linux target is `Unsupported`.
    pub fn new(choice: BackendChoice) -> io::Result<Poller> {
        match choice.resolved() {
            BackendChoice::Poll => Ok(Poller::Poll(PollRegistry::default())),
            #[cfg(target_os = "linux")]
            BackendChoice::Epoll => Ok(Poller::Epoll(epoll_sys::EpollFd::new()?)),
            #[cfg(not(target_os = "linux"))]
            BackendChoice::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires linux",
            )),
            BackendChoice::Auto => unreachable!("resolved() never returns Auto"),
        }
    }

    pub fn backend_name(&self) -> &'static str {
        match self {
            Poller::Poll(_) => "poll",
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
        }
    }

    /// Whether readiness is edge-triggered (readiness must be cached by
    /// the caller and cleared only on `WouldBlock`).
    pub fn edge_triggered(&self) -> bool {
        match self {
            Poller::Poll(_) => false,
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => true,
        }
    }

    /// Registers an fd under `token`. Under epoll the requested directions
    /// are armed once, edge-triggered, and never change (a waker arms
    /// read-only — re-arming its write side on every drain would wake the
    /// loop forever); under poll `readable`/`writable` seed the
    /// level-triggered interest, updated later via [`Poller::set_interest`].
    pub fn register(
        &mut self,
        fd: i32,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match self {
            Poller::Poll(reg) => {
                let mut events = 0i16;
                if readable {
                    events |= POLLIN;
                }
                if writable {
                    events |= POLLOUT;
                }
                reg.slots.insert(token, (fd, events));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                use epoll_sys::*;
                let mut bits = EPOLLRDHUP | EPOLLET;
                if readable {
                    bits |= EPOLLIN;
                }
                if writable {
                    bits |= EPOLLOUT;
                }
                ep.add(fd, bits, token)
            }
        }
    }

    /// Updates level-triggered interest (poll backend only; a no-op under
    /// edge-triggered epoll, where interest never changes after `register`).
    pub fn set_interest(&mut self, token: u64, readable: bool, writable: bool) {
        if let Poller::Poll(reg) = self {
            if let Some((_, events)) = reg.slots.get_mut(&token) {
                let mut e = 0i16;
                if readable {
                    e |= POLLIN;
                }
                if writable {
                    e |= POLLOUT;
                }
                *events = e;
            }
        }
    }

    /// Removes an fd from the backend. Must be called before the fd is
    /// closed (epoll auto-deregisters on close, poll would error on a
    /// stale fd — doing it explicitly keeps both paths identical).
    pub fn deregister(&mut self, fd: i32, token: u64) {
        match self {
            Poller::Poll(reg) => {
                reg.slots.remove(&token);
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                let _ = ep.del(fd);
                let _ = token;
            }
        }
    }

    /// Waits up to `timeout_ms` (0 = just poll, negative = forever) and
    /// appends readiness events to `out` (cleared first).
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        match self {
            Poller::Poll(reg) => {
                let mut fds = Vec::with_capacity(reg.slots.len());
                let mut tokens = Vec::with_capacity(reg.slots.len());
                for (&token, &(fd, events)) in &reg.slots {
                    if events != 0 {
                        fds.push(PollFd::new(fd, events));
                        tokens.push(token);
                    }
                }
                if fds.is_empty() {
                    // Nothing armed: still honor the timeout so the loop
                    // can't spin.
                    if timeout_ms != 0 {
                        let ms = if timeout_ms < 0 { 10 } else { timeout_ms };
                        std::thread::sleep(std::time::Duration::from_millis(ms as u64));
                    }
                    return Ok(());
                }
                poll_fds(&mut fds, timeout_ms)?;
                for (fd, token) in fds.iter().zip(tokens) {
                    let err = fd.revents & (POLLERR | POLLHUP) != 0;
                    let readable = fd.revents & POLLIN != 0 || err;
                    let writable = fd.revents & POLLOUT != 0 || err;
                    if readable || writable {
                        out.push(Event {
                            token,
                            readable,
                            writable,
                        });
                    }
                }
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                use epoll_sys::*;
                let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
                let n = ep.wait(&mut buf, timeout_ms)?;
                for ev in buf.iter().take(n) {
                    // Copy out of the (possibly packed) struct before use.
                    let bits = ev.events;
                    let token = ev.data;
                    let err = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                    out.push(Event {
                        token,
                        readable: bits & EPOLLIN != 0 || err,
                        writable: bits & EPOLLOUT != 0 || err,
                    });
                }
                Ok(())
            }
        }
    }
}

/// Wakes a sleeping [`Poller::wait`] from another thread.
///
/// The backend decides the mechanism: an `eventfd(2)` under epoll (one
/// fd, kernel-counter coalescing, a clean edge source for EPOLLET), a
/// loopback UDP socket pair under poll(2) (portable, sends never block,
/// a receive buffer's worth of wakes coalesce). Register [`Waker::fd`]
/// for read interest; [`Waker::wake`] fires it; [`Waker::drain`] clears
/// every pending wake.
pub enum Waker {
    Udp {
        rx: UdpSocket,
        tx: UdpSocket,
    },
    #[cfg(target_os = "linux")]
    EventFd(epoll_sys::EventFd),
}

impl Waker {
    /// The portable UDP-loopback waker.
    pub fn new() -> io::Result<Self> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        tx.set_nonblocking(true)?;
        Ok(Waker::Udp { rx, tx })
    }

    /// A waker matched to `poller`'s backend: eventfd under epoll, UDP
    /// loopback under poll.
    pub fn for_poller(poller: &Poller) -> io::Result<Self> {
        match poller {
            Poller::Poll(_) => Waker::new(),
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => Ok(Waker::EventFd(epoll_sys::EventFd::new()?)),
        }
    }

    /// The fd to register for read interest in the poll/epoll set.
    pub fn fd(&self) -> i32 {
        match self {
            Waker::Udp { rx, .. } => fd_of(rx),
            #[cfg(target_os = "linux")]
            Waker::EventFd(efd) => efd.fd(),
        }
    }

    /// The receive side of the UDP waker, for direct `PollFd` registration
    /// (legacy path; eventfd wakers expose only [`Waker::fd`]).
    pub fn receiver(&self) -> Option<&UdpSocket> {
        match self {
            Waker::Udp { rx, .. } => Some(rx),
            #[cfg(target_os = "linux")]
            Waker::EventFd(_) => None,
        }
    }

    /// Signals the event loop. Never blocks; saturation means enough
    /// wakes are already pending and the signal is dropped.
    pub fn wake(&self) {
        match self {
            Waker::Udp { tx, .. } => {
                let _ = tx.send(&[1]);
            }
            #[cfg(target_os = "linux")]
            Waker::EventFd(efd) => efd.signal(),
        }
    }

    /// Swallows every pending wake.
    pub fn drain(&self) {
        match self {
            Waker::Udp { rx, .. } => {
                let mut buf = [0u8; 64];
                while rx.recv(&mut buf).is_ok() {}
            }
            #[cfg(target_os = "linux")]
            Waker::EventFd(efd) => efd.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn udp_receiver(waker: &Waker) -> &UdpSocket {
        waker.receiver().expect("Waker::new() is the UDP variant")
    }

    #[test]
    fn waker_makes_poll_ready_and_drain_resets() {
        let waker = Waker::new().unwrap();
        let mut fds = [PollFd::new(fd_of(udp_receiver(&waker)), POLLIN)];

        // Nothing pending: poll times out quickly.
        let start = Instant::now();
        poll_fds(&mut fds, 30).unwrap();
        if cfg!(unix) {
            assert!(!fds[0].is_ready() || start.elapsed() < Duration::from_millis(30));
        }

        waker.wake();
        waker.wake(); // coalesces
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(fds[0].is_ready());

        waker.drain();
        // Drained: a fresh poll with a short timeout reports nothing (on
        // unix; the portable fallback always reports ready).
        #[cfg(unix)]
        {
            poll_fds(&mut fds, 10).unwrap();
            assert!(!fds[0].is_ready(), "drain cleared all pending wakes");
        }
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_sleeping_poll() {
        let waker = Waker::new().unwrap();
        let mut fds = [PollFd::new(fd_of(udp_receiver(&waker)), POLLIN)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let start = Instant::now();
            poll_fds(&mut fds, 5_000).unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(4),
                "poll returned well before its timeout"
            );
        });
    }

    #[test]
    fn backend_choice_parses_and_resolves() {
        assert_eq!(BackendChoice::parse("auto"), Some(BackendChoice::Auto));
        assert_eq!(BackendChoice::parse("epoll"), Some(BackendChoice::Epoll));
        assert_eq!(BackendChoice::parse("poll"), Some(BackendChoice::Poll));
        assert_eq!(BackendChoice::parse("kqueue"), None);
        let resolved = BackendChoice::Auto.resolved();
        assert_ne!(resolved, BackendChoice::Auto);
        if cfg!(target_os = "linux") {
            assert_eq!(resolved, BackendChoice::Epoll);
        } else {
            assert_eq!(resolved, BackendChoice::Poll);
        }
        assert_eq!(BackendChoice::Poll.to_string(), "poll");
    }

    /// One test body exercised against both backends: the waker's fd is
    /// registered under a token, wake → wait reports that token readable,
    /// drain → a zero-timeout wait reports nothing.
    fn waker_roundtrip(mut poller: Poller) {
        let waker = Waker::for_poller(&poller).unwrap();
        const TOKEN: u64 = 7;
        poller.register(waker.fd(), TOKEN, true, false).unwrap();

        let mut events = Vec::new();
        waker.wake();
        waker.wake(); // coalesces
        poller.wait(1000, &mut events).unwrap();
        assert!(
            events.iter().any(|e| e.token == TOKEN && e.readable),
            "{}: wake surfaced as a readable event",
            poller.backend_name()
        );

        waker.drain();
        #[cfg(unix)]
        {
            poller.wait(0, &mut events).unwrap();
            assert!(
                events.iter().all(|e| e.token != TOKEN),
                "{}: drain cleared pending wakes",
                poller.backend_name()
            );
        }

        poller.deregister(waker.fd(), TOKEN);
        poller.wait(0, &mut events).unwrap();
        waker.wake();
        poller.wait(0, &mut events).unwrap();
        assert!(
            events.is_empty(),
            "{}: deregistered fd reports nothing",
            poller.backend_name()
        );
    }

    #[test]
    fn poll_backend_waker_roundtrip() {
        let poller = Poller::new(BackendChoice::Poll).unwrap();
        assert_eq!(poller.backend_name(), "poll");
        assert!(!poller.edge_triggered());
        waker_roundtrip(poller);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn epoll_backend_waker_roundtrip() {
        let poller = Poller::new(BackendChoice::Epoll).unwrap();
        assert_eq!(poller.backend_name(), "epoll");
        assert!(poller.edge_triggered());
        waker_roundtrip(poller);
    }

    #[test]
    #[cfg(unix)]
    fn writev_fd_gathers_segments_into_one_stream() {
        use std::io::Read as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let bufs: [&[u8]; 3] = [b"ab", b"", b"cdef"];
        let n = writev_fd(fd_of(&tx), &bufs).unwrap();
        assert_eq!(n, 6);
        let mut got = [0u8; 6];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abcdef");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn timerfd_fires_repeatedly_and_drains() {
        let timer = TimerFd::new_interval(Duration::from_millis(5)).unwrap();
        let mut poller = Poller::new(BackendChoice::Epoll).unwrap();
        poller.register(timer.fd(), 3, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(1000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        timer.drain();
        // A fresh interval elapses: the drained timer fires again.
        poller.wait(1000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn eventfd_counts_edges_once_per_clear() {
        let waker = Waker::for_poller(&Poller::new(BackendChoice::Epoll).unwrap()).unwrap();
        assert!(waker.receiver().is_none(), "eventfd waker has no UDP side");
        let mut poller = Poller::new(BackendChoice::Epoll).unwrap();
        poller.register(waker.fd(), 1, true, false).unwrap();
        let mut events = Vec::new();

        // Edge 1: counter 0 -> n.
        waker.wake();
        poller.wait(500, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1));

        // Same edge, already reported: ET reports nothing new.
        poller.wait(0, &mut events).unwrap();
        assert!(events.is_empty(), "edge-triggered: no re-report");

        // Clear, then a new write is a new edge.
        waker.drain();
        waker.wake();
        poller.wait(500, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1));
    }
}
