//! Readiness polling for the event-driven serve loop.
//!
//! The server multiplexes every connection (plus the listener and a
//! wake-up channel) on one thread via `poll(2)`, so ten thousand mostly
//! idle device streams cost ten thousand registered fds — not ten
//! thousand parked threads with 8 MiB stacks. The container toolchain
//! has no `libc` crate (same situation as `trips-wal`'s mmap path), so
//! the one syscall wrapper is declared directly; the constants are the
//! POSIX values shared by Linux and the BSDs.
//!
//! Two pieces:
//!
//! * [`poll_fds`] — a thin `poll(2)` wrapper with EINTR retry; on
//!   non-unix targets it degrades to a bounded sleep that reports
//!   everything ready (nonblocking I/O then discovers the truth —
//!   correct, just less efficient).
//! * [`Waker`] — a loopback UDP socket pair the worker pool uses to
//!   interrupt a sleeping `poll` when a completion is queued. UDP
//!   datagrams to 127.0.0.1 never block the sender, need no `pipe(2)`
//!   FFI, and a receive buffer's worth of coalesced wakes is exactly
//!   the semantics a wake-up channel wants.

use std::io;
use std::net::UdpSocket;

/// Interest/readiness bits (POSIX `poll.h` values).
pub const POLLIN: i16 = 0x1;
pub const POLLOUT: i16 = 0x4;
pub const POLLERR: i16 = 0x8;
pub const POLLHUP: i16 = 0x10;

/// One registered fd: `fd` + interest `events` in, readiness `revents` out.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any readiness (or error/hangup — both mean "go look at the
    /// socket") was reported.
    pub fn is_ready(&self) -> bool {
        self.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until at least one fd is ready, the timeout elapses, or a
    /// signal interrupts (retried). Returns the number of ready fds.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            for fd in fds.iter_mut() {
                fd.revents = 0;
            }
            // Safety: `fds` is a valid, exclusively-borrowed slice of
            // `#[repr(C)]` pollfd-layout structs for the duration of the
            // call; the kernel writes only `revents`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;

    /// Degraded fallback without `poll(2)`: sleep briefly, then report
    /// every fd ready at its interest bits. All sockets are nonblocking,
    /// so spurious readiness costs one `WouldBlock` syscall each — a busy
    /// loop bounded by the sleep, trading efficiency for portability.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let ms = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
        std::thread::sleep(std::time::Duration::from_millis(ms as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
        Ok(fds.len())
    }
}

pub use sys::poll_fds;

/// Raw fd accessor, unix only (the poll set is built from these).
#[cfg(unix)]
pub fn fd_of<T: std::os::fd::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

/// On non-unix targets the fallback `poll_fds` ignores fds entirely.
#[cfg(not(unix))]
pub fn fd_of<T>(_sock: &T) -> i32 {
    -1
}

/// Wakes a sleeping [`poll_fds`] from another thread.
///
/// `rx` is registered `POLLIN` in the poll set; [`Waker::wake`] sends one
/// loopback datagram to it. Multiple wakes before the loop runs coalesce
/// in the socket buffer and are swallowed by one [`Waker::drain`].
pub struct Waker {
    rx: UdpSocket,
    tx: UdpSocket,
}

impl Waker {
    pub fn new() -> io::Result<Self> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        tx.set_nonblocking(true)?;
        Ok(Waker { rx, tx })
    }

    /// The receive side, for fd registration in the poll set.
    pub fn receiver(&self) -> &UdpSocket {
        &self.rx
    }

    /// Signals the event loop. Never blocks; a full socket buffer means
    /// enough wakes are already pending and the send is dropped.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }

    /// Swallows every pending wake datagram.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_makes_poll_ready_and_drain_resets() {
        let waker = Waker::new().unwrap();
        let mut fds = [PollFd::new(fd_of(waker.receiver()), POLLIN)];

        // Nothing pending: poll times out quickly.
        let start = Instant::now();
        poll_fds(&mut fds, 30).unwrap();
        if cfg!(unix) {
            assert!(!fds[0].is_ready() || start.elapsed() < Duration::from_millis(30));
        }

        waker.wake();
        waker.wake(); // coalesces
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(fds[0].is_ready());

        waker.drain();
        // Drained: a fresh poll with a short timeout reports nothing (on
        // unix; the portable fallback always reports ready).
        #[cfg(unix)]
        {
            poll_fds(&mut fds, 10).unwrap();
            assert!(!fds[0].is_ready(), "drain cleared all pending wakes");
        }
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_sleeping_poll() {
        let waker = Waker::new().unwrap();
        let mut fds = [PollFd::new(fd_of(waker.receiver()), POLLIN)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let start = Instant::now();
            poll_fds(&mut fds, 5_000).unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(4),
                "poll returned well before its timeout"
            );
        });
    }
}
