//! The serving loops: acceptor → sharded event loops → bounded admission
//! queue → fixed worker pool → sharded translator locks → semantics store.
//!
//! ## Threading model
//!
//! Everything runs under one `std::thread::scope` (the same scoped-thread
//! idiom as `trips-engine`'s executor), so workers borrow the server's
//! state directly — no leaked `'static` state, and `serve` returns only
//! after every thread has exited:
//!
//! * the **acceptor** (the calling thread) owns the listener, enforces
//!   the connection cap, and deals accepted sockets round-robin to the
//!   loop shards;
//! * **N event-loop shards** (`ServerConfig::loop_shards`, default
//!   `min(cores, 4)`) each own their connections' fds, buffers, and a
//!   wake-up channel, multiplexed by [`crate::event::Poller`] —
//!   edge-triggered epoll on Linux, poll(2) as the portable fallback
//!   ([`crate::event::BackendChoice`]). Connections are nonblocking
//!   sockets with per-connection read/write buffers and cached readiness
//!   (`can_read`/`can_write`, cleared only on `WouldBlock` — the
//!   edge-triggered contract), so ten thousand idle device streams cost
//!   fds and buffers, not parked threads, and a wakeup costs O(ready),
//!   not O(connections). Each shard parses complete messages (NDJSON v1
//!   lines or binary v2 frames, detected per message by the first byte),
//!   answers cheap admin requests inline (`Ping`/`Health`/`Metrics` stay
//!   observable under overload), and submits real work to the queue —
//!   one request in flight per connection, so responses stay ordered;
//! * a **fixed worker pool** pops jobs, executes them against the
//!   sharded `StreamingTranslator` locks + shared `SemanticsStore`,
//!   *encodes the response bytes* (the serialization cost parallelizes),
//!   and hands the bytes back to the owning loop shard through its
//!   completion list + waker.
//!
//! ## Translator sharding
//!
//! The streaming translator is partitioned into a power-of-two array of
//! independently locked instances ([`ServerConfig::translator_shards`]),
//! routed by the same FNV-1a device hash as `trips-store`
//! ([`trips_store::device_hash`]) — a device's translator shard and store
//! shard stay aligned, and since every device lives entirely within one
//! translator instance, sharded output is bit-identical to a single
//! translator. Adjacent queued `Ingest` jobs *whose devices hash to the
//! same shard* are **coalesced**: a worker drains up to
//! `INGEST_COALESCE_MAX` of them and runs all under a single lock
//! acquisition, so batches from unrelated devices translate in parallel
//! while per-device ordering is preserved. Locks are only ever taken one
//! shard at a time (multi-shard work iterates), so there is no lock-order
//! deadlock; the `translator_lock_contention` metric counts blocked
//! acquisitions.
//!
//! ## Overload behavior
//!
//! Admission is a [`BoundedQueue`]: when it is full the request is
//! **shed** with [`ServerError::Overloaded`] — nothing buffers, memory
//! stays bounded (`peak_queue_depth ≤ queue_capacity`, exposed via
//! `Metrics`). Past the connection cap, new sockets get
//! [`ServerError::TooManyConnections`] and are closed immediately.
//!
//! ## Sessions
//!
//! Each connection is a session. `Shared.sessions` refcounts, per device,
//! how many live connections have ingested that device — **globally**,
//! across loop shards, because two connections on different shards can
//! stream the same device. Teardown flushes and `end_session`s only the
//! devices whose count drops to zero, so a disconnecting client never
//! splits a flow another connection is still streaming. For the same
//! reason a wire-level `Flush { device: None }` is scoped to the
//! *requesting* session's devices, not the whole translator.
//!
//! ## Drain
//!
//! `Shutdown` acknowledges, then: stop accepting, refuse new work, finish
//! every admitted request, flush pending response bytes, flush all stream
//! buffers into the store (and the WAL, on a durable server), and return
//! a [`ServerReport`]. Connections that cannot drain within
//! `DRAIN_GRACE` are dropped.
//!
//! ## Snapshots
//!
//! On a non-durable server, `Snapshot { path }` is resolved against
//! [`ServerConfig::snapshot_root`]: relative, non-escaping paths only.
//! Absolute paths, `..` components, or a server with no root configured
//! are rejected with `BadRequest` — the wire must not name arbitrary
//! server filesystem locations. Durable servers checkpoint into their
//! WAL directory and ignore `path` entirely.
//!
//! ## Durability
//!
//! With [`ServerConfig::durability`] set, the store journals every
//! effective mutation to a `trips-wal` write-ahead log **before** the
//! mutation is visible — so an `Ingested`/`Flushed` ack means every
//! semantics that became queryable through that request is journaled
//! (and on stable storage, under the configured fsync policy). Raw
//! records still buffered in the streaming translator are *not yet*
//! durable — they become so the moment they publish (gap close, buffer
//! overflow, `Flush`, disconnect, drain), which is also the moment they
//! become queryable; recovery therefore always reproduces exactly the
//! queryable state.

use crate::codec::{self, FrameError, RequestFrameRef, FRAME_MAGIC, HEADER_LEN, MAX_FRAME_PAYLOAD};
use crate::event::{
    fd_of, poll_fds, writev_fd, BackendChoice, Event, PollFd, Poller, Waker, POLLIN,
    WRITEV_BATCH_MAX,
};
use crate::protocol::{
    EndpointMetrics, HealthReport, LoopShardMetrics, MetricsReport, Request, RequestEnvelope,
    Response, ResponseEnvelope, ServerError,
};
use crate::queue::{BoundedQueue, PushError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use trips_annotate::EventEditor;
use trips_core::stream::{StreamConfig, StreamingTranslator};
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_dsm::DigitalSpaceModel;
use trips_obs::{stage, Histogram, Registry, SlowLog, SpanRecord, TraceRing, STAGE_COUNT};
use trips_store::{boot_store, DurabilityConfig, QueryService, RecoveryReport, SemanticsStore};

/// Longest accepted NDJSON request line; a connection exceeding it without
/// a newline is answered with `BadRequest` and closed (memory bound).
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Per-connection read-buffer cap: one maximal v2 frame. Reads pause
/// (readiness is cached, the fill loop stops) until the buffer drains
/// below this, so a pipelining client cannot balloon server memory.
const MAX_READ_BUF: usize = MAX_FRAME_PAYLOAD + HEADER_LEN;

/// Default per-event read budget ([`ServerConfig::read_budget`]).
pub const DEFAULT_READ_BUDGET: usize = 256 * 1024;

/// Most `Ingest` jobs one worker executes under a single translator-lock
/// acquisition (adaptive micro-batching; purely opportunistic — workers
/// never wait for more work). Only jobs routing to the *same* translator
/// shard coalesce.
const INGEST_COALESCE_MAX: usize = 16;

/// How long a drain waits for connections to finish in-flight work and
/// flush response bytes before dropping them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Write-buffer level above which unsolicited alert pushes are dropped
/// (counted in `alerts_dropped`): a subscriber that stops reading must not
/// balloon server memory, and alerts are advisory — the rule's fire
/// counters in `Metrics` remain the ground truth.
const ALERT_BUF_MAX: usize = 4 * 1024 * 1024;

/// How long the acceptor sleeps in `poll` between drain-flag checks.
const ACCEPT_POLL_MS: i32 = 25;

/// Default slow-request promotion threshold
/// ([`ServerConfig::slow_threshold_us`]): a request slower than this end
/// to end is promoted into the slow-log.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 100_000;

/// Default per-loop-shard trace-ring capacity ([`ServerConfig::trace_ring`]).
pub const DEFAULT_TRACE_RING: usize = 256;

/// Default slow-log capacity ([`ServerConfig::slow_log`]).
pub const DEFAULT_SLOW_LOG: usize = 128;

/// Longest HTTP request head the `/metrics` responder reads before
/// answering; scrapers send far less.
const MAX_HTTP_HEAD: usize = 8 * 1024;

// Indices into a span's `stages_us`, parallel to [`trips_obs::STAGES`].
const ST_ACCEPT: usize = 0;
const ST_LOOP_READY: usize = 1;
const ST_QUEUE_WAIT: usize = 2;
const ST_DECODE: usize = 3;
const ST_TRANSLATOR_LOCK: usize = 4;
const ST_STORE_PUBLISH: usize = 5;
const ST_RULE_EVAL: usize = 6;
const ST_REPLY_WRITE: usize = 7;

const _: () = assert!(
    ST_REPLY_WRITE + 1 == STAGE_COUNT,
    "stage indices track STAGES"
);

/// The registration token reserved for each shard's waker fd.
const WAKER_TOKEN: u64 = u64::MAX;

/// The registration token reserved for the idle-reap timerfd (epoll only;
/// the poll backend's bounded wait laps pace the reap sweep instead).
const TIMER_TOKEN: u64 = u64::MAX - 1;

/// Most queued bytes the coalesced-write fallback copies into its scratch
/// buffer per flush attempt (the poll backend's stand-in for `writev`).
const COALESCE_WRITE_MAX: usize = 64 * 1024;

/// Cap on per-connection interned device ids (zero-copy decode path) —
/// bounds memory against a client that invents a new id per record.
const INTERN_MAX: usize = 4096;

/// Approximate byte-cost a queued work job contributes to a shard's
/// observed load: queries and flushes carry few wire bytes but real
/// execution cost, so the acceptor's placement signal weighs them as if
/// they were a 4 KiB read.
const JOB_LOAD_BYTES: u64 = 4096;

/// How often the acceptor refreshes its per-shard load estimate, and how
/// often a shard lap looks for a migratable idle connection.
const REBALANCE_INTERVAL: Duration = Duration::from_millis(500);

/// How often the acceptor decays its observed-load EWMA.
const LOAD_REFRESH: Duration = Duration::from_millis(100);

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool size executing ingest/query/snapshot work.
    pub workers: usize,
    /// Bounded admission-queue capacity; requests beyond it are shed with
    /// [`ServerError::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent-connection cap; sockets beyond it get
    /// [`ServerError::TooManyConnections`] and are closed.
    pub max_connections: usize,
    /// Store shard count (`0` = [`trips_store::default_shard_count`]).
    /// Ignored when booting from a snapshot (the snapshot records its own).
    pub shards: usize,
    /// Event-loop shard count (`0` = `min(cores, 4)`). Each shard is one
    /// thread owning its connections' fds and buffers; the acceptor deals
    /// new connections round-robin.
    pub loop_shards: usize,
    /// Translator-lock shard count, rounded up to a power of two
    /// (`0` = `clamp(2·cores, 4, 32)` rounded likewise). Devices are
    /// routed by [`trips_store::device_hash`], so this aligns with the
    /// store's own sharding.
    pub translator_shards: usize,
    /// Bytes read per readiness event before a connection yields back to
    /// its loop shard, so one firehose connection cannot starve the rest
    /// (`0` = [`DEFAULT_READ_BUDGET`]).
    pub read_budget: usize,
    /// Readiness backend: edge-triggered epoll (Linux), level-triggered
    /// poll(2) (portable), or `Auto` (epoll where available).
    pub backend: BackendChoice,
    /// Streaming-translator settings (flush gap, buffer cap, translator).
    pub stream: StreamConfig,
    /// Boot the store from this `trips-store` snapshot instead of empty.
    /// One-shot and **non-durable**: mutations after boot are not
    /// journaled. Mutually exclusive with `durability`.
    pub snapshot: Option<std::path::PathBuf>,
    /// Directory wire-level `Snapshot { path }` requests resolve against
    /// on a non-durable server. `None` (the default) rejects every such
    /// request with `BadRequest` — clients must not write arbitrary
    /// server paths. Ignored on a durable server (checkpoints go to the
    /// durability directory).
    pub snapshot_root: Option<std::path::PathBuf>,
    /// Run the store durably: boot by recovery (checkpoint snapshot +
    /// WAL replay) from this directory and journal every effective store
    /// mutation before acking. `Snapshot` requests become
    /// checkpoint+compact. Mutually exclusive with `snapshot`.
    pub durability: Option<DurabilityConfig>,
    /// Event-loop wait timeout — the latency of noticing a drain when no
    /// fd is active (completions interrupt the wait via a waker).
    pub poll_interval: Duration,
    /// Cap on concurrently registered standing rules
    /// (`0` = [`trips_store::DEFAULT_RULE_LIMIT`]). Registrations beyond
    /// it are refused with `BadRequest`.
    pub max_rules: usize,
    /// Bind a standalone HTTP/1.0 `GET /metrics` responder (Prometheus
    /// text exposition) on this address; `None` (the default) serves the
    /// exposition only over the native protocol (`MetricsProm`).
    pub metrics_addr: Option<String>,
    /// Master observability switch ([`trips_obs::set_enabled`], set at
    /// `serve` start). Off, instrumented paths skip their clock reads and
    /// span capture; metric handles keep working and render zeros.
    pub obs: bool,
    /// End-to-end latency (µs) at or above which a request's span tree is
    /// promoted into the slow-log. `0` promotes every request (the
    /// trace-one-request switch).
    pub slow_threshold_us: u64,
    /// Per-loop-shard trace-ring capacity (`0` = [`DEFAULT_TRACE_RING`]).
    pub trace_ring: usize,
    /// Slow-log capacity (`0` = [`DEFAULT_SLOW_LOG`]).
    pub slow_log: usize,
    /// Close connections idle (no reads, no in-flight work, nothing
    /// buffered to write) longer than this. `None` (the default) never
    /// reaps — device streams are expected to sit quiet between fixes.
    /// Reaped connections count in `connections_reaped` and tear down
    /// exactly like a client disconnect (sessions settle, rules die).
    pub idle_timeout: Option<Duration>,
    /// Let loop shards migrate idle connections toward the least-loaded
    /// shard between laps (off by default — placement alone fixes most
    /// skew; migration helps when long-lived firehose connections change
    /// character mid-life).
    pub rebalance: bool,
    /// Flush per-connection response queues with one gather-write
    /// (`writev(2)`) under the epoll backend (default). Off — or under
    /// the poll backend — segments are coalesced into a bounded scratch
    /// buffer and written with plain `write`.
    pub writev_batch: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            // A loop shard costs ~one fd + two buffers per connection, so
            // the default cap is deployment-sized, not thread-sized (the
            // CI scaling gate holds 2000 under epoll).
            max_connections: 4096,
            shards: 0,
            loop_shards: 0,
            translator_shards: 0,
            read_budget: DEFAULT_READ_BUDGET,
            backend: BackendChoice::Auto,
            stream: StreamConfig::default(),
            snapshot: None,
            snapshot_root: None,
            durability: None,
            poll_interval: Duration::from_millis(10),
            max_rules: 0,
            metrics_addr: None,
            obs: true,
            slow_threshold_us: DEFAULT_SLOW_THRESHOLD_US,
            trace_ring: 0,
            slow_log: 0,
            idle_timeout: None,
            rebalance: false,
            writev_batch: true,
        }
    }
}

/// `min(cores, 4)` — one loop shard saturates well past a thousand mostly
/// idle connections, so shards track cores only up to a small cap.
fn default_loop_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// `clamp(2·cores, 4, 32)`, next power of two — enough shards that random
/// device traffic rarely collides, few enough that per-shard buffers stay
/// warm.
fn default_translator_shards() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores * 2).clamp(4, 32).next_power_of_two()
}

/// Counters summarizing one `serve` run, returned when the loop drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    pub connections_accepted: u64,
    pub connections_rejected: u64,
    pub requests: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    pub bad_requests: u64,
    /// Admission-queue high-water mark (≤ configured capacity).
    pub peak_queue_depth: usize,
    /// Store occupancy at drain time.
    pub devices: usize,
    pub semantics: usize,
}

/// Which framing a message arrived in — responses go back the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    V1,
    V2,
}

fn encode_wire(wire: Wire, env: &ResponseEnvelope) -> Vec<u8> {
    match wire {
        Wire::V1 => {
            let mut line = crate::protocol::encode_response(env).into_bytes();
            line.push(b'\n');
            line
        }
        Wire::V2 => codec::encode_response_frame(env),
    }
}

/// How a loop shard flushes a connection's queued response segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteBatching {
    /// One `writev(2)` per flush: every queued frame (replies + pushed
    /// alerts) leaves in a single syscall, no copying (epoll backend).
    Writev,
    /// Coalesce small segments into a bounded scratch buffer and `write`
    /// once (poll backend / `--no-writev-batch`).
    Coalesce,
}

/// One queued response segment: bytes this connection owns, or alert
/// bytes encoded once and shared (refcounted) across subscribers.
enum Chunk {
    Owned(Vec<u8>),
    Shared(Arc<[u8]>),
}

impl Chunk {
    fn as_slice(&self) -> &[u8] {
        match self {
            Chunk::Owned(v) => v,
            Chunk::Shared(b) => b,
        }
    }
}

/// A connection's pending output as a segmented queue of encoded frames.
/// Keeping frames as segments (instead of copying each into one flat
/// buffer) lets the flush path hand N frames to one `writev(2)` and lets
/// alert fan-out enqueue shared bytes without copying them per subscriber.
/// `head` tracks the partially-written prefix of the front segment.
#[derive(Default)]
struct WriteQueue {
    segs: VecDeque<Chunk>,
    head: usize,
    len: usize,
}

impl WriteQueue {
    /// Total unwritten bytes across all segments.
    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, chunk: Chunk) {
        let n = chunk.as_slice().len();
        if n == 0 {
            return;
        }
        self.len += n;
        self.segs.push_back(chunk);
    }

    /// Fills `bufs` with up to [`WRITEV_BATCH_MAX`] readable slices (the
    /// front segment minus its already-written prefix) and returns how
    /// many were filled.
    fn gather<'q>(&'q self, bufs: &mut [&'q [u8]; WRITEV_BATCH_MAX]) -> usize {
        let mut n = 0;
        for seg in self.segs.iter().take(WRITEV_BATCH_MAX) {
            let s = seg.as_slice();
            bufs[n] = if n == 0 { &s[self.head..] } else { s };
            n += 1;
        }
        n
    }

    /// Copies up to [`COALESCE_WRITE_MAX`] queued bytes into `scratch`
    /// (cleared first) — the write fallback when gather-write is off.
    fn coalesce_into(&self, scratch: &mut Vec<u8>) {
        scratch.clear();
        let mut head = self.head;
        for seg in &self.segs {
            let s = &seg.as_slice()[head..];
            head = 0;
            let room = COALESCE_WRITE_MAX - scratch.len();
            if room == 0 {
                break;
            }
            scratch.extend_from_slice(&s[..s.len().min(room)]);
        }
    }

    /// Marks `n` bytes written (`n` ≤ `len`), dropping flushed segments.
    fn consume(&mut self, mut n: usize) {
        self.len -= n;
        while n > 0 {
            let Some(front) = self.segs.front() else {
                unreachable!("consume within len");
            };
            let left = front.as_slice().len() - self.head;
            if n >= left {
                n -= left;
                self.segs.pop_front();
                self.head = 0;
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

/// One queued unit of work, tagged with the connection it came from.
struct WorkJob {
    /// Connection token (the completion is dropped if the connection is
    /// gone by then).
    token: u64,
    /// Loop shard owning the connection — completions route back to it.
    shard: usize,
    id: u64,
    wire: Wire,
    req: Request,
    /// For `Ingest`: `Some(s)` when every record's device hashes to
    /// translator shard `s` (the coalescable fast path), `None` when the
    /// batch spans shards.
    tshard: Option<usize>,
    /// Well-formed devices of an `Ingest` batch — attributed to the
    /// session only if the ingest executes.
    batch_devices: Vec<DeviceId>,
    /// Snapshot of the session's devices at submit time, the scope of a
    /// `Flush { device: None }`.
    session_devices: Vec<DeviceId>,
    /// Span capture started on the loop shard (`None` when observability
    /// is off); completed by the worker, finished at reply write.
    span: Option<SpanStart>,
}

/// The loop-shard half of a request span: timestamps taken before the job
/// enters the queue.
struct SpanStart {
    /// Server-wide request ordinal (the span's id).
    seq: u64,
    /// Parse completion — the span's epoch; total latency is measured
    /// from here.
    t0: Instant,
    /// Queue submit time (`queue_wait` = worker pop − this).
    submitted: Instant,
    /// Acceptor hand-off → loop-shard adoption, µs (a connection's first
    /// request only — the cost is paid once).
    accept_us: u64,
    /// Readiness wakeup → request parsed, µs.
    loop_ready_us: u64,
}

/// A span the worker finished executing, riding its [`Done`] back to the
/// loop shard, which stamps `reply_write` and the total and publishes it.
struct PendingSpan {
    /// The span's epoch (copied from [`SpanStart::t0`]).
    t0: Instant,
    /// All stages filled except `reply_write`; `total_us`/`unix_ms` still
    /// zero.
    record: SpanRecord,
}

/// A finished job: pre-encoded response bytes headed for one connection.
struct Done {
    token: u64,
    bytes: Chunk,
    /// Devices this job's executed ingest made the session responsible
    /// for (empty for everything else).
    ingested: Vec<DeviceId>,
    /// `true` for pushed alert frames (id 0): no request is in flight for
    /// them, so applying one must not clear the connection's `inflight`
    /// flag, and they may be dropped under write-buffer backpressure.
    unsolicited: bool,
    /// The request's span, if one is being captured.
    span: Option<PendingSpan>,
}

/// Wall-clock milliseconds since the Unix epoch (span correlation only —
/// all stage math uses the monotonic clock).
fn unix_ms_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

/// Per-endpoint-family [`EndpointMetrics`] from a merged histogram
/// snapshot: exact count/mean/max, log-bucket-interpolated percentiles.
/// Replaces the old mutex'd reservoir recorder — recording is now a few
/// relaxed atomics on a per-thread stripe, and the same histograms render
/// on the Prometheus scrape path.
fn endpoint_metrics(endpoint: &str, hist: &Histogram, uptime: Duration) -> EndpointMetrics {
    let snap = hist.snapshot();
    EndpointMetrics {
        endpoint: endpoint.to_string(),
        count: snap.count as usize,
        ops_per_sec: if uptime.is_zero() {
            0.0
        } else {
            snap.count as f64 / uptime.as_secs_f64()
        },
        p50_us: snap.quantile_us(0.50) as f64,
        p99_us: snap.quantile_us(0.99) as f64,
        max_us: snap.max_us as f64,
        mean_us: snap.mean_us() as f64,
    }
}

/// Resident set size in KiB from `/proc/self/statm` (Linux); `None`
/// elsewhere. Good enough for the connection-scaling gate's flat-memory
/// check; assumes 4 KiB pages like every tier-1 target.
fn read_rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(rss_pages * 4)
}

/// Per-loop-shard shared state: the channels through which the acceptor
/// and workers reach one shard's loop thread.
struct ShardState {
    /// Finished jobs waiting for this shard's loop (paired with `waker`).
    completions: parking_lot::Mutex<Vec<Done>>,
    waker: Waker,
    /// Accepted sockets dealt to this shard, not yet registered, with
    /// their hand-off instants (the `accept` span stage).
    incoming: parking_lot::Mutex<Vec<(TcpStream, Instant)>>,
    /// Times `waker` was signaled (completions + handoffs) — a proxy for
    /// how busy the shard's wake channel is.
    wakeups: AtomicU64,
    /// Connections currently owned by the shard (metrics gauge).
    connections: AtomicUsize,
    /// Bytes this shard's connections read off their sockets (monotonic).
    /// With `jobs`, the observed-load signal behind the acceptor's
    /// least-loaded placement and `--rebalance` migration.
    bytes_read: AtomicU64,
    /// Work jobs this shard queued for the worker pool (monotonic).
    jobs: AtomicU64,
    /// Idle connections another shard migrated here (`--rebalance`),
    /// paired with `waker` like `incoming` — the receiving loop
    /// re-registers them under their existing tokens.
    migrations: parking_lot::Mutex<Vec<(u64, Conn)>>,
}

impl ShardState {
    fn wake(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.waker.wake();
    }
}

/// State shared by the acceptor, loop shards and workers for one `serve`
/// run (lives on `serve`'s stack; scoped threads borrow it).
struct Shared<'env> {
    /// Translator shard array (power of two), FNV device-hash routed.
    /// Invariant: locks are taken one shard at a time, never nested.
    translators: Vec<parking_lot::Mutex<StreamingTranslator<'env>>>,
    /// `translators.len() - 1`, the hash mask.
    tmask: usize,
    store: Arc<SemanticsStore>,
    queue: BoundedQueue<WorkJob>,
    /// `Arc` so connection-scoped alert sinks (owned by the `'static`
    /// rule engine inside the store) can outlive-proof their handle to
    /// the shard's completion channel.
    shards: Vec<Arc<ShardState>>,
    /// Globally unique connection tokens across all loop shards.
    next_token: AtomicU64,
    /// Per-device count of live connections that ingested the device —
    /// global across loop shards (two shards can stream one device).
    /// Teardown flushes + `end_session`s only devices dropping to zero.
    sessions: parking_lot::Mutex<BTreeMap<DeviceId, usize>>,
    snapshot_root: Option<PathBuf>,
    backend_name: &'static str,
    read_budget: usize,
    shutdown: AtomicBool,
    active: AtomicUsize,
    started: Instant,
    // Observability: the metric registry behind every scrape, the live
    // per-endpoint latency histograms registered in it, per-loop-shard
    // trace rings, and the slow-log. Recording never takes the registry
    // lock — instruments are Arc'd atomics.
    registry: Registry,
    ingest_hist: Histogram,
    query_hist: Histogram,
    admin_hist: Histogram,
    /// One trace ring per loop shard (indexed by shard id).
    traces: Vec<TraceRing>,
    slowlog: SlowLog,
    /// Spans promoted into the slow-log (the `trips_slow_requests_total`
    /// counter and `MetricsReport::slow_requests`).
    slow_requests: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    ingest_coalesced: AtomicU64,
    translator_contention: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    /// Alert pushes a sink accepted but the loop shard then discarded
    /// (subscriber gone, or its write buffer over [`ALERT_BUF_MAX`]).
    alerts_dropped_late: AtomicU64,
    /// Connections closed for exceeding [`ServerConfig::idle_timeout`].
    conns_reaped: AtomicU64,
    /// Idle connections migrated between loop shards (`--rebalance`).
    conns_rebalanced: AtomicU64,
    /// How loop shards flush their connections' write queues.
    batching: WriteBatching,
    idle_timeout: Option<Duration>,
    rebalance: bool,
}

/// Validates a wire-supplied snapshot path against the configured root:
/// relative, strictly descending paths only.
fn resolve_snapshot_path(root: Option<&Path>, path: &str) -> Result<PathBuf, ServerError> {
    let Some(root) = root else {
        return Err(ServerError::BadRequest {
            message: "snapshot rejected: no snapshot root configured on this server".to_string(),
        });
    };
    let rel = Path::new(path);
    if rel.as_os_str().is_empty() {
        return Err(ServerError::BadRequest {
            message: "snapshot rejected: empty path".to_string(),
        });
    }
    if rel.is_absolute() {
        return Err(ServerError::BadRequest {
            message: format!(
                "snapshot rejected: absolute path {path:?} (must be relative to the snapshot root)"
            ),
        });
    }
    if !rel.components().all(|c| matches!(c, Component::Normal(_))) {
        return Err(ServerError::BadRequest {
            message: format!("snapshot rejected: path {path:?} escapes the snapshot root"),
        });
    }
    Ok(root.join(rel))
}

/// Groups an iterator of per-device items by translator shard, preserving
/// arrival order within each shard (order across shards is immaterial —
/// different shards hold different devices).
fn group_by_tshard<T>(items: impl IntoIterator<Item = (usize, T)>) -> BTreeMap<usize, Vec<T>> {
    let mut groups: BTreeMap<usize, Vec<T>> = BTreeMap::new();
    for (shard, item) in items {
        groups.entry(shard).or_default().push(item);
    }
    groups
}

impl<'env> Shared<'env> {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The translator shard a device routes to (same FNV hash as the
    /// store, masked by the power-of-two shard count).
    fn tshard(&self, device: &DeviceId) -> usize {
        (trips_store::device_hash(device) as usize) & self.tmask
    }

    /// Locks one translator shard, counting contended acquisitions.
    fn lock_translator(
        &self,
        shard: usize,
    ) -> parking_lot::MutexGuard<'_, StreamingTranslator<'env>> {
        match self.translators[shard].try_lock() {
            Some(guard) => guard,
            None => {
                self.translator_contention.fetch_add(1, Ordering::Relaxed);
                if trips_obs::enabled() {
                    let t0 = Instant::now();
                    let guard = self.translators[shard].lock();
                    stage::add_translator_lock_ns(t0.elapsed().as_nanos() as u64);
                    guard
                } else {
                    self.translators[shard].lock()
                }
            }
        }
    }

    fn record(&self, endpoint: &str, latency: Duration) {
        let hist = match endpoint {
            "ingest" => &self.ingest_hist,
            "query" => &self.query_hist,
            _ => &self.admin_hist,
        };
        hist.observe(latency);
    }

    /// Publishes a completed span: offered to the slow-log first (so the
    /// promotion counter is exact), then pushed into its loop shard's
    /// trace ring.
    fn finish_span(&self, shard: usize, record: SpanRecord) {
        if self.slowlog.offer(&record) {
            self.slow_requests.fetch_add(1, Ordering::Relaxed);
        }
        self.traces[shard].push(record);
    }

    /// Records a span for a request answered inline on its loop shard:
    /// the whole execution counts as `decode` (no queue, no worker).
    #[allow(clippy::too_many_arguments)]
    fn admin_span(
        &self,
        shard: usize,
        token: u64,
        seq: u64,
        kind: &'static str,
        t0: Instant,
        accept_us: u64,
        loop_ready_us: u64,
    ) {
        if !trips_obs::enabled() {
            return;
        }
        let total_us = t0.elapsed().as_micros() as u64;
        let mut stages_us = vec![0u64; STAGE_COUNT];
        stages_us[ST_ACCEPT] = accept_us;
        stages_us[ST_LOOP_READY] = loop_ready_us;
        stages_us[ST_DECODE] = total_us;
        self.finish_span(
            shard,
            SpanRecord {
                id: seq,
                conn: token,
                shard,
                endpoint: "admin".to_string(),
                kind: kind.to_string(),
                unix_ms: unix_ms_now(),
                total_us,
                stages_us,
            },
        );
    }

    /// Completes the worker-side stages of a span: queue wait from the
    /// carried timestamps, lock/store/rule attribution from the
    /// thread-local [`stage`] accumulators (read-and-reset — everything
    /// since the previous take belongs to this job), the unattributed
    /// remainder of the execution as `decode`.
    #[allow(clippy::too_many_arguments)]
    fn worker_span(
        &self,
        start: SpanStart,
        popped: Instant,
        exec: Duration,
        endpoint: &'static str,
        kind: &'static str,
        token: u64,
        shard: usize,
    ) -> PendingSpan {
        let nanos = stage::take();
        let lock_us = nanos.translator_lock_ns / 1_000;
        let store_us = (nanos.store_ns + nanos.store_lock_wait_ns) / 1_000;
        let rules_us = nanos.rules_ns / 1_000;
        let exec_us = exec.as_micros() as u64;
        let mut stages_us = vec![0u64; STAGE_COUNT];
        stages_us[ST_ACCEPT] = start.accept_us;
        stages_us[ST_LOOP_READY] = start.loop_ready_us;
        stages_us[ST_QUEUE_WAIT] = popped
            .saturating_duration_since(start.submitted)
            .as_micros() as u64;
        stages_us[ST_TRANSLATOR_LOCK] = lock_us;
        stages_us[ST_STORE_PUBLISH] = store_us;
        stages_us[ST_RULE_EVAL] = rules_us;
        stages_us[ST_DECODE] = exec_us.saturating_sub(lock_us + store_us + rules_us);
        PendingSpan {
            t0: start.t0,
            record: SpanRecord {
                id: start.seq,
                conn: token,
                shard,
                endpoint: endpoint.to_string(),
                kind: kind.to_string(),
                unix_ms: 0,
                total_us: 0,
                stages_us,
            },
        }
    }

    /// Every trace-ring span across all loop shards, oldest first by
    /// request ordinal (the newest `limit` when set).
    fn trace_spans(&self, limit: Option<usize>) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self.traces.iter().flat_map(TraceRing::snapshot).collect();
        spans.sort_by_key(|s| s.id);
        if let Some(limit) = limit {
            if spans.len() > limit {
                spans.drain(..spans.len() - limit);
            }
        }
        spans
    }

    fn slow_log_response(&self, limit: Option<usize>) -> Response {
        let spans = match limit {
            Some(0) => Vec::new(),
            Some(n) => self.slowlog.snapshot(n),
            None => self.slowlog.snapshot(0),
        };
        Response::SlowLog {
            threshold_us: self.slowlog.threshold_us(),
            evicted: self.slowlog.evicted(),
            spans,
        }
    }

    /// Mirrors every scalar counter into the registry and renders the
    /// whole of it in the Prometheus text format. Mirroring at scrape
    /// time (`Counter::set` from the live atomics) keeps the hot paths
    /// free of double bookkeeping; the latency histograms are live
    /// registry instruments and need no mirroring.
    fn prometheus_text(&self) -> String {
        let r = &self.registry;
        let set = |name: &str, help: &str, v: u64| r.counter(name, help, &[]).set(v);
        let gauge = |name: &str, help: &str, v: i64| r.gauge(name, help, &[]).set(v);
        set(
            "trips_connections_accepted_total",
            "Connections accepted",
            self.conns_accepted.load(Ordering::Relaxed),
        );
        set(
            "trips_connections_rejected_total",
            "Connections rejected over the cap",
            self.conns_rejected.load(Ordering::Relaxed),
        );
        gauge(
            "trips_connections_active",
            "Currently open connections",
            self.active.load(Ordering::Relaxed) as i64,
        );
        set(
            "trips_requests_total",
            "Requests received (all endpoints)",
            self.requests.load(Ordering::Relaxed),
        );
        set(
            "trips_requests_shed_total",
            "Requests shed with Overloaded",
            self.shed.load(Ordering::Relaxed),
        );
        set(
            "trips_bad_requests_total",
            "Malformed requests answered BadRequest",
            self.bad_requests.load(Ordering::Relaxed),
        );
        set(
            "trips_ingest_coalesced_total",
            "Extra ingest jobs executed under an already-held translator lock",
            self.ingest_coalesced.load(Ordering::Relaxed),
        );
        gauge(
            "trips_queue_capacity",
            "Admission queue capacity",
            self.queue.capacity() as i64,
        );
        gauge(
            "trips_queue_peak_depth",
            "Admission queue high-water mark",
            self.queue.peak_depth() as i64,
        );
        gauge(
            "trips_translator_shards",
            "Translator lock shards",
            self.translators.len() as i64,
        );
        set(
            "trips_translator_lock_contention_total",
            "Contended translator-shard lock acquisitions",
            self.translator_contention.load(Ordering::Relaxed),
        );
        set(
            "trips_store_shard_lock_contention_total",
            "Contended store shard write-lock acquisitions",
            self.store.shard_lock_contention(),
        );
        gauge(
            "trips_store_devices",
            "Devices resident in the store",
            self.store.device_count() as i64,
        );
        gauge(
            "trips_store_semantics",
            "Location semantics resident in the store",
            self.store.semantics_count() as i64,
        );
        set(
            "trips_rule_evals_total",
            "Standing-rule evaluations",
            self.store.rules().evals_total(),
        );
        set(
            "trips_rule_fires_total",
            "Standing-rule fires",
            self.store.rules().fires_total(),
        );
        set(
            "trips_alerts_delivered_total",
            "Alerts delivered to subscribers",
            self.store.rules().alerts_delivered(),
        );
        set(
            "trips_alerts_dropped_total",
            "Alerts dropped (sink refusal or write backpressure)",
            self.store.rules().alerts_dropped() + self.alerts_dropped_late.load(Ordering::Relaxed),
        );
        set(
            "trips_slow_requests_total",
            "Spans promoted into the slow-log",
            self.slow_requests.load(Ordering::Relaxed),
        );
        set(
            "trips_connections_reaped_total",
            "Connections closed for exceeding the idle timeout",
            self.conns_reaped.load(Ordering::Relaxed),
        );
        set(
            "trips_connections_rebalanced_total",
            "Idle connections migrated between loop shards",
            self.conns_rebalanced.load(Ordering::Relaxed),
        );
        set(
            "trips_slowlog_evicted_total",
            "Promoted spans evicted by the slow-log cap",
            self.slowlog.evicted(),
        );
        gauge(
            "trips_uptime_seconds",
            "Seconds since serve started",
            self.started.elapsed().as_secs() as i64,
        );
        if let Some(rss) = read_rss_kb() {
            gauge("trips_rss_kb", "Resident set size (KiB)", rss as i64);
        }
        if let Some(wal) = self.store.wal_stats() {
            gauge(
                "trips_wal_segments",
                "Live WAL segment files",
                wal.segments as i64,
            );
            gauge(
                "trips_wal_bytes",
                "Bytes across live WAL segments",
                wal.bytes as i64,
            );
            gauge(
                "trips_wal_records_since_checkpoint",
                "WAL records appended since the last checkpoint",
                wal.records_since_checkpoint as i64,
            );
            set(
                "trips_wal_fsyncs_total",
                "WAL fdatasyncs issued",
                wal.fsyncs,
            );
            set(
                "trips_wal_rotations_total",
                "WAL segment rotations",
                wal.rotations,
            );
        }
        for (shard, state) in self.shards.iter().enumerate() {
            let shard_label = shard.to_string();
            let labels: [(&str, &str); 1] = [("shard", shard_label.as_str())];
            r.gauge(
                "trips_loop_shard_connections",
                "Connections owned by each event-loop shard",
                &labels,
            )
            .set(state.connections.load(Ordering::Relaxed) as i64);
            r.counter(
                "trips_loop_shard_wakeups_total",
                "Waker signals per event-loop shard",
                &labels,
            )
            .set(state.wakeups.load(Ordering::Relaxed));
            r.gauge(
                "trips_loop_shard_pending_completions",
                "Finished jobs awaiting adoption per event-loop shard",
                &labels,
            )
            .set(state.completions.lock().len() as i64);
            r.counter(
                "trips_loop_shard_bytes_read_total",
                "Socket bytes read per event-loop shard",
                &labels,
            )
            .set(state.bytes_read.load(Ordering::Relaxed));
            r.counter(
                "trips_loop_shard_jobs_total",
                "Work jobs queued per event-loop shard",
                &labels,
            )
            .set(state.jobs.load(Ordering::Relaxed));
        }
        r.render_prometheus()
    }

    /// Executes one `Ingest` with a translator-shard lock already held
    /// (the coalescing path amortizes one lock over many batches).
    fn ingest_locked(
        translator: &mut StreamingTranslator<'env>,
        records: Vec<trips_data::RawRecord>,
    ) -> Response {
        let mut accepted = 0;
        let mut rejected = 0;
        let mut emitted = 0;
        for record in records {
            if !record.is_well_formed() {
                rejected += 1;
                continue;
            }
            emitted += translator.push(record).len();
            accepted += 1;
        }
        Response::Ingested {
            accepted,
            rejected,
            emitted,
        }
    }

    /// Executes an `Ingest` whose records span translator shards: the
    /// batch is partitioned by device hash and each partition runs under
    /// its own shard's lock (taken one at a time), summing the counters.
    fn ingest_multi(&self, records: Vec<trips_data::RawRecord>) -> Response {
        let groups = group_by_tshard(records.into_iter().map(|r| (self.tshard(&r.device), r)));
        let (mut accepted, mut rejected, mut emitted) = (0, 0, 0);
        for (shard, group) in groups {
            let mut translator = self.lock_translator(shard);
            if let Response::Ingested {
                accepted: a,
                rejected: r,
                emitted: e,
            } = Self::ingest_locked(&mut translator, group)
            {
                accepted += a;
                rejected += r;
                emitted += e;
            }
        }
        Response::Ingested {
            accepted,
            rejected,
            emitted,
        }
    }

    /// Flushes a set of devices, grouped so each translator shard is
    /// locked once; returns `(devices flushed, semantics emitted)`.
    fn flush_devices<'a>(&self, devices: impl IntoIterator<Item = &'a DeviceId>) -> (usize, usize) {
        let groups = group_by_tshard(devices.into_iter().map(|d| (self.tshard(d), d)));
        let (mut flushed, mut emitted) = (0, 0);
        for (shard, group) in groups {
            let mut translator = self.lock_translator(shard);
            for device in group {
                let before = translator.open_devices();
                emitted += translator.flush_device(device).len();
                flushed += before - translator.open_devices();
            }
        }
        (flushed, emitted)
    }

    /// Flushes every translator shard (snapshot/drain path).
    fn finish_all_translators(&self) {
        for translator in &self.translators {
            let _ = translator.lock().finish();
        }
    }

    /// Executes one unit of admitted work (runs on a worker thread).
    /// `session_devices` scopes a flush-all to the requesting session.
    fn execute(&self, req: Request, session_devices: &[DeviceId]) -> Response {
        match req {
            Request::Ingest { records } => self.ingest_multi(records),
            Request::Flush { device } => match device {
                Some(device) => {
                    let device = DeviceId::new(&device);
                    let (devices, emitted) = self.flush_devices([&device]);
                    Response::Flushed { devices, emitted }
                }
                // Flush-all is scoped to the devices *this* session
                // ingested — flushing the whole translator would split
                // other connections' in-flight flows mid-stream.
                None => {
                    let (devices, emitted) = self.flush_devices(session_devices.iter());
                    Response::Flushed { devices, emitted }
                }
            },
            Request::Query { request } => Response::Query {
                result: self.store.query(&request),
            },
            Request::Snapshot { path } => {
                if self.store.is_durable() {
                    // Buffered records must be part of the checkpoint, or
                    // a restart would silently lose in-flight sessions —
                    // a snapshot is a whole-server operation, so this
                    // intentionally flushes *every* session's buffers
                    // across all translator shards (journaling the
                    // published semantics before the WAL rotates).
                    self.finish_all_translators();
                    // Checkpoint + compact: rotate the WAL, publish the
                    // checkpoint snapshot atomically, retire older
                    // segments. The request's `path` does not apply — the
                    // checkpoint lives in the durability directory.
                    match self.store.checkpoint() {
                        Ok(report) => Response::SnapshotSaved {
                            path: report.snapshot_path.display().to_string(),
                            devices: report.devices,
                            semantics: report.semantics,
                        },
                        Err(e) => Response::Error(ServerError::Internal {
                            message: e.to_string(),
                        }),
                    }
                } else {
                    // The wire must not name arbitrary server paths:
                    // resolve against the configured root *before*
                    // touching anything.
                    let full = match resolve_snapshot_path(self.snapshot_root.as_deref(), &path) {
                        Ok(full) => full,
                        Err(err) => return Response::Error(err),
                    };
                    self.finish_all_translators();
                    if let Some(parent) = full.parent() {
                        if let Err(e) = std::fs::create_dir_all(parent) {
                            return Response::Error(ServerError::Internal {
                                message: e.to_string(),
                            });
                        }
                    }
                    match self.store.persist(&full) {
                        Ok(()) => Response::SnapshotSaved {
                            path: full.display().to_string(),
                            devices: self.store.device_count(),
                            semantics: self.store.semantics_count(),
                        },
                        Err(e) => Response::Error(ServerError::Internal {
                            message: e.to_string(),
                        }),
                    }
                }
            }
            // Loop shards answer these inline; keep the mapping total.
            Request::Ping => Response::Pong,
            Request::Health => self.health(),
            Request::Metrics => self.metrics_report(),
            Request::MetricsProm => Response::MetricsProm {
                text: self.prometheus_text(),
            },
            Request::TraceDump { limit } => Response::Traces {
                spans: self.trace_spans(limit),
            },
            Request::SlowLog { limit } => self.slow_log_response(limit),
            Request::Shutdown => Response::ShuttingDown,
            Request::ListRules => Response::Rules {
                rules: self.store.rules().traces(),
            },
            // Subscription state (the alert sink, the session's rule list)
            // lives with the connection on its loop shard — a worker has
            // neither, so these never reach the queue.
            Request::Subscribe { .. } | Request::Unsubscribe { .. } => {
                Response::Error(ServerError::BadRequest {
                    message: "subscription requests are connection-scoped".to_string(),
                })
            }
        }
    }

    fn health(&self) -> Response {
        let (mut open_devices, mut buffered_records) = (0, 0);
        for translator in &self.translators {
            let translator = translator.lock();
            open_devices += translator.open_devices();
            buffered_records += translator.buffered_records();
        }
        Response::Health(HealthReport {
            status: if self.draining() { "draining" } else { "ok" }.to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            store: self.store.store_stats(),
            open_devices,
            buffered_records,
            active_connections: self.active.load(Ordering::Relaxed),
            wal: self.store.wal_stats(),
        })
    }

    fn metrics_report(&self) -> Response {
        let uptime = self.started.elapsed();
        let endpoints = [
            ("ingest", &self.ingest_hist),
            ("query", &self.query_hist),
            ("admin", &self.admin_hist),
        ]
        .into_iter()
        .map(|(name, hist)| endpoint_metrics(name, hist, uptime))
        .collect();
        let loop_shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard, state)| LoopShardMetrics {
                shard,
                connections: state.connections.load(Ordering::Relaxed),
                pending_completions: state.completions.lock().len(),
                wakeups: state.wakeups.load(Ordering::Relaxed),
                bytes_read: state.bytes_read.load(Ordering::Relaxed),
                jobs: state.jobs.load(Ordering::Relaxed),
            })
            .collect();
        Response::Metrics(MetricsReport {
            uptime_ms: uptime.as_millis() as u64,
            connections_accepted: self.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: self.conns_rejected.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            queue_capacity: self.queue.capacity(),
            peak_queue_depth: self.queue.peak_depth(),
            ingest_coalesced: self.ingest_coalesced.load(Ordering::Relaxed),
            rss_kb: read_rss_kb(),
            event_backend: self.backend_name.to_string(),
            loop_shards,
            translator_shards: self.translators.len(),
            translator_lock_contention: self.translator_contention.load(Ordering::Relaxed),
            endpoints,
            wal: self.store.wal_stats(),
            rules: self.store.rules().traces(),
            alerts_delivered: self.store.rules().alerts_delivered(),
            alerts_dropped: self.store.rules().alerts_dropped()
                + self.alerts_dropped_late.load(Ordering::Relaxed),
            slow_requests: self.slow_requests.load(Ordering::Relaxed),
            store_lock_contention: self.store.shard_lock_contention(),
            rule_evals: self.store.rules().evals_total(),
            rule_fires: self.store.rules().fires_total(),
            connections_reaped: self.conns_reaped.load(Ordering::Relaxed),
            connections_rebalanced: self.conns_rebalanced.load(Ordering::Relaxed),
        })
    }

    /// Routes finished jobs back to their loop shards, grouping wakes so
    /// a coalesced batch signals each shard once.
    fn complete_batch(&self, dones: Vec<(usize, Done)>) {
        let groups = group_by_tshard(dones);
        for (shard, group) in groups {
            self.shards[shard].completions.lock().extend(group);
            self.shards[shard].wake();
        }
    }

    /// Worker thread body: pop → (coalesce same-shard ingests) → execute
    /// → encode → complete.
    fn run_worker(&self) {
        // A job drained while probing for coalescable ingests; executed
        // before the next queue pop so FIFO order is preserved.
        let mut carried: Option<WorkJob> = None;
        loop {
            let job = match carried.take() {
                Some(job) => job,
                None => match self.queue.pop() {
                    Some(job) => job,
                    None => break,
                },
            };
            match (&job.req, job.tshard) {
                // Single-shard ingest: the coalescable fast path. Only
                // ingests routing to the *same* translator shard batch
                // under this lock — others are carried, keeping unrelated
                // devices free to translate in parallel on other workers.
                (Request::Ingest { .. }, Some(tshard)) => {
                    let mut batch = vec![job];
                    while batch.len() < INGEST_COALESCE_MAX {
                        match self.queue.try_pop() {
                            Some(next)
                                if matches!(next.req, Request::Ingest { .. })
                                    && next.tshard == Some(tshard) =>
                            {
                                batch.push(next)
                            }
                            Some(other) => {
                                carried = Some(other);
                                break;
                            }
                            None => break,
                        }
                    }
                    if batch.len() > 1 {
                        self.ingest_coalesced
                            .fetch_add((batch.len() - 1) as u64, Ordering::Relaxed);
                    }
                    // Queue wait ends for the whole batch here; the lock
                    // wait that follows lands in the thread-local stage
                    // accumulator and is attributed to the first job.
                    let popped = Instant::now();
                    let mut dones = Vec::with_capacity(batch.len());
                    {
                        let mut translator = self.lock_translator(tshard);
                        for job in batch {
                            let WorkJob {
                                token,
                                shard,
                                id,
                                wire,
                                req,
                                batch_devices,
                                span,
                                ..
                            } = job;
                            let Request::Ingest { records } = req else {
                                unreachable!("batch contains only ingests");
                            };
                            let t0 = Instant::now();
                            let resp = Self::ingest_locked(&mut translator, records);
                            let exec = t0.elapsed();
                            self.record("ingest", exec);
                            let pending = span.map(|s| {
                                self.worker_span(s, popped, exec, "ingest", "Ingest", token, shard)
                            });
                            dones.push((
                                shard,
                                self.finish(token, id, wire, resp, batch_devices, pending),
                            ));
                        }
                    }
                    self.complete_batch(dones);
                }
                _ => {
                    let t0 = Instant::now();
                    let endpoint = job.req.endpoint();
                    let kind = job.req.kind();
                    let WorkJob {
                        token,
                        shard,
                        id,
                        wire,
                        req,
                        batch_devices,
                        session_devices,
                        span,
                        ..
                    } = job;
                    let resp = self.execute(req, &session_devices);
                    let exec = t0.elapsed();
                    self.record(endpoint, exec);
                    let pending =
                        span.map(|s| self.worker_span(s, t0, exec, endpoint, kind, token, shard));
                    let done = self.finish(token, id, wire, resp, batch_devices, pending);
                    self.complete_batch(vec![(shard, done)]);
                }
            }
        }
    }

    /// Encodes a finished job's response (on the worker, parallelizing
    /// serialization) into a completion for the owning loop shard.
    fn finish(
        &self,
        token: u64,
        id: u64,
        wire: Wire,
        resp: Response,
        batch_devices: Vec<DeviceId>,
        span: Option<PendingSpan>,
    ) -> Done {
        // Only an *executed* ingest makes the session responsible for its
        // devices at teardown — a shed or refused batch buffered nothing.
        let ingested = if matches!(resp, Response::Ingested { .. }) {
            batch_devices
        } else {
            Vec::new()
        };
        let env = ResponseEnvelope {
            v: match wire {
                Wire::V1 => crate::protocol::PROTOCOL_VERSION,
                Wire::V2 => crate::protocol::PROTOCOL_V2,
            },
            id,
            resp,
        };
        Done {
            token,
            bytes: Chunk::Owned(encode_wire(wire, &env)),
            ingested,
            unsolicited: false,
            span,
        }
    }
}

/// Delivers one rule's alerts to the subscribing connection: encode in the
/// framing the `Subscribe` arrived in, hand the bytes to the owning loop
/// shard as an unsolicited completion, wake it. Runs on whatever thread
/// published the triggering ingest — never touches the `Conn` directly
/// (the loop shard owns it), which is also why backpressure drops happen
/// in `apply_completions`, not here.
struct ConnAlertSink {
    shard: Arc<ShardState>,
    token: u64,
    wire: Wire,
}

impl trips_store::AlertSink for ConnAlertSink {
    fn deliver(&self, alert: &trips_store::Alert) -> bool {
        // Encode straight from the borrowed alert — no `Alert` clone, no
        // owned envelope. The bytes land in the write queue as a shared
        // segment, so however many hops they take, they are serialized
        // exactly once per framing.
        let bytes: Arc<[u8]> = match self.wire {
            Wire::V1 => {
                let mut line = crate::protocol::encode_alert_line(alert).into_bytes();
                line.push(b'\n');
                line.into()
            }
            Wire::V2 => codec::encode_alert_frame(alert).into(),
        };
        self.shard.completions.lock().push(Done {
            token: self.token,
            bytes: Chunk::Shared(bytes),
            ingested: Vec::new(),
            unsolicited: true,
            span: None,
        });
        self.shard.wake();
        true
    }
}

/// One registered connection's loop-shard state.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_q: WriteQueue,
    /// Scratch for the coalesced-write fallback (reused across flushes).
    scratch: Vec<u8>,
    /// Device ids this connection has sent, interned so the zero-copy
    /// ingest decode resolves repeat devices to cheap `Arc` clones
    /// instead of allocating a fresh `Arc<str>` per record. Capped at
    /// [`INTERN_MAX`]; overflowing ids still work, just un-interned.
    interned: BTreeMap<String, DeviceId>,
    /// Last time the connection read bytes or settled a completion — the
    /// idle-reap clock.
    last_activity: Instant,
    /// Cached readiness (the edge-triggered contract): assumed ready at
    /// registration, cleared only on `WouldBlock`/EOF, set again by the
    /// poller's events. Under level-triggered poll the same flags are
    /// simply refreshed every wait.
    can_read: bool,
    can_write: bool,
    /// A queued work request is awaiting its completion; no further
    /// message is parsed until it lands (per-connection FIFO + natural
    /// backpressure).
    inflight: bool,
    /// Devices this session ingested (refcounted in `Shared::sessions`).
    devices: BTreeSet<DeviceId>,
    /// Standing rules this session registered via `Subscribe`;
    /// unregistered at teardown, so subscriptions die with the session.
    rule_ids: Vec<u64>,
    /// Peer sent EOF; finish buffered work, then tear down.
    read_closed: bool,
    /// Tear down once in-flight work and pending writes finish (fatal
    /// protocol error, shutdown, or drain).
    closing: bool,
    /// Tear down immediately (transport error); skip pending writes.
    dead: bool,
    /// Acceptor hand-off → shard adoption, µs; consumed by (attributed
    /// to) the connection's first span.
    accept_us: u64,
    /// When the connection last became actionable (readiness wakeup or
    /// completion adoption) — the epoch of the next request's
    /// `loop_ready` stage. `None` while observability is off.
    ready_at: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, accept_us: u64) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_q: WriteQueue::default(),
            scratch: Vec::new(),
            interned: BTreeMap::new(),
            last_activity: Instant::now(),
            can_read: true,
            can_write: true,
            inflight: false,
            devices: BTreeSet::new(),
            rule_ids: Vec::new(),
            read_closed: false,
            closing: false,
            dead: false,
            accept_us,
            ready_at: None,
        }
    }

    /// Whether the connection has nothing left to do and can be removed.
    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        if self.inflight || !self.write_q.is_empty() {
            return false;
        }
        // `pump` ran to exhaustion before this check, so a non-empty
        // read_buf here is an incomplete fragment — only EOF or an
        // explicit close makes it garbage.
        self.closing || self.read_closed
    }

    /// Whether the connection wants more bytes from its socket.
    fn wants_read(&self) -> bool {
        !self.read_closed && !self.closing && !self.dead && self.read_buf.len() < MAX_READ_BUF
    }

    /// Whether cached readiness lets this connection make progress right
    /// now (the loop shard re-waits with timeout 0 while any does — a
    /// read-budget or buffer-cap pause must not sleep on the poller,
    /// because under edge-triggering no new event would ever come).
    fn actionable(&self) -> bool {
        if self.dead {
            return false;
        }
        (self.can_read && self.wants_read()) || (self.can_write && !self.write_q.is_empty())
    }

    fn queue_response(&mut self, wire: Wire, env: &ResponseEnvelope) {
        self.write_q.push(Chunk::Owned(encode_wire(wire, env)));
    }

    /// Writes as much queued output as the socket accepts right now.
    /// Under [`WriteBatching::Writev`] every queued segment (pipelined
    /// replies + pushed alerts) goes out in one gather-write per loop
    /// turn; the fallback coalesces segments into a bounded scratch copy.
    fn flush_write(&mut self, batching: WriteBatching) {
        while !self.write_q.is_empty() {
            let wrote = match batching {
                WriteBatching::Writev => {
                    let mut bufs: [&[u8]; WRITEV_BATCH_MAX] = [&[]; WRITEV_BATCH_MAX];
                    let n = self.write_q.gather(&mut bufs);
                    writev_fd(fd_of(&self.stream), &bufs[..n])
                }
                WriteBatching::Coalesce => {
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.write_q.coalesce_into(&mut scratch);
                    let res = self.stream.write(&scratch);
                    self.scratch = scratch;
                    res
                }
            };
            match wrote {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.write_q.consume(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.can_write = false;
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads up to `budget` bytes into the read buffer. Edge-safe:
    /// `can_read` clears **only** on `WouldBlock`/EOF — a budget or
    /// buffer-cap stop leaves it set, so the loop shard comes right back
    /// instead of sleeping on a level change that will never be re-signaled.
    fn fill_read(&mut self, budget: usize) {
        let mut budget = budget.max(1);
        let mut chunk = [0u8; 16 * 1024];
        while budget > 0 && self.read_buf.len() < MAX_READ_BUF {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    self.can_read = false;
                    return;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.can_read = false;
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Ingest routing computed on the parse path (zero-copy v2 decode): the
/// translator-shard uniformity check and well-formed device list fall out
/// of the same single pass that materializes the records, so `dispatch`
/// does not walk the batch again.
struct IngestRoute {
    /// Well-formed devices (cheap interned clones) — attributed to the
    /// session only if the ingest executes.
    batch_devices: Vec<DeviceId>,
    /// `Some(s)` when every record routes to translator shard `s`.
    tshard: Option<usize>,
}

/// One parse step over a connection's read buffer.
enum Parsed {
    /// A complete message, ready to dispatch (with precomputed ingest
    /// routing when the zero-copy path produced it).
    Msg(Wire, RequestEnvelope, Option<IngestRoute>),
    /// An error was answered in-line (bad frame body / bad JSON); parsing
    /// may continue.
    Handled,
    /// Incomplete — wait for more bytes.
    NeedMore,
}

/// Resolves a raw device id against the connection's intern table: repeat
/// devices (the firehose common case) cost one map probe and an `Arc`
/// refcount bump instead of a fresh allocation per record.
fn intern_device(table: &mut BTreeMap<String, DeviceId>, raw: &str) -> DeviceId {
    if let Some(device) = table.get(raw) {
        return device.clone();
    }
    let device = DeviceId::new(raw);
    if table.len() < INTERN_MAX {
        table.insert(raw.to_string(), device.clone());
    }
    device
}

/// One event-loop shard: owns a partition of the connection table and all
/// of its socket I/O; everything here runs on the shard's own thread.
struct LoopShard<'shared, 'env> {
    shared: &'shared Shared<'env>,
    id: usize,
    conns: BTreeMap<u64, Conn>,
    poller: Poller,
}

impl<'shared, 'env> LoopShard<'shared, 'env> {
    /// Extracts the next complete message from the front of `conn.read_buf`.
    fn parse_next(shared: &Shared<'_>, conn: &mut Conn) -> Parsed {
        // Skip inter-message whitespace (v1 blank lines / trailing \r\n).
        let skip = conn
            .read_buf
            .iter()
            .take_while(|&&b| b == b'\n' || b == b'\r' || b == b' ' || b == b'\t')
            .count();
        if skip > 0 {
            conn.read_buf.drain(..skip);
        }
        let Some(&first) = conn.read_buf.first() else {
            return Parsed::NeedMore;
        };
        if first == FRAME_MAGIC {
            match codec::decode_request_frame_ref(&conn.read_buf) {
                Ok(Some((RequestFrameRef::Ingest(view), consumed))) => {
                    // The zero-copy hot path: records materialize straight
                    // out of the read buffer — device ids resolve against
                    // the intern table (no per-record String), and the
                    // routing pass (well-formed devices + translator-shard
                    // uniformity) rides along instead of re-walking the
                    // batch in dispatch.
                    let mut records = Vec::with_capacity(view.records.len());
                    let mut batch_devices = Vec::with_capacity(view.records.len());
                    let mut tshard: Option<Option<usize>> = None;
                    for rec in &view.records {
                        let device = intern_device(&mut conn.interned, rec.device);
                        let s = shared.tshard(&device);
                        tshard = Some(match tshard {
                            None => Some(s),
                            Some(Some(prev)) if prev == s => Some(s),
                            Some(_) => None,
                        });
                        let record =
                            RawRecord::new(device, rec.x, rec.y, rec.floor, Timestamp(rec.ts));
                        if record.is_well_formed() {
                            batch_devices.push(record.device.clone());
                        }
                        records.push(record);
                    }
                    let env = RequestEnvelope {
                        v: crate::protocol::PROTOCOL_V2,
                        id: view.id,
                        req: Request::Ingest { records },
                    };
                    conn.read_buf.drain(..consumed);
                    Parsed::Msg(
                        Wire::V2,
                        env,
                        Some(IngestRoute {
                            batch_devices,
                            // An empty batch routes to shard 0 trivially
                            // (the coalescable fast path, same as owned).
                            tshard: tshard.unwrap_or(Some(0)),
                        }),
                    )
                }
                Ok(Some((RequestFrameRef::Owned(env), consumed))) => {
                    conn.read_buf.drain(..consumed);
                    Parsed::Msg(Wire::V2, env, None)
                }
                Ok(None) => Parsed::NeedMore,
                Err(FrameError::Malformed {
                    id,
                    consumed,
                    message,
                }) => {
                    // Well-delimited frame, bad body: consume it, answer
                    // BadRequest, keep the connection.
                    shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.read_buf.drain(..consumed);
                    conn.queue_response(
                        Wire::V2,
                        &ResponseEnvelope {
                            v: crate::protocol::PROTOCOL_V2,
                            id,
                            resp: Response::Error(ServerError::BadRequest { message }),
                        },
                    );
                    Parsed::Handled
                }
                Err(fatal) => {
                    // Framing is lost (bad CRC / oversized / unknown
                    // version): answer once, then close.
                    shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.queue_response(
                        Wire::V2,
                        &ResponseEnvelope {
                            v: crate::protocol::PROTOCOL_V2,
                            id: 0,
                            resp: Response::Error(ServerError::BadRequest {
                                message: fatal.to_string(),
                            }),
                        },
                    );
                    conn.closing = true;
                    Parsed::Handled
                }
            }
        } else {
            let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                if conn.read_buf.len() > MAX_LINE_BYTES {
                    shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.queue_response(
                        Wire::V1,
                        &ResponseEnvelope::new(
                            0,
                            Response::Error(ServerError::BadRequest {
                                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                            }),
                        ),
                    );
                    conn.closing = true;
                    return Parsed::Handled;
                }
                return Parsed::NeedMore;
            };
            let line_bytes: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                return Parsed::Handled;
            }
            match crate::protocol::decode_request(line) {
                Ok(env) => Parsed::Msg(Wire::V1, env, None),
                Err(error_env) => {
                    shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.queue_response(Wire::V1, &error_env);
                    Parsed::Handled
                }
            }
        }
    }

    /// Parses and dispatches messages until the connection blocks (needs
    /// more bytes, has a request in flight, or is going away).
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.dead || conn.closing || conn.inflight {
                return;
            }
            match Self::parse_next(self.shared, conn) {
                Parsed::NeedMore => return,
                Parsed::Handled => continue,
                Parsed::Msg(wire, env, route) => self.dispatch(token, wire, env, route),
            }
        }
    }

    fn dispatch(
        &mut self,
        token: u64,
        wire: Wire,
        env: RequestEnvelope,
        route: Option<IngestRoute>,
    ) {
        let shared = self.shared;
        let seq = shared.requests.fetch_add(1, Ordering::Relaxed);
        let id = env.id;
        let respond_v = match wire {
            Wire::V1 => crate::protocol::PROTOCOL_VERSION,
            Wire::V2 => crate::protocol::PROTOCOL_V2,
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Span epochs for this request: the amortized accept cost (first
        // request only — `take` zeroes it) and the readiness-to-parse gap.
        let (accept_us, loop_ready_us) = if trips_obs::enabled() {
            (
                std::mem::take(&mut conn.accept_us),
                conn.ready_at
                    .map(|t| t.elapsed().as_micros() as u64)
                    .unwrap_or(0),
            )
        } else {
            (0, 0)
        };
        let inline = |conn: &mut Conn, resp: Response| {
            conn.queue_response(
                wire,
                &ResponseEnvelope {
                    v: respond_v,
                    id,
                    resp,
                },
            );
        };
        match env.req {
            // Admin fast path: answered inline so liveness/health/metrics
            // stay observable even when the admission queue is saturated.
            Request::Ping => {
                let t0 = Instant::now();
                inline(conn, Response::Pong);
                shared.record("admin", t0.elapsed());
                shared.admin_span(self.id, token, seq, "Ping", t0, accept_us, loop_ready_us);
            }
            Request::Health => {
                let t0 = Instant::now();
                let resp = shared.health();
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(self.id, token, seq, "Health", t0, accept_us, loop_ready_us);
            }
            Request::Metrics => {
                let t0 = Instant::now();
                let resp = shared.metrics_report();
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(self.id, token, seq, "Metrics", t0, accept_us, loop_ready_us);
            }
            Request::MetricsProm => {
                let t0 = Instant::now();
                let resp = Response::MetricsProm {
                    text: shared.prometheus_text(),
                };
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(
                    self.id,
                    token,
                    seq,
                    "MetricsProm",
                    t0,
                    accept_us,
                    loop_ready_us,
                );
            }
            Request::TraceDump { limit } => {
                let t0 = Instant::now();
                let resp = Response::Traces {
                    spans: shared.trace_spans(limit),
                };
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(
                    self.id,
                    token,
                    seq,
                    "TraceDump",
                    t0,
                    accept_us,
                    loop_ready_us,
                );
            }
            Request::SlowLog { limit } => {
                let t0 = Instant::now();
                let resp = shared.slow_log_response(limit);
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(self.id, token, seq, "SlowLog", t0, accept_us, loop_ready_us);
            }
            // Subscriptions are admin-path too: registration is compile +
            // one engine write, and it must see the *connection* (sink,
            // owned-rule list), which workers never do.
            Request::Subscribe { tql } => {
                let t0 = Instant::now();
                let resp = match trips_query_lang::compile(&tql) {
                    Err(e) => Response::Error(ServerError::BadRequest {
                        message: e.render(&tql),
                    }),
                    Ok(trips_query_lang::Compiled::Query(_)) => {
                        Response::Error(ServerError::BadRequest {
                            message: "FIND is a one-shot query (use Query); Subscribe takes a \
                                      standing rule (`WHEN … ALERT`)"
                                .to_string(),
                        })
                    }
                    Ok(trips_query_lang::Compiled::Rule(spec)) => {
                        let sink = Arc::new(ConnAlertSink {
                            shard: Arc::clone(&shared.shards[self.id]),
                            token,
                            wire,
                        });
                        match shared.store.rules().register(spec, Some(sink)) {
                            Ok(rule_id) => {
                                conn.rule_ids.push(rule_id);
                                let name = shared
                                    .store
                                    .rules()
                                    .traces()
                                    .into_iter()
                                    .find(|t| t.id == rule_id)
                                    .map(|t| t.name)
                                    .unwrap_or_default();
                                Response::Subscribed { rule_id, name }
                            }
                            Err(e) => Response::Error(ServerError::BadRequest {
                                message: e.to_string(),
                            }),
                        }
                    }
                };
                inline(conn, resp);
                shared.record("admin", t0.elapsed());
                shared.admin_span(
                    self.id,
                    token,
                    seq,
                    "Subscribe",
                    t0,
                    accept_us,
                    loop_ready_us,
                );
            }
            Request::Unsubscribe { rule_id } => {
                let t0 = Instant::now();
                // Sessions may only tear down their own rules — another
                // connection's id is answered `existed: false`, exactly
                // like a stale one.
                let existed = match conn.rule_ids.iter().position(|&r| r == rule_id) {
                    Some(pos) => {
                        conn.rule_ids.remove(pos);
                        shared.store.rules().unregister(rule_id)
                    }
                    None => false,
                };
                inline(conn, Response::Unsubscribed { existed });
                shared.record("admin", t0.elapsed());
                shared.admin_span(
                    self.id,
                    token,
                    seq,
                    "Unsubscribe",
                    t0,
                    accept_us,
                    loop_ready_us,
                );
            }
            Request::ListRules => {
                let t0 = Instant::now();
                let rules = shared.store.rules().traces();
                inline(conn, Response::Rules { rules });
                shared.record("admin", t0.elapsed());
                shared.admin_span(
                    self.id,
                    token,
                    seq,
                    "ListRules",
                    t0,
                    accept_us,
                    loop_ready_us,
                );
            }
            Request::Shutdown => {
                // Acknowledge, then drain: stop accepting, refuse new
                // work, let workers finish everything already admitted.
                inline(conn, Response::ShuttingDown);
                conn.closing = true;
                shared.shutdown.store(true, Ordering::Relaxed);
                shared.queue.close();
                // The other shards are likely asleep in their pollers;
                // wake them so the drain starts everywhere at once.
                for state in &shared.shards {
                    state.wake();
                }
            }
            req @ (Request::Ingest { .. }
            | Request::Flush { .. }
            | Request::Query { .. }
            | Request::Snapshot { .. }) => {
                if shared.draining() {
                    inline(conn, Response::Error(ServerError::ShuttingDown));
                    return;
                }
                let (batch_devices, tshard) = match (route, &req) {
                    // The zero-copy parse already routed the batch in its
                    // single materialization pass.
                    (Some(r), _) => (r.batch_devices, r.tshard),
                    (None, Request::Ingest { records }) => {
                        let batch: Vec<DeviceId> = records
                            .iter()
                            .filter(|r| r.is_well_formed())
                            .map(|r| r.device.clone())
                            .collect();
                        // Single-shard when every record (well-formed or
                        // not — rejects are counted under the same lock)
                        // routes to one translator shard. Empty batches
                        // take the fast path trivially.
                        let mut shards = records.iter().map(|r| shared.tshard(&r.device));
                        let tshard = match shards.next() {
                            None => Some(0),
                            Some(first) => shards.all(|s| s == first).then_some(first),
                        };
                        (batch, tshard)
                    }
                    (None, _) => (Vec::new(), None),
                };
                let session_devices: Vec<DeviceId> =
                    if matches!(req, Request::Flush { device: None }) {
                        conn.devices.iter().cloned().collect()
                    } else {
                        Vec::new()
                    };
                let span = trips_obs::enabled().then(|| {
                    let now = Instant::now();
                    SpanStart {
                        seq,
                        t0: now,
                        submitted: now,
                        accept_us,
                        loop_ready_us,
                    }
                });
                match shared.queue.try_push(WorkJob {
                    token,
                    shard: self.id,
                    id,
                    wire,
                    req,
                    tshard,
                    batch_devices,
                    session_devices,
                    span,
                }) {
                    Ok(()) => {
                        conn.inflight = true;
                        shared.shards[self.id].jobs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(PushError::Full) => {
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        inline(
                            conn,
                            Response::Error(ServerError::Overloaded {
                                queue_capacity: shared.queue.capacity(),
                            }),
                        );
                    }
                    Err(PushError::Closed) => {
                        inline(conn, Response::Error(ServerError::ShuttingDown));
                    }
                }
            }
        }
    }

    /// Registers sockets the acceptor dealt to this shard.
    fn adopt_incoming(&mut self) -> io::Result<()> {
        let incoming: Vec<(TcpStream, Instant)> =
            std::mem::take(&mut *self.shared.shards[self.id].incoming.lock());
        for (stream, handed_off) in incoming {
            if self.shared.draining() {
                // Dropped: drain admits nothing. The acceptor already
                // counted it; undo the active gauge.
                self.shared.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
            // Both directions: under epoll this is the one-and-only arming
            // (edges for reads *and* blocked writes); under poll the
            // per-lap `set_interest` refresh takes over before the first
            // wait.
            self.poller.register(fd_of(&stream), token, true, true)?;
            let accept_us = if trips_obs::enabled() {
                handed_off.elapsed().as_micros() as u64
            } else {
                0
            };
            self.conns.insert(token, Conn::new(stream, accept_us));
        }
        self.shared.shards[self.id]
            .connections
            .store(self.conns.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Re-registers idle connections another shard migrated here
    /// (`--rebalance`). The token travels with the connection, so workers'
    /// completions and session accounting keep working unchanged; cached
    /// readiness is reset to "assume ready" exactly like a fresh
    /// registration (the next service pass probes the socket).
    fn adopt_migrations(&mut self) -> io::Result<()> {
        let migrated: Vec<(u64, Conn)> =
            std::mem::take(&mut *self.shared.shards[self.id].migrations.lock());
        for (token, mut conn) in migrated {
            self.poller
                .register(fd_of(&conn.stream), token, true, true)?;
            conn.can_read = true;
            conn.can_write = true;
            self.conns.insert(token, conn);
        }
        self.shared.shards[self.id]
            .connections
            .store(self.conns.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Migrates one idle connection to the least-loaded shard when this
    /// shard holds at least two more connections than it. Only fully
    /// quiescent connections move — nothing in flight, nothing buffered
    /// in either direction, no standing rules (their alert sinks pin the
    /// owning shard) — so the hand-off is a pure ownership transfer.
    fn try_migrate(&mut self) {
        let my_count = self.conns.len();
        let Some((target, target_count)) = self
            .shared
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.id)
            .map(|(i, s)| (i, s.connections.load(Ordering::Relaxed)))
            .min_by_key(|&(_, n)| n)
        else {
            return;
        };
        if my_count < target_count + 2 {
            return;
        }
        let Some(token) = self
            .conns
            .iter()
            .find(|(_, c)| {
                !c.inflight
                    && !c.closing
                    && !c.dead
                    && !c.read_closed
                    && c.write_q.is_empty()
                    && c.read_buf.is_empty()
                    && c.rule_ids.is_empty()
            })
            .map(|(&t, _)| t)
        else {
            return;
        };
        let conn = self.conns.remove(&token).expect("token just found");
        self.poller.deregister(fd_of(&conn.stream), token);
        self.shared.shards[self.id]
            .connections
            .store(self.conns.len(), Ordering::Relaxed);
        self.shared.conns_rebalanced.fetch_add(1, Ordering::Relaxed);
        let state = &self.shared.shards[target];
        state.migrations.lock().push((token, conn));
        state.wake();
    }

    /// Marks connections idle past the configured timeout for teardown.
    /// Only truly quiescent connections qualify — in-flight work or
    /// unflushed output means the peer is slow, not absent.
    fn reap_idle(&mut self, timeout: Duration) {
        for conn in self.conns.values_mut() {
            if !conn.inflight
                && !conn.closing
                && !conn.dead
                && conn.write_q.is_empty()
                && conn.last_activity.elapsed() > timeout
            {
                conn.closing = true;
                self.shared.conns_reaped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Applies finished work: response bytes, device attribution, renewed
    /// parsing.
    fn apply_completions(&mut self) {
        let done: Vec<Done> = std::mem::take(&mut *self.shared.shards[self.id].completions.lock());
        for d in done {
            // The connection may be gone (dropped mid-flight under a
            // forced drain); its response and device attribution die with
            // it, like a thread-model server whose session exited.
            let Some(conn) = self.conns.get_mut(&d.token) else {
                if d.unsolicited {
                    self.shared
                        .alerts_dropped_late
                        .fetch_add(1, Ordering::Relaxed);
                }
                continue;
            };
            if d.unsolicited {
                // An alert push: no request was in flight for it, and a
                // subscriber that stopped reading gets alerts dropped
                // rather than unbounded buffering (the rule's fire
                // counters remain the ground truth).
                if conn.write_q.len() > ALERT_BUF_MAX {
                    self.shared
                        .alerts_dropped_late
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    conn.write_q.push(d.bytes);
                }
                if conn.can_write {
                    conn.flush_write(self.shared.batching);
                }
                continue;
            }
            // Reply-write starts the moment this shard adopts the
            // completion (clock read only when a span is riding along).
            let adopted = d.span.is_some().then(Instant::now);
            conn.inflight = false;
            conn.last_activity = Instant::now();
            for device in d.ingested {
                if conn.devices.insert(device.clone()) {
                    *self.shared.sessions.lock().entry(device).or_insert(0) += 1;
                }
            }
            conn.write_q.push(d.bytes);
            if conn.can_write {
                conn.flush_write(self.shared.batching);
            }
            if trips_obs::enabled() {
                // The next buffered request's `loop_ready` epoch: this
                // completion is its readiness signal.
                conn.ready_at = Some(Instant::now());
            }
            if let Some(mut pending) = d.span {
                let adopted = adopted.unwrap_or_else(Instant::now);
                pending.record.stages_us[ST_REPLY_WRITE] = adopted.elapsed().as_micros() as u64;
                pending.record.total_us = pending.t0.elapsed().as_micros() as u64;
                pending.record.unix_ms = unix_ms_now();
                self.shared.finish_span(self.id, pending.record);
            }
            self.pump(d.token);
        }
    }

    /// One I/O pass over a connection, driven by its cached readiness.
    fn service(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            return;
        }
        if trips_obs::enabled() {
            // The epoch of the next parsed request's `loop_ready` stage.
            conn.ready_at = Some(Instant::now());
        }
        if conn.can_write && !conn.write_q.is_empty() {
            conn.flush_write(self.shared.batching);
        }
        if conn.can_read && conn.wants_read() {
            let before = conn.read_buf.len();
            conn.fill_read(self.shared.read_budget);
            let gained = conn.read_buf.len() - before;
            if gained > 0 {
                conn.last_activity = Instant::now();
                self.shared.shards[self.id]
                    .bytes_read
                    .fetch_add(gained as u64, Ordering::Relaxed);
            }
        }
        self.pump(token);
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.can_write && !conn.write_q.is_empty() {
                conn.flush_write(self.shared.batching);
            }
        }
    }

    /// Removes a connection and settles its session: every device it
    /// ingested drops one refcount; devices no other live session feeds
    /// are flushed (their semantics publish) and session-ended.
    fn teardown(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.deregister(fd_of(&conn.stream), token);
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        self.shared.shards[self.id]
            .connections
            .store(self.conns.len(), Ordering::Relaxed);
        // Standing rules are session-scoped: a subscriber's rules stop
        // evaluating (and alerting) the moment its connection goes away.
        for rule_id in &conn.rule_ids {
            self.shared.store.rules().unregister(*rule_id);
        }
        if conn.devices.is_empty() {
            return;
        }
        let mut last_refs: Vec<DeviceId> = Vec::new();
        {
            let mut sessions = self.shared.sessions.lock();
            for device in &conn.devices {
                match sessions.get_mut(device) {
                    Some(count) if *count > 1 => *count -= 1,
                    Some(_) => {
                        sessions.remove(device);
                        last_refs.push(device.clone());
                    }
                    // Not in the map — flush defensively (matches the
                    // pre-refcount behavior for untracked devices).
                    None => last_refs.push(device.clone()),
                }
            }
        }
        // Group by translator shard so each lock is taken once (and only
        // the shards this session's devices touch).
        let groups = group_by_tshard(last_refs.iter().map(|d| (self.shared.tshard(d), d)));
        for (shard, devices) in groups {
            let mut translator = self.shared.lock_translator(shard);
            for device in devices {
                let _ = translator.flush_device(device);
                self.shared.store.end_session(device);
            }
        }
    }

    /// Sweeps finished connections, returns whether any remain.
    fn sweep(&mut self) -> bool {
        let finished: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished())
            .map(|(&t, _)| t)
            .collect();
        for token in finished {
            self.teardown(token);
        }
        !self.conns.is_empty()
    }

    /// The shard's loop: adopt → complete → service → sweep → wait.
    /// Returns when the server drains (or on a poller error).
    fn run(&mut self, poll_ms: i32) -> io::Result<()> {
        let state = &self.shared.shards[self.id];
        self.poller
            .register(state.waker.fd(), WAKER_TOKEN, true, false)?;
        // Idle reaping cadence: a quarter of the timeout (floored) keeps
        // the worst-case overshoot at ~25%. Under epoll the interval is
        // additionally armed as a timerfd so a shard whose fds are all
        // silent still wakes to reap; the poll backend's bounded waits
        // already lap at least every `poll_ms`.
        let reap_period = self
            .shared
            .idle_timeout
            .map(|t| (t / 4).max(Duration::from_millis(100)));
        #[cfg(target_os = "linux")]
        let timer: Option<crate::event::TimerFd> = match (reap_period, &self.poller) {
            (Some(period), Poller::Epoll(_)) => {
                let t = crate::event::TimerFd::new_interval(period)?;
                self.poller.register(t.fd(), TIMER_TOKEN, true, false)?;
                Some(t)
            }
            _ => None,
        };
        let mut next_reap = reap_period.map(|p| Instant::now() + p);
        let mut next_rebalance = self
            .shared
            .rebalance
            .then(|| Instant::now() + REBALANCE_INTERVAL);
        let mut drain_deadline: Option<Instant> = None;
        let mut events: Vec<Event> = Vec::new();
        loop {
            // Drain the waker *before* reading the work it signals, so a
            // signal arriving mid-iteration leaves a wake pending rather
            // than being swallowed.
            state.waker.drain();
            self.adopt_incoming()?;
            self.adopt_migrations()?;
            self.apply_completions();

            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.service(token);
            }
            if let (Some(timeout), Some(due)) = (self.shared.idle_timeout, next_reap) {
                if Instant::now() >= due {
                    next_reap = reap_period.map(|p| Instant::now() + p);
                    self.reap_idle(timeout);
                }
            }
            if let Some(due) = next_rebalance {
                if Instant::now() >= due && !self.shared.draining() {
                    next_rebalance = Some(Instant::now() + REBALANCE_INTERVAL);
                    self.try_migrate();
                }
            }
            let any_left = self.sweep();

            if self.shared.draining() {
                let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                // Stop parsing new work everywhere; in-flight jobs and
                // buffered responses still settle.
                for conn in self.conns.values_mut() {
                    conn.closing = true;
                }
                if !any_left {
                    break;
                }
                if Instant::now() >= deadline {
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.teardown(token);
                    }
                    break;
                }
            }

            // A connection paused by its read budget (or waiting to retry
            // a write) still has cached readiness — do not sleep on it.
            let timeout = if self.conns.values().any(|c| c.actionable()) {
                0
            } else {
                poll_ms
            };
            // Refresh level-triggered interest (no-op under epoll): only
            // directions whose cached readiness is *exhausted* are armed,
            // so a level-triggered poll cannot spin on known state.
            for (&token, conn) in &self.conns {
                let read = conn.wants_read() && !conn.can_read;
                let write = !conn.write_q.is_empty() && !conn.can_write && !conn.dead;
                self.poller.set_interest(token, read, write);
            }
            self.poller.wait(timeout, &mut events)?;
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    continue;
                }
                if ev.token == TIMER_TOKEN {
                    // The idle-reap tick: clear the expiration counter so
                    // the edge re-arms; the sweep itself runs at the top
                    // of the lap.
                    #[cfg(target_os = "linux")]
                    if let Some(t) = &timer {
                        t.drain();
                    }
                    continue;
                }
                if let Some(conn) = self.conns.get_mut(&ev.token) {
                    if ev.readable {
                        conn.can_read = true;
                    }
                    if ev.writable {
                        conn.can_write = true;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The acceptor: runs on `serve`'s calling thread, owns the listener,
/// enforces the global connection cap, and places accepted sockets on the
/// least-loaded loop shard.
///
/// Load is an EWMA over each shard's observed byte/job deltas
/// ([`ShardState::bytes_read`] + [`JOB_LOAD_BYTES`]·jobs, refreshed every
/// [`LOAD_REFRESH`]), tie-broken by how many connections a shard already
/// holds (owned + pending hand-offs). An idle burst therefore still deals
/// round-robin — every shard's EWMA is zero and each placement bumps the
/// tie-break — while a shard dragged down by firehose connections stops
/// receiving new ones until its load decays.
fn run_acceptor(
    shared: &Shared<'_>,
    listener: &TcpListener,
    max_connections: usize,
) -> io::Result<()> {
    let nshards = shared.shards.len();
    let mut prev_load = vec![0u64; nshards];
    let mut ewma = vec![0u64; nshards];
    let mut last_refresh = Instant::now();
    while !shared.draining() {
        let mut fds = [PollFd::new(fd_of(listener), POLLIN)];
        poll_fds(&mut fds, ACCEPT_POLL_MS)?;
        if last_refresh.elapsed() >= LOAD_REFRESH {
            last_refresh = Instant::now();
            for (i, state) in shared.shards.iter().enumerate() {
                let cur = state.bytes_read.load(Ordering::Relaxed)
                    + JOB_LOAD_BYTES * state.jobs.load(Ordering::Relaxed);
                let delta = cur.saturating_sub(prev_load[i]);
                prev_load[i] = cur;
                // Half-life of one refresh: recent traffic dominates,
                // history fades fast enough to follow shifting skew.
                ewma[i] = ewma[i] / 2 + delta;
            }
        }
        loop {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    if shared.draining() {
                        break; // dropped: drain admits nothing
                    }
                    if shared.active.load(Ordering::Relaxed) >= max_connections {
                        // Rejected connections count only as rejected,
                        // never as accepted. The rejection is written as a
                        // v1 line — the client has not spoken yet, and v1
                        // is the lingua franca both generations parse.
                        shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nodelay(true);
                        let env = ResponseEnvelope::new(
                            0,
                            Response::Error(ServerError::TooManyConnections {
                                limit: max_connections,
                            }),
                        );
                        let _ = stream.write_all(&encode_wire(Wire::V1, &env));
                        continue; // dropped: connection closed
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    shared.active.fetch_add(1, Ordering::Relaxed);
                    let least_loaded = (0..nshards)
                        .min_by_key(|&i| {
                            let s = &shared.shards[i];
                            let held =
                                s.connections.load(Ordering::Relaxed) + s.incoming.lock().len();
                            (ewma[i], held, i)
                        })
                        .unwrap_or(0);
                    let state = &shared.shards[least_loaded];
                    state.incoming.lock().push((stream, Instant::now()));
                    state.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    Ok(())
}

/// Whether an HTTP request head is complete (blank line seen).
fn http_head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Answers one scrape connection: read the request head (blocking, short
/// timeout), route on the request line only, write the exposition, close.
/// HTTP/1.0, one request per connection — exactly what a scrape loop
/// needs, with no header parsing to get wrong.
fn serve_metrics_conn(shared: &Shared<'_>, mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !http_head_complete(&head) && head.len() <= MAX_HTTP_HEAD {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    let line = head.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let body = shared.prometheus_text();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        let body = "not found; try GET /metrics\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    let _ = stream.write_all(response.as_bytes());
}

/// The dedicated `GET /metrics` listener loop: accept (nonblocking, with
/// the same poll-between-drain-checks cadence as the acceptor), serve
/// each scrape serially, exit when the server drains. Scrapes are rare
/// and cheap relative to request traffic, so one thread with serial
/// connections keeps the surface minimal.
fn run_metrics_http(shared: &Shared<'_>, listener: &TcpListener) {
    while !shared.draining() {
        let mut fds = [PollFd::new(fd_of(listener), POLLIN)];
        if poll_fds(&mut fds, ACCEPT_POLL_MS).is_err() {
            return;
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => serve_metrics_conn(shared, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

/// The assembled server: a DSM + trained Event Editor (the translation
/// configuration) plus the live store it serves.
pub struct TripsServer {
    dsm: DigitalSpaceModel,
    editor: EventEditor,
    config: ServerConfig,
    store: Arc<SemanticsStore>,
    recovery: Option<RecoveryReport>,
    /// The `GET /metrics` listener, bound eagerly at construction (so a
    /// bad `metrics_addr` fails boot, not the first scrape).
    metrics_listener: Option<TcpListener>,
}

impl TripsServer {
    /// Builds a server. Boot is one recovery story
    /// ([`trips_store::boot_store`]): with `config.durability` the store
    /// recovers from its WAL directory (checkpoint snapshot + replay of
    /// newer segments, torn tail truncated) and journals from then on;
    /// with `config.snapshot` it loads that file once, non-durably;
    /// otherwise it starts empty with `config.shards` shards.
    pub fn new(
        dsm: DigitalSpaceModel,
        editor: EventEditor,
        config: ServerConfig,
    ) -> Result<Self, trips_store::SemanticsStoreError> {
        let (store, recovery) = boot_store(
            config.durability.as_ref(),
            config.snapshot.as_deref(),
            config.shards,
        )?;
        let metrics_listener = match config.metrics_addr.as_deref() {
            Some(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(trips_store::SemanticsStoreError::Io)?;
                listener
                    .set_nonblocking(true)
                    .map_err(trips_store::SemanticsStoreError::Io)?;
                Some(listener)
            }
            None => None,
        };
        Ok(TripsServer {
            dsm,
            editor,
            config,
            store: Arc::new(store),
            recovery,
            metrics_listener,
        })
    }

    /// The bound address of the `GET /metrics` listener (`None` unless
    /// [`ServerConfig::metrics_addr`] was set; resolves port 0 to the
    /// real ephemeral port).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The live store (shareable; valid before, during and after `serve`).
    pub fn store(&self) -> Arc<SemanticsStore> {
        self.store.clone()
    }

    /// What boot recovery found (`None` when booted without durability).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// A concurrent query handle over the live store.
    pub fn query_service(&self) -> QueryService {
        QueryService::new(self.store.clone())
    }

    /// The readiness backend this configuration resolves to.
    pub fn backend(&self) -> BackendChoice {
        self.config.backend.resolved()
    }

    /// The effective event-loop shard count (resolves `0` → default).
    pub fn loop_shards(&self) -> usize {
        if self.config.loop_shards == 0 {
            default_loop_shards()
        } else {
            self.config.loop_shards
        }
    }

    /// The effective translator shard count (resolves `0` → default and
    /// rounds to a power of two).
    pub fn translator_shards(&self) -> usize {
        if self.config.translator_shards == 0 {
            default_translator_shards()
        } else {
            self.config.translator_shards.next_power_of_two()
        }
    }

    /// The effective per-event read budget (resolves `0` → default).
    pub fn read_budget(&self) -> usize {
        if self.config.read_budget == 0 {
            DEFAULT_READ_BUDGET
        } else {
            self.config.read_budget
        }
    }

    /// The effective standing-rule cap (resolves `0` → default).
    pub fn max_rules(&self) -> usize {
        if self.config.max_rules == 0 {
            trips_store::DEFAULT_RULE_LIMIT
        } else {
            self.config.max_rules
        }
    }

    /// The effective per-loop-shard trace-ring capacity (resolves `0` →
    /// default).
    pub fn trace_ring_capacity(&self) -> usize {
        if self.config.trace_ring == 0 {
            DEFAULT_TRACE_RING
        } else {
            self.config.trace_ring
        }
    }

    /// The effective slow-log capacity (resolves `0` → default).
    pub fn slow_log_capacity(&self) -> usize {
        if self.config.slow_log == 0 {
            DEFAULT_SLOW_LOG
        } else {
            self.config.slow_log
        }
    }

    /// Serves `listener` until a `Shutdown` request drains the loops.
    /// Blocks; all loop-shard and worker threads are scoped inside this
    /// call (the calling thread runs the acceptor).
    pub fn serve(&self, listener: TcpListener) -> io::Result<ServerReport> {
        listener.set_nonblocking(true)?;
        trips_obs::set_enabled(self.config.obs);
        let loop_shards = self.loop_shards();
        let translator_shards = self.translator_shards();

        // Build every fallible resource before any thread starts: one
        // poller + matching waker per loop shard, one translator per
        // translator shard. Each translator trains its own (identical,
        // deterministic) model from the editor; devices are then routed
        // wholly to one instance, so output matches a single translator
        // bit for bit.
        let mut pollers = Vec::with_capacity(loop_shards);
        let mut shard_states = Vec::with_capacity(loop_shards);
        for _ in 0..loop_shards {
            let poller = Poller::new(self.config.backend)?;
            let waker = Waker::for_poller(&poller)?;
            pollers.push(poller);
            shard_states.push(Arc::new(ShardState {
                completions: parking_lot::Mutex::new(Vec::new()),
                waker,
                incoming: parking_lot::Mutex::new(Vec::new()),
                wakeups: AtomicU64::new(0),
                connections: AtomicUsize::new(0),
                bytes_read: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
                migrations: parking_lot::Mutex::new(Vec::new()),
            }));
        }
        let backend_name = pollers[0].backend_name();
        let mut translators = Vec::with_capacity(translator_shards);
        for _ in 0..translator_shards {
            let translator = StreamingTranslator::from_editor(
                &self.dsm,
                &self.editor,
                None,
                self.config.stream.clone(),
            )
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
            .with_store(self.store.clone());
            translators.push(parking_lot::Mutex::new(translator));
        }

        // The metric registry and the live latency histograms registered
        // in it: the same three series back `Metrics` percentiles and the
        // Prometheus `trips_request_latency_us` family.
        let registry = Registry::new();
        let latency_hist = |endpoint: &str| {
            registry.histogram(
                "trips_request_latency_us",
                "Request latency by endpoint family (microseconds)",
                &[("endpoint", endpoint)],
            )
        };
        let ingest_hist = latency_hist("ingest");
        let query_hist = latency_hist("query");
        let admin_hist = latency_hist("admin");

        let shared = Shared {
            translators,
            tmask: translator_shards - 1,
            store: self.store.clone(),
            queue: BoundedQueue::new(self.config.queue_capacity),
            shards: shard_states,
            next_token: AtomicU64::new(0),
            sessions: parking_lot::Mutex::new(BTreeMap::new()),
            snapshot_root: self.config.snapshot_root.clone(),
            backend_name,
            read_budget: self.read_budget(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            started: Instant::now(),
            registry,
            ingest_hist,
            query_hist,
            admin_hist,
            traces: (0..loop_shards)
                .map(|_| TraceRing::new(self.trace_ring_capacity()))
                .collect(),
            slowlog: SlowLog::new(self.slow_log_capacity(), self.config.slow_threshold_us),
            slow_requests: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            ingest_coalesced: AtomicU64::new(0),
            translator_contention: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            alerts_dropped_late: AtomicU64::new(0),
            conns_reaped: AtomicU64::new(0),
            conns_rebalanced: AtomicU64::new(0),
            // Gather-writes need raw unix fds and pair with the
            // edge-triggered backend; the poll backend (and
            // `--no-writev-batch`) coalesces into one plain write.
            batching: if backend_name == "epoll" && self.config.writev_batch {
                WriteBatching::Writev
            } else {
                WriteBatching::Coalesce
            },
            idle_timeout: self.config.idle_timeout,
            rebalance: self.config.rebalance,
        };
        // Arm the rule engine for this serve run: the configured rule cap
        // and the DSM's region→floor map (so `floor N` selectors resolve).
        self.store.rules().set_limit(self.max_rules());
        self.store
            .rules()
            .set_region_floors(self.dsm.regions().map(|r| (r.id, r.floor)));
        let poll_ms = self.config.poll_interval.as_millis().clamp(1, 60_000) as i32;

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let shared = &shared;
                scope.spawn(move || shared.run_worker());
            }
            if let Some(metrics_listener) = self.metrics_listener.as_ref() {
                let shared = &shared;
                scope.spawn(move || run_metrics_http(shared, metrics_listener));
            }
            let mut loop_handles = Vec::with_capacity(loop_shards);
            for (id, poller) in pollers.into_iter().enumerate() {
                let shared = &shared;
                loop_handles.push(scope.spawn(move || {
                    let mut shard = LoopShard {
                        shared,
                        id,
                        conns: BTreeMap::new(),
                        poller,
                    };
                    let result = shard.run(poll_ms);
                    if result.is_err() {
                        // A dying shard must still let everyone else
                        // drain: flag shutdown, close the queue, wake the
                        // other shards (the acceptor notices the flag).
                        shared.shutdown.store(true, Ordering::Relaxed);
                        shared.queue.close();
                        for state in &shared.shards {
                            state.wake();
                        }
                    }
                    result
                }));
            }

            let mut loop_err = run_acceptor(&shared, &listener, self.config.max_connections).err();
            if loop_err.is_some() {
                // Acceptor died: initiate the drain it can no longer serve.
                shared.shutdown.store(true, Ordering::Relaxed);
                shared.queue.close();
                for state in &shared.shards {
                    state.wake();
                }
            }
            for handle in loop_handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        loop_err.get_or_insert(e);
                    }
                    Err(_) => {
                        loop_err.get_or_insert_with(|| io::Error::other("loop shard panicked"));
                    }
                }
            }
            // Whatever ended the loops: make sure workers can exit (drain).
            shared.queue.close();
            match loop_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;

        // Every thread has joined. Publish any still-buffered sessions so
        // nothing ingested is lost (journaling them on a durable store),
        // flush the tail of any fsync window, then report.
        shared.finish_all_translators();
        let _ = self.store.sync_wal();
        Ok(ServerReport {
            connections_accepted: shared.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: shared.conns_rejected.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            shed: shared.shed.load(Ordering::Relaxed),
            bad_requests: shared.bad_requests.load(Ordering::Relaxed),
            peak_queue_depth: shared.queue.peak_depth(),
            devices: self.store.device_count(),
            semantics: self.store.semantics_count(),
        })
    }

    /// Binds `addr` (use port 0 for an ephemeral port), moves the server
    /// into a background thread and returns a handle with the bound
    /// address — the boot path for tests and embedding.
    pub fn spawn(self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics_addr = self.metrics_addr();
        let join = std::thread::spawn(move || self.serve(listener));
        Ok(ServerHandle {
            addr: local,
            metrics_addr,
            join,
        })
    }
}

/// A running background server (see [`TripsServer::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    join: std::thread::JoinHandle<io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `GET /metrics` listener address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests a graceful drain and waits for the serve loop to finish.
    ///
    /// Delivery is verified: if the `Shutdown` request cannot reach the
    /// server (e.g. the connection cap is saturated and the admin socket
    /// is rejected), this retries briefly and then returns an error
    /// instead of joining a server that will never drain.
    pub fn shutdown(self) -> io::Result<ServerReport> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let attempt = crate::client::Client::connect(self.addr).and_then(|mut client| {
                client.set_read_timeout(Some(Duration::from_millis(500)))?;
                client.shutdown()
            });
            match attempt {
                // Acknowledged — or another client already started the
                // drain; either way the serve loop is on its way out.
                Ok(Response::ShuttingDown) | Ok(Response::Error(ServerError::ShuttingDown)) => {
                    return self.join()
                }
                // Rejected (connection cap), unexpected reply, or a
                // transport error: if the loop already exited, join;
                // otherwise retry until the deadline.
                Ok(_) | Err(_) => {
                    if self.join.is_finished() {
                        return self.join();
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::other(
                            "could not deliver Shutdown (connection cap saturated?); \
                             server left running",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Waits for the serve loop to finish without requesting shutdown
    /// (use when a client already sent `Shutdown`).
    pub fn join(self) -> io::Result<ServerReport> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_metrics_reduce_a_histogram_snapshot() {
        let hist = Histogram::new();
        for us in 1..=1000u64 {
            hist.observe_us(us);
        }
        let m = endpoint_metrics("ingest", &hist, Duration::from_secs(10));
        assert_eq!(m.endpoint, "ingest");
        assert_eq!(m.count, 1000);
        assert!((m.ops_per_sec - 100.0).abs() < 1e-9);
        assert_eq!(m.max_us, 1000.0, "max is exact");
        assert_eq!(m.mean_us, 500.0);
        // Log buckets: the p50 estimate stays inside the true median's
        // bucket (256, 512]; p99 never exceeds the exact max.
        assert!((257.0..=512.0).contains(&m.p50_us), "p50 {}", m.p50_us);
        assert!(m.p99_us <= m.max_us);

        let empty = endpoint_metrics("query", &Histogram::new(), Duration::ZERO);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.ops_per_sec, 0.0);
    }

    #[test]
    fn http_head_detection_handles_both_line_endings() {
        assert!(http_head_complete(b"GET /metrics HTTP/1.0\r\n\r\n"));
        assert!(http_head_complete(b"GET /metrics HTTP/1.0\n\n"));
        assert!(!http_head_complete(b"GET /metrics HTTP/1.0\r\n"));
    }

    #[test]
    fn snapshot_paths_resolve_only_inside_the_root() {
        let root = PathBuf::from("/srv/snapshots");
        let ok = resolve_snapshot_path(Some(&root), "daily/mall.json").unwrap();
        assert_eq!(ok, root.join("daily/mall.json"));

        // "a/./b" is absent: `Path::components` normalizes interior `.`
        // away, so it resolves to a/b inside the root — harmless.
        for bad in ["/etc/passwd", "../escape.json", "a/../../b", "", "./a"] {
            let err = resolve_snapshot_path(Some(&root), bad).unwrap_err();
            assert!(
                matches!(err, ServerError::BadRequest { .. }),
                "{bad:?} must be rejected, got {err:?}"
            );
        }

        let err = resolve_snapshot_path(None, "mall.json").unwrap_err();
        assert!(
            matches!(err, ServerError::BadRequest { .. }),
            "no configured root rejects everything"
        );
    }

    #[test]
    fn group_by_tshard_preserves_per_shard_order() {
        let items = vec![(1, "a"), (0, "b"), (1, "c"), (2, "d"), (0, "e"), (1, "f")];
        let groups = group_by_tshard(items);
        assert_eq!(groups[&0], vec!["b", "e"]);
        assert_eq!(groups[&1], vec!["a", "c", "f"]);
        assert_eq!(groups[&2], vec!["d"]);
    }

    #[test]
    fn shard_defaults_are_sane() {
        let loops = default_loop_shards();
        assert!((1..=4).contains(&loops));
        let t = default_translator_shards();
        assert!(t.is_power_of_two());
        assert!((4..=32).contains(&t));
    }
}
