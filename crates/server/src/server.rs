//! The serving loop: accept → per-connection sessions → bounded admission
//! queue → fixed worker pool → semantics store.
//!
//! ## Threading model
//!
//! Everything runs under one `std::thread::scope` (the same scoped-thread
//! idiom as `trips-engine`'s executor), so workers and sessions borrow the
//! server's state directly — no leaked `'static` state, and `serve`
//! returns only after every thread has exited:
//!
//! * the **accept loop** (the calling thread) polls a non-blocking
//!   listener, enforcing the connection cap;
//! * one **session thread per connection** parses NDJSON lines, answers
//!   cheap admin requests inline (`Ping`/`Health`/`Metrics` stay
//!   observable under overload), and submits real work to the queue —
//!   one request in flight per connection, so responses stay ordered;
//! * a **fixed worker pool** pops jobs and executes them against the
//!   shared `StreamingTranslator` + `SemanticsStore`.
//!
//! ## Overload behavior
//!
//! Admission is a [`BoundedQueue`]: when it is full the request is
//! **shed** with [`ServerError::Overloaded`] — nothing buffers, memory
//! stays bounded (`peak_queue_depth ≤ queue_capacity`, exposed via
//! `Metrics`). Past the connection cap, new sockets get
//! [`ServerError::TooManyConnections`] and are closed immediately.
//!
//! ## Sessions
//!
//! Each connection is a session: when it closes, the devices it ingested
//! are flushed (their buffered records translate and become queryable)
//! and marked with a store session boundary, so flows never join records
//! from independent client sessions.
//!
//! ## Drain
//!
//! `Shutdown` acknowledges, then: stop accepting, refuse new work, finish
//! every admitted request, flush all stream buffers into the store (and
//! the WAL, on a durable server), and return a [`ServerReport`].
//!
//! ## Durability
//!
//! With [`ServerConfig::durability`] set, the store journals every
//! effective mutation to a `trips-wal` write-ahead log **before** the
//! mutation is visible — so an `Ingested`/`Flushed` ack means every
//! semantics that became queryable through that request is journaled
//! (and on stable storage, under the configured fsync policy). Raw
//! records still buffered in the streaming translator are *not yet*
//! durable — they become so the moment they publish (gap close, buffer
//! overflow, `Flush`, disconnect, drain), which is also the moment they
//! become queryable; recovery therefore always reproduces exactly the
//! queryable state. Boot is `checkpoint snapshot → replay newer WAL
//! segments`; `Snapshot` requests checkpoint + compact; `Health` and
//! `Metrics` expose segment count, WAL bytes, replay debt, and
//! checkpoint age.

use crate::protocol::{
    EndpointMetrics, HealthReport, MetricsReport, Request, Response, ResponseEnvelope, ServerError,
};
use crate::queue::{BoundedQueue, PushError};
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use trips_annotate::EventEditor;
use trips_core::stream::{StreamConfig, StreamingTranslator};
use trips_data::DeviceId;
use trips_dsm::DigitalSpaceModel;
use trips_engine::LatencyRecorder;
use trips_store::{boot_store, DurabilityConfig, QueryService, RecoveryReport, SemanticsStore};

/// Longest accepted request line; a connection exceeding it without a
/// newline is answered with `BadRequest` and closed (memory bound).
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool size executing ingest/query/snapshot work.
    pub workers: usize,
    /// Bounded admission-queue capacity; requests beyond it are shed with
    /// [`ServerError::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent-connection cap; sockets beyond it get
    /// [`ServerError::TooManyConnections`] and are closed.
    pub max_connections: usize,
    /// Store shard count (`0` = [`trips_store::default_shard_count`]).
    /// Ignored when booting from a snapshot (the snapshot records its own).
    pub shards: usize,
    /// Streaming-translator settings (flush gap, buffer cap, translator).
    pub stream: StreamConfig,
    /// Boot the store from this `trips-store` snapshot instead of empty.
    /// One-shot and **non-durable**: mutations after boot are not
    /// journaled. Mutually exclusive with `durability`.
    pub snapshot: Option<std::path::PathBuf>,
    /// Run the store durably: boot by recovery (checkpoint snapshot +
    /// WAL replay) from this directory and journal every effective store
    /// mutation before acking. `Snapshot` requests become
    /// checkpoint+compact. Mutually exclusive with `snapshot`.
    pub durability: Option<DurabilityConfig>,
    /// Accept/read poll interval — the latency of noticing a drain.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            max_connections: 64,
            shards: 0,
            stream: StreamConfig::default(),
            snapshot: None,
            durability: None,
            poll_interval: Duration::from_millis(10),
        }
    }
}

/// Counters summarizing one `serve` run, returned when the loop drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    pub connections_accepted: u64,
    pub connections_rejected: u64,
    pub requests: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    pub bad_requests: u64,
    /// Admission-queue high-water mark (≤ configured capacity).
    pub peak_queue_depth: usize,
    /// Store occupancy at drain time.
    pub devices: usize,
    pub semantics: usize,
}

/// One queued unit of work: a parsed request plus the channel its session
/// thread is blocked on.
struct Job {
    req: Request,
    reply: mpsc::SyncSender<Response>,
}

/// Reservoir size per endpoint family — bounds metrics memory for a
/// long-running server (the admission queue bounds in-flight work; this
/// bounds observability state).
const LATENCY_RESERVOIR: usize = 16 * 1024;

/// Bounded per-endpoint latency accounting: exact count / mean / max over
/// the server's lifetime, percentiles over a uniform reservoir sample
/// (Vitter's Algorithm R with a deterministic LCG), so memory and the
/// `Metrics` sort cost stay O(reservoir) no matter how many requests the
/// server has served.
#[derive(Clone)]
struct EndpointRecorder {
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    reservoir: Vec<u64>,
    lcg: u64,
}

impl EndpointRecorder {
    fn new() -> Self {
        EndpointRecorder {
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            reservoir: Vec::new(),
            lcg: 0x5DEE_CE66_D1CE_4E5D,
        }
    }

    fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos() as u64;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        if self.reservoir.len() < LATENCY_RESERVOIR {
            self.reservoir.push(ns);
        } else {
            // Algorithm R: keep each sample with probability k/total.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = ((self.lcg >> 11) % self.total) as usize;
            if slot < LATENCY_RESERVOIR {
                self.reservoir[slot] = ns;
            }
        }
    }

    fn metrics(&self, endpoint: &str, uptime: Duration) -> EndpointMetrics {
        let mut percentiles = LatencyRecorder::new();
        for &ns in &self.reservoir {
            percentiles.record(Duration::from_nanos(ns));
        }
        let mean_ns = if self.total == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.total)) as u64
        };
        EndpointMetrics {
            endpoint: endpoint.to_string(),
            count: self.total as usize,
            ops_per_sec: if uptime.is_zero() {
                0.0
            } else {
                self.total as f64 / uptime.as_secs_f64()
            },
            p50_us: percentiles.percentile(0.50).as_secs_f64() * 1e6,
            p99_us: percentiles.percentile(0.99).as_secs_f64() * 1e6,
            max_us: Duration::from_nanos(self.max_ns).as_secs_f64() * 1e6,
            mean_us: Duration::from_nanos(mean_ns).as_secs_f64() * 1e6,
        }
    }
}

/// State shared by the accept loop, sessions, and workers for one `serve`
/// run (lives on `serve`'s stack; scoped threads borrow it).
struct Shared<'env> {
    translator: parking_lot::Mutex<StreamingTranslator<'env>>,
    store: Arc<SemanticsStore>,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    started: Instant,
    // Metrics: per-endpoint-family latency + scalar counters.
    ingest_lat: parking_lot::Mutex<EndpointRecorder>,
    query_lat: parking_lot::Mutex<EndpointRecorder>,
    admin_lat: parking_lot::Mutex<EndpointRecorder>,
    requests: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
}

impl<'env> Shared<'env> {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn record(&self, endpoint: &str, latency: Duration) {
        let recorder = match endpoint {
            "ingest" => &self.ingest_lat,
            "query" => &self.query_lat,
            _ => &self.admin_lat,
        };
        recorder.lock().record(latency);
    }

    /// Executes one unit of admitted work (runs on a worker thread).
    fn execute(&self, req: Request) -> Response {
        match req {
            Request::Ingest { records } => {
                let mut accepted = 0;
                let mut rejected = 0;
                let mut emitted = 0;
                let mut translator = self.translator.lock();
                for record in records {
                    if !record.is_well_formed() {
                        rejected += 1;
                        continue;
                    }
                    emitted += translator.push(record).len();
                    accepted += 1;
                }
                Response::Ingested {
                    accepted,
                    rejected,
                    emitted,
                }
            }
            Request::Flush { device } => {
                let mut translator = self.translator.lock();
                match device {
                    Some(device) => {
                        let device = DeviceId::new(&device);
                        let before = translator.open_devices();
                        let emitted = translator.flush_device(&device).len();
                        Response::Flushed {
                            devices: before - translator.open_devices(),
                            emitted,
                        }
                    }
                    None => {
                        let flushed = translator.finish();
                        Response::Flushed {
                            devices: flushed.len(),
                            emitted: flushed.values().map(Vec::len).sum(),
                        }
                    }
                }
            }
            Request::Query { request } => Response::Query {
                result: self.store.query(&request),
            },
            Request::Snapshot { path } => {
                // Buffered records must be part of the snapshot, or a
                // restart would silently lose in-flight sessions. (On a
                // durable store the flush also journals the published
                // semantics before the WAL rotates.)
                let mut translator = self.translator.lock();
                let _ = translator.finish();
                drop(translator);
                if self.store.is_durable() {
                    // Checkpoint + compact: rotate the WAL, publish the
                    // checkpoint snapshot atomically, retire older
                    // segments. The request's `path` does not apply — the
                    // checkpoint lives in the durability directory.
                    match self.store.checkpoint() {
                        Ok(report) => Response::SnapshotSaved {
                            path: report.snapshot_path.display().to_string(),
                            devices: report.devices,
                            semantics: report.semantics,
                        },
                        Err(e) => Response::Error(ServerError::Internal {
                            message: e.to_string(),
                        }),
                    }
                } else {
                    match self.store.persist(&path) {
                        Ok(()) => Response::SnapshotSaved {
                            path,
                            devices: self.store.device_count(),
                            semantics: self.store.semantics_count(),
                        },
                        Err(e) => Response::Error(ServerError::Internal {
                            message: e.to_string(),
                        }),
                    }
                }
            }
            // Sessions answer these inline; keep the mapping total anyway.
            Request::Ping => Response::Pong,
            Request::Health => self.health(),
            Request::Metrics => self.metrics_report(),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    fn health(&self) -> Response {
        let (open_devices, buffered_records) = {
            let translator = self.translator.lock();
            (translator.open_devices(), translator.buffered_records())
        };
        Response::Health(HealthReport {
            status: if self.draining() { "draining" } else { "ok" }.to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            store: self.store.store_stats(),
            open_devices,
            buffered_records,
            active_connections: self.active.load(Ordering::Relaxed),
            wal: self.store.wal_stats(),
        })
    }

    fn metrics_report(&self) -> Response {
        let uptime = self.started.elapsed();
        let endpoints = [
            ("ingest", &self.ingest_lat),
            ("query", &self.query_lat),
            ("admin", &self.admin_lat),
        ]
        .into_iter()
        .map(|(name, recorder)| {
            // Clone the bounded state out, summarize outside the lock so
            // recording sessions never stall behind the reservoir sort.
            let snapshot = recorder.lock().clone();
            snapshot.metrics(name, uptime)
        })
        .collect();
        Response::Metrics(MetricsReport {
            uptime_ms: uptime.as_millis() as u64,
            connections_accepted: self.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: self.conns_rejected.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            queue_capacity: self.queue.capacity(),
            peak_queue_depth: self.queue.peak_depth(),
            endpoints,
            wal: self.store.wal_stats(),
        })
    }
}

fn write_line(stream: &mut TcpStream, env: &ResponseEnvelope) -> io::Result<()> {
    let mut line = crate::protocol::encode_response(env);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Runs one connection to completion (a scoped session thread).
fn session(shared: &Shared<'_>, mut stream: TcpStream, poll: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll));
    // Devices this session ingested — flushed + session-ended at teardown.
    let mut devices: BTreeSet<DeviceId> = BTreeSet::new();
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    'conn: loop {
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = acc.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !handle_line(shared, &mut stream, line, &mut devices) {
                break 'conn;
            }
        }
        if acc.len() > MAX_LINE_BYTES {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_line(
                &mut stream,
                &ResponseEnvelope::new(
                    0,
                    Response::Error(ServerError::BadRequest {
                        message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    }),
                ),
            );
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Session teardown: the devices this connection fed are done — flush
    // their buffers (semantics become queryable) and mark a session
    // boundary so a later reconnect doesn't count a flow across sessions.
    if !devices.is_empty() {
        let mut translator = shared.translator.lock();
        for device in &devices {
            let _ = translator.flush_device(device);
            shared.store.end_session(device);
        }
    }
    shared.active.fetch_sub(1, Ordering::Relaxed);
}

/// Handles one request line; returns `false` when the connection must
/// close (shutdown acknowledged).
fn handle_line(
    shared: &Shared<'_>,
    stream: &mut TcpStream,
    line: &str,
    devices: &mut BTreeSet<DeviceId>,
) -> bool {
    let env = match crate::protocol::decode_request(line) {
        Ok(env) => env,
        Err(error_env) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            return write_line(stream, &error_env).is_ok();
        }
    };
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let id = env.id;
    match env.req {
        // Admin fast path: answered inline so liveness/health/metrics stay
        // observable even when the admission queue is saturated.
        Request::Ping => {
            let t0 = Instant::now();
            let resp = Response::Pong;
            shared.record("admin", t0.elapsed());
            write_line(stream, &ResponseEnvelope::new(id, resp)).is_ok()
        }
        Request::Health => {
            let t0 = Instant::now();
            let resp = shared.health();
            shared.record("admin", t0.elapsed());
            write_line(stream, &ResponseEnvelope::new(id, resp)).is_ok()
        }
        Request::Metrics => {
            let t0 = Instant::now();
            let resp = shared.metrics_report();
            shared.record("admin", t0.elapsed());
            write_line(stream, &ResponseEnvelope::new(id, resp)).is_ok()
        }
        Request::Shutdown => {
            // Acknowledge, then drain: stop accepting, refuse new work,
            // let workers finish everything already admitted.
            let _ = write_line(stream, &ResponseEnvelope::new(id, Response::ShuttingDown));
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.queue.close();
            false
        }
        req @ (Request::Ingest { .. }
        | Request::Flush { .. }
        | Request::Query { .. }
        | Request::Snapshot { .. }) => {
            if shared.draining() {
                return write_line(
                    stream,
                    &ResponseEnvelope::new(id, Response::Error(ServerError::ShuttingDown)),
                )
                .is_ok();
            }
            let batch_devices: Vec<DeviceId> = if let Request::Ingest { records } = &req {
                records
                    .iter()
                    .filter(|r| r.is_well_formed())
                    .map(|r| r.device.clone())
                    .collect()
            } else {
                Vec::new()
            };
            let (tx, rx) = mpsc::sync_channel(1);
            let resp = match shared.queue.try_push(Job { req, reply: tx }) {
                Ok(()) => match rx.recv() {
                    Ok(resp) => resp,
                    Err(_) => Response::Error(ServerError::Internal {
                        message: "worker dropped the request".to_string(),
                    }),
                },
                Err(PushError::Full) => {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ServerError::Overloaded {
                        queue_capacity: shared.queue.capacity(),
                    })
                }
                Err(PushError::Closed) => Response::Error(ServerError::ShuttingDown),
            };
            // Only an *executed* ingest makes this session responsible for
            // those devices at teardown — a shed batch buffered nothing,
            // and flushing here would disrupt another connection's
            // in-flight stream for the same device.
            if matches!(resp, Response::Ingested { .. }) {
                devices.extend(batch_devices);
            }
            write_line(stream, &ResponseEnvelope::new(id, resp)).is_ok()
        }
    }
}

/// The assembled server: a DSM + trained Event Editor (the translation
/// configuration) plus the live store it serves.
pub struct TripsServer {
    dsm: DigitalSpaceModel,
    editor: EventEditor,
    config: ServerConfig,
    store: Arc<SemanticsStore>,
    recovery: Option<RecoveryReport>,
}

impl TripsServer {
    /// Builds a server. Boot is one recovery story
    /// ([`trips_store::boot_store`]): with `config.durability` the store
    /// recovers from its WAL directory (checkpoint snapshot + replay of
    /// newer segments, torn tail truncated) and journals from then on;
    /// with `config.snapshot` it loads that file once, non-durably;
    /// otherwise it starts empty with `config.shards` shards.
    pub fn new(
        dsm: DigitalSpaceModel,
        editor: EventEditor,
        config: ServerConfig,
    ) -> Result<Self, trips_store::SemanticsStoreError> {
        let (store, recovery) = boot_store(
            config.durability.as_ref(),
            config.snapshot.as_deref(),
            config.shards,
        )?;
        Ok(TripsServer {
            dsm,
            editor,
            config,
            store: Arc::new(store),
            recovery,
        })
    }

    /// The live store (shareable; valid before, during and after `serve`).
    pub fn store(&self) -> Arc<SemanticsStore> {
        self.store.clone()
    }

    /// What boot recovery found (`None` when booted without durability).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// A concurrent query handle over the live store.
    pub fn query_service(&self) -> QueryService {
        QueryService::new(self.store.clone())
    }

    /// Serves `listener` until a `Shutdown` request drains the loop.
    /// Blocks; all worker/session threads are scoped inside this call.
    pub fn serve(&self, listener: TcpListener) -> io::Result<ServerReport> {
        listener.set_nonblocking(true)?;
        let translator = StreamingTranslator::from_editor(
            &self.dsm,
            &self.editor,
            None,
            self.config.stream.clone(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
        .with_store(self.store.clone());

        let shared = Shared {
            translator: parking_lot::Mutex::new(translator),
            store: self.store.clone(),
            queue: BoundedQueue::new(self.config.queue_capacity),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            started: Instant::now(),
            ingest_lat: parking_lot::Mutex::new(EndpointRecorder::new()),
            query_lat: parking_lot::Mutex::new(EndpointRecorder::new()),
            admin_lat: parking_lot::Mutex::new(EndpointRecorder::new()),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
        };
        let poll = self.config.poll_interval;

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let shared = &shared;
                scope.spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        let t0 = Instant::now();
                        let endpoint = job.req.endpoint();
                        let resp = shared.execute(job.req);
                        shared.record(endpoint, t0.elapsed());
                        let _ = job.reply.send(resp);
                    }
                });
            }

            // Accept loop (this thread).
            while !shared.draining() {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        if shared.active.load(Ordering::Relaxed) >= self.config.max_connections {
                            // Rejected connections count only as rejected,
                            // never as accepted.
                            shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.set_nodelay(true);
                            let _ = write_line(
                                &mut stream,
                                &ResponseEnvelope::new(
                                    0,
                                    Response::Error(ServerError::TooManyConnections {
                                        limit: self.config.max_connections,
                                    }),
                                ),
                            );
                            continue; // dropped: connection closed
                        }
                        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
                        shared.active.fetch_add(1, Ordering::Relaxed);
                        let shared = &shared;
                        scope.spawn(move || session(shared, stream, poll));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(poll);
                    }
                    Err(_) => std::thread::sleep(poll),
                }
            }
            // Whatever ended the loop: make sure workers can exit (drain).
            shared.queue.close();
        });

        // Every thread has joined. Publish any still-buffered sessions so
        // nothing ingested is lost (journaling them on a durable store),
        // flush the tail of any fsync window, then report.
        let _ = shared.translator.lock().finish();
        let _ = self.store.sync_wal();
        Ok(ServerReport {
            connections_accepted: shared.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: shared.conns_rejected.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            shed: shared.shed.load(Ordering::Relaxed),
            bad_requests: shared.bad_requests.load(Ordering::Relaxed),
            peak_queue_depth: shared.queue.peak_depth(),
            devices: self.store.device_count(),
            semantics: self.store.semantics_count(),
        })
    }

    /// Binds `addr` (use port 0 for an ephemeral port), moves the server
    /// into a background thread and returns a handle with the bound
    /// address — the boot path for tests and embedding.
    pub fn spawn(self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let join = std::thread::spawn(move || self.serve(listener));
        Ok(ServerHandle { addr: local, join })
    }
}

/// A running background server (see [`TripsServer::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain and waits for the serve loop to finish.
    ///
    /// Delivery is verified: if the `Shutdown` request cannot reach the
    /// server (e.g. the connection cap is saturated and the admin socket
    /// is rejected), this retries briefly and then returns an error
    /// instead of joining a server that will never drain.
    pub fn shutdown(self) -> io::Result<ServerReport> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let attempt = crate::client::Client::connect(self.addr).and_then(|mut client| {
                client.set_read_timeout(Some(Duration::from_millis(500)))?;
                client.shutdown()
            });
            match attempt {
                // Acknowledged — or another client already started the
                // drain; either way the serve loop is on its way out.
                Ok(Response::ShuttingDown) | Ok(Response::Error(ServerError::ShuttingDown)) => {
                    return self.join()
                }
                // Rejected (connection cap), unexpected reply, or a
                // transport error: if the loop already exited, join;
                // otherwise retry until the deadline.
                Ok(_) | Err(_) => {
                    if self.join.is_finished() {
                        return self.join();
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::other(
                            "could not deliver Shutdown (connection cap saturated?); \
                             server left running",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Waits for the serve loop to finish without requesting shutdown
    /// (use when a client already sent `Shutdown`).
    pub fn join(self) -> io::Result<ServerReport> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}
