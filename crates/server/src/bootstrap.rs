//! Server bootstrap from a simulated deployment.
//!
//! A real deployment configures the server with a surveyed DSM and an
//! Event Editor trained by analysts (the paper's steps 1–3). This repo's
//! stand-in: generate a `trips-sim` scenario and train the editor from its
//! ground-truth visit designations — exactly what the examples and bench
//! harness do, packaged for the `trips-serve` binary and the e2e tests.
//!
//! A campus (`trips_sim::scenario::generate_campus`) built with the same
//! `(floors, shops_per_row)` layout produces records that fit this DSM —
//! every building shares the layout, and device ids carry `b<i>.` prefixes
//! so selector globs (`b0.*`) isolate one building's traffic.

use trips_annotate::EventEditor;
use trips_data::RawRecord;
use trips_dsm::DigitalSpaceModel;
use trips_sim::{ScenarioConfig, SimulatedDataset};

/// A DSM plus a trained Event Editor — everything [`crate::TripsServer`]
/// needs besides its [`crate::ServerConfig`].
pub struct ServerBootstrap {
    pub dsm: DigitalSpaceModel,
    pub editor: EventEditor,
}

/// Trains an Event Editor from a dataset's ground-truth designations.
pub fn editor_from_truth(ds: &SimulatedDataset) -> EventEditor {
    let mut editor = EventEditor::with_default_patterns();
    for trace in &ds.traces {
        for visit in &trace.truth_visits {
            let segment: Vec<RawRecord> = trace
                .raw
                .records()
                .iter()
                .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                .cloned()
                .collect();
            if segment.len() >= 2 {
                let _ = editor.designate_segment(visit.kind.name(), &segment);
            }
        }
    }
    editor
}

/// Generates a mall scenario and trains the editor on it, yielding a
/// ready-to-serve configuration for that layout.
pub fn bootstrap_scenario(
    floors: u16,
    shops_per_row: usize,
    config: &ScenarioConfig,
) -> ServerBootstrap {
    let ds = trips_sim::scenario::generate(floors, shops_per_row, config);
    let editor = editor_from_truth(&ds);
    ServerBootstrap {
        dsm: ds.dsm,
        editor,
    }
}
