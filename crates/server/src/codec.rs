//! Wire protocol **v2**: length-prefixed, CRC-framed binary frames.
//!
//! NDJSON (v1) spends most of its ingest budget on JSON: every record is
//! re-parsed from text, every float printed and re-read. v2 reuses the
//! compact `WalOp`-style encoding the durability layer already proved out
//! (`trips-store`'s checkpoint/WAL codec): strings are `len u32 le | utf8`,
//! floats are raw IEEE-754 bits, integers are fixed-width little-endian.
//!
//! ## Frame layout
//!
//! ```text
//! +--------+---------+----------------+-------------+=================+
//! | magic  | version | payload_len    | crc32c      |  payload        |
//! | 0xF2   | 0x02    | u32 le         | u32 le      |  (payload_len)  |
//! +--------+---------+----------------+-------------+=================+
//!                                                    \_ id u64 le | tag u8 | body
//! ```
//!
//! The CRC (same CRC-32C as the WAL frames, [`trips_wal::crc32`]) covers
//! the payload only. `payload_len` is capped at [`MAX_FRAME_PAYLOAD`];
//! anything larger is a fatal framing error — the connection cannot be
//! resynchronized and is closed.
//!
//! ## Negotiation
//!
//! There is no handshake: framing is detected **per message**. A message
//! starting with [`FRAME_MAGIC`] is a v2 frame; anything else must be a
//! v1 NDJSON line (they can never collide — 0xF2 is not valid leading
//! UTF-8 for a JSON document). The server answers in the framing the
//! request arrived in, so one connection may mix versions and a v1-only
//! client never sees a byte of v2.
//!
//! ## Error taxonomy
//!
//! [`FrameError`] distinguishes *fatal* framing errors (bad magic / CRC
//! mismatch / oversized / unknown frame version — the stream position is
//! unrecoverable, the server replies with a typed error and closes) from
//! [`FrameError::Malformed`] (the frame was delimited and checksummed
//! correctly but its body does not decode — the server consumes exactly
//! that frame, answers `BadRequest` with the frame's id, and keeps the
//! connection).
//!
//! Hot paths (ingest, flush, query) are fully binary. The cold admin
//! reports ([`Response::Health`] / [`Response::Metrics`]) are carried as
//! embedded JSON documents inside the binary frame: they are rare,
//! analyst-facing, and their schema grows every PR — pinning their field
//! order into the binary codec would buy nothing but churn.

use crate::protocol::{
    HealthReport, MetricsReport, Request, RequestEnvelope, Response, ResponseEnvelope, ServerError,
};
use std::fmt;
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_dsm::RegionId;
use trips_store::{
    Alert, DeviceSummary, Flow, Query, QueryRequest, QueryResult, RegionPopularity, RuleTrace,
    SemanticsSelector, StoreStats,
};
use trips_wal::crc32;

/// First byte of every v2 frame. Never valid leading UTF-8, so a v2 frame
/// can never be mistaken for an NDJSON line (or vice versa).
pub const FRAME_MAGIC: u8 = 0xF2;

/// Frame-format version byte (the envelope `v` of the binary protocol).
pub const FRAME_VERSION: u8 = 2;

/// Fixed frame header size: magic, version, payload length, CRC.
pub const HEADER_LEN: usize = 10;

/// Upper bound on a single frame's payload. Mirrors the NDJSON line cap:
/// large enough for a many-thousand-record ingest batch or a full
/// semantics dump, small enough that a corrupt length prefix cannot make
/// the server buffer gigabytes.
pub const MAX_FRAME_PAYLOAD: usize = 32 * 1024 * 1024;

/// Why a byte sequence failed to decode as a v2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First byte was not [`FRAME_MAGIC`] — this is not a v2 frame.
    BadMagic { got: u8 },
    /// Unknown frame-format version; fatal (future versions may change
    /// the header layout, so we cannot even skip the frame).
    UnsupportedVersion { got: u8 },
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`]; fatal.
    TooLarge { len: usize, max: usize },
    /// Payload checksum mismatch; fatal (the stream may be torn anywhere).
    BadCrc,
    /// The frame was well-delimited (header + CRC valid) but the body does
    /// not decode. Recoverable: consume `consumed` bytes, answer
    /// `BadRequest` echoing `id`, keep the connection.
    Malformed {
        id: u64,
        /// Total frame size (header + payload) to consume to resync.
        consumed: usize,
        message: String,
    },
}

impl FrameError {
    /// Whether the connection can survive this error (only body-level
    /// [`FrameError::Malformed`] — everything else loses framing).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, FrameError::Malformed { .. })
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:#04x}"),
            FrameError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported frame version {got} (expected {FRAME_VERSION})"
                )
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            FrameError::BadCrc => write!(f, "frame payload failed CRC check"),
            FrameError::Malformed { id, message, .. } => {
                write!(f, "malformed frame body (id {id}): {message}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------------
// Tag tables — pinned; append-only. Changing an existing tag is a protocol
// break and fails the golden-bytes test.
// ---------------------------------------------------------------------------

mod req_tag {
    pub const PING: u8 = 0;
    pub const INGEST: u8 = 1;
    pub const FLUSH: u8 = 2;
    pub const QUERY: u8 = 3;
    pub const HEALTH: u8 = 4;
    pub const METRICS: u8 = 5;
    pub const SNAPSHOT: u8 = 6;
    pub const SHUTDOWN: u8 = 7;
    pub const SUBSCRIBE: u8 = 8;
    pub const UNSUBSCRIBE: u8 = 9;
    pub const LIST_RULES: u8 = 10;
    pub const METRICS_PROM: u8 = 11;
    pub const TRACE_DUMP: u8 = 12;
    pub const SLOW_LOG: u8 = 13;
}

mod resp_tag {
    pub const PONG: u8 = 0;
    pub const INGESTED: u8 = 1;
    pub const FLUSHED: u8 = 2;
    pub const QUERY: u8 = 3;
    pub const HEALTH: u8 = 4;
    pub const METRICS: u8 = 5;
    pub const SNAPSHOT_SAVED: u8 = 6;
    pub const SHUTTING_DOWN: u8 = 7;
    pub const ERROR: u8 = 8;
    pub const SUBSCRIBED: u8 = 9;
    pub const UNSUBSCRIBED: u8 = 10;
    pub const RULES: u8 = 11;
    pub const ALERT: u8 = 12;
    pub const METRICS_PROM: u8 = 13;
    pub const TRACES: u8 = 14;
    pub const SLOW_LOG: u8 = 15;
}

mod query_tag {
    pub const POPULAR_REGIONS: u8 = 0;
    pub const TOP_FLOWS: u8 = 1;
    pub const DWELL_HISTOGRAM: u8 = 2;
    pub const DEVICE_SUMMARIES: u8 = 3;
    pub const SEMANTICS: u8 = 4;
    pub const STATS: u8 = 5;
}

mod err_tag {
    pub const OVERLOADED: u8 = 0;
    pub const TOO_MANY_CONNECTIONS: u8 = 1;
    pub const BAD_REQUEST: u8 = 2;
    pub const UNSUPPORTED_VERSION: u8 = 3;
    pub const SHUTTING_DOWN: u8 = 4;
    pub const INTERNAL: u8 = 5;
}

// Selector presence bitmask (Query body).
const SEL_PATTERN: u8 = 1 << 0;
const SEL_REGION: u8 = 1 << 1;
const SEL_EVENT: u8 = 1 << 2;
const SEL_RANGE: u8 = 1 << 3;

// ---------------------------------------------------------------------------
// Byte sink / bounds-checked reader (the durability codec's shape).
// ---------------------------------------------------------------------------

struct Buf {
    out: Vec<u8>,
}

impl Buf {
    fn new() -> Self {
        Buf { out: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn i16(&mut self, v: i16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    /// `count u32` prefix for a sequence.
    fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| format!("truncated body: need {n} bytes at offset {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn i16(&mut self) -> DecodeResult<i16> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Borrows a length-prefixed string straight out of the payload —
    /// the zero-copy ingest path reads device ids this way, so a record's
    /// decode allocates nothing.
    fn str_ref(&mut self) -> DecodeResult<&'a str> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| "string is not UTF-8".to_string())
    }

    fn str(&mut self) -> DecodeResult<String> {
        Ok(self.str_ref()?.to_string())
    }

    fn usize_count(&mut self) -> DecodeResult<usize> {
        Ok(self.u32()? as usize)
    }

    fn done(&self) -> DecodeResult<()> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "trailing garbage: {} bytes after body",
                self.data.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Parses a frame header. `Ok(None)` means fewer than [`HEADER_LEN`] bytes
/// are available yet. On success returns `(payload_len, crc)`.
pub fn parse_header(buf: &[u8]) -> Result<Option<(usize, u32)>, FrameError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != FRAME_MAGIC {
        return Err(FrameError::BadMagic { got: buf[0] });
    }
    if buf.len() < 2 {
        return Ok(None);
    }
    if buf[1] != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { got: buf[1] });
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let crc = u32::from_le_bytes(buf[6..10].try_into().unwrap());
    Ok(Some((len, crc)))
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Verifies the CRC of a complete payload slice against its header value.
pub fn check_crc(payload: &[u8], crc: u32) -> Result<(), FrameError> {
    if crc32(payload) == crc {
        Ok(())
    } else {
        Err(FrameError::BadCrc)
    }
}

// ---------------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------------

fn encode_selector(b: &mut Buf, sel: &SemanticsSelector) {
    let mut flags = 0u8;
    if sel.device_pattern.is_some() {
        flags |= SEL_PATTERN;
    }
    if sel.region.is_some() {
        flags |= SEL_REGION;
    }
    if sel.event.is_some() {
        flags |= SEL_EVENT;
    }
    if sel.range.is_some() {
        flags |= SEL_RANGE;
    }
    b.u8(flags);
    if let Some(p) = &sel.device_pattern {
        b.str(p);
    }
    if let Some(r) = sel.region {
        b.u32(r.0);
    }
    if let Some(e) = &sel.event {
        b.str(e);
    }
    if let Some((from, to)) = sel.range {
        b.i64(from.0);
        b.i64(to.0);
    }
}

fn decode_selector(r: &mut Reader) -> DecodeResult<SemanticsSelector> {
    let flags = r.u8()?;
    if flags & !(SEL_PATTERN | SEL_REGION | SEL_EVENT | SEL_RANGE) != 0 {
        return Err(format!("unknown selector flags {flags:#04x}"));
    }
    let mut sel = SemanticsSelector::all();
    if flags & SEL_PATTERN != 0 {
        sel.device_pattern = Some(r.str()?);
    }
    if flags & SEL_REGION != 0 {
        sel.region = Some(RegionId(r.u32()?));
    }
    if flags & SEL_EVENT != 0 {
        sel.event = Some(r.str()?);
    }
    if flags & SEL_RANGE != 0 {
        let from = Timestamp(r.i64()?);
        let to = Timestamp(r.i64()?);
        sel.range = Some((from, to));
    }
    Ok(sel)
}

fn encode_query(b: &mut Buf, q: &Query) {
    match q {
        Query::PopularRegions => b.u8(query_tag::POPULAR_REGIONS),
        Query::TopFlows { limit } => {
            b.u8(query_tag::TOP_FLOWS);
            b.u64(*limit as u64);
        }
        Query::DwellHistogram { bucket } => {
            b.u8(query_tag::DWELL_HISTOGRAM);
            b.i64(bucket.0);
        }
        Query::DeviceSummaries => b.u8(query_tag::DEVICE_SUMMARIES),
        Query::Semantics => b.u8(query_tag::SEMANTICS),
        Query::Stats => b.u8(query_tag::STATS),
    }
}

fn decode_query(r: &mut Reader) -> DecodeResult<Query> {
    match r.u8()? {
        query_tag::POPULAR_REGIONS => Ok(Query::PopularRegions),
        query_tag::TOP_FLOWS => Ok(Query::TopFlows {
            limit: r.u64()? as usize,
        }),
        query_tag::DWELL_HISTOGRAM => Ok(Query::DwellHistogram {
            bucket: Duration(r.i64()?),
        }),
        query_tag::DEVICE_SUMMARIES => Ok(Query::DeviceSummaries),
        query_tag::SEMANTICS => Ok(Query::Semantics),
        query_tag::STATS => Ok(Query::Stats),
        other => Err(format!("unknown query tag {other}")),
    }
}

fn encode_request_payload(env: &RequestEnvelope) -> Vec<u8> {
    let mut b = Buf::new();
    b.u64(env.id);
    match &env.req {
        Request::Ping => b.u8(req_tag::PING),
        Request::Ingest { records } => {
            b.u8(req_tag::INGEST);
            b.count(records.len());
            for rec in records {
                b.str(rec.device.as_str());
                b.f64(rec.location.xy.x);
                b.f64(rec.location.xy.y);
                b.i16(rec.location.floor);
                b.i64(rec.ts.0);
            }
        }
        Request::Flush { device } => {
            b.u8(req_tag::FLUSH);
            match device {
                None => b.u8(0),
                Some(d) => {
                    b.u8(1);
                    b.str(d);
                }
            }
        }
        Request::Query { request } => {
            b.u8(req_tag::QUERY);
            encode_selector(&mut b, &request.selector);
            encode_query(&mut b, &request.query);
        }
        Request::Health => b.u8(req_tag::HEALTH),
        Request::Metrics => b.u8(req_tag::METRICS),
        Request::Snapshot { path } => {
            b.u8(req_tag::SNAPSHOT);
            b.str(path);
        }
        Request::Shutdown => b.u8(req_tag::SHUTDOWN),
        Request::Subscribe { tql } => {
            b.u8(req_tag::SUBSCRIBE);
            b.str(tql);
        }
        Request::Unsubscribe { rule_id } => {
            b.u8(req_tag::UNSUBSCRIBE);
            b.u64(*rule_id);
        }
        Request::ListRules => b.u8(req_tag::LIST_RULES),
        Request::MetricsProm => b.u8(req_tag::METRICS_PROM),
        Request::TraceDump { limit } => {
            b.u8(req_tag::TRACE_DUMP);
            match limit {
                None => b.u8(0),
                Some(n) => {
                    b.u8(1);
                    b.u64(*n as u64);
                }
            }
        }
        Request::SlowLog { limit } => {
            b.u8(req_tag::SLOW_LOG);
            match limit {
                None => b.u8(0),
                Some(n) => {
                    b.u8(1);
                    b.u64(*n as u64);
                }
            }
        }
    }
    b.out
}

/// Encodes a request envelope as one complete v2 frame.
pub fn encode_request_frame(env: &RequestEnvelope) -> Vec<u8> {
    frame(encode_request_payload(env))
}

fn decode_request_payload_inner(r: &mut Reader) -> DecodeResult<Request> {
    let req = match r.u8()? {
        req_tag::PING => Request::Ping,
        req_tag::INGEST => {
            let count = r.usize_count()?;
            let mut records = Vec::new();
            for _ in 0..count {
                let device = DeviceId::new(&r.str()?);
                let x = r.f64()?;
                let y = r.f64()?;
                let floor = r.i16()?;
                let ts = Timestamp(r.i64()?);
                records.push(RawRecord::new(device, x, y, floor, ts));
            }
            Request::Ingest { records }
        }
        req_tag::FLUSH => {
            let device = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => return Err(format!("bad flush flag {other}")),
            };
            Request::Flush { device }
        }
        req_tag::QUERY => {
            let selector = decode_selector(r)?;
            let query = decode_query(r)?;
            Request::Query {
                request: QueryRequest::new(selector, query),
            }
        }
        req_tag::HEALTH => Request::Health,
        req_tag::METRICS => Request::Metrics,
        req_tag::SNAPSHOT => Request::Snapshot { path: r.str()? },
        req_tag::SHUTDOWN => Request::Shutdown,
        req_tag::SUBSCRIBE => Request::Subscribe { tql: r.str()? },
        req_tag::UNSUBSCRIBE => Request::Unsubscribe { rule_id: r.u64()? },
        req_tag::LIST_RULES => Request::ListRules,
        req_tag::METRICS_PROM => Request::MetricsProm,
        req_tag::TRACE_DUMP => {
            let limit = match r.u8()? {
                0 => None,
                1 => Some(r.u64()? as usize),
                other => return Err(format!("bad trace-dump limit flag {other}")),
            };
            Request::TraceDump { limit }
        }
        req_tag::SLOW_LOG => {
            let limit = match r.u8()? {
                0 => None,
                1 => Some(r.u64()? as usize),
                other => return Err(format!("bad slow-log limit flag {other}")),
            };
            Request::SlowLog { limit }
        }
        other => return Err(format!("unknown request tag {other}")),
    };
    r.done()?;
    Ok(req)
}

/// Decodes a request payload (already CRC-checked). `consumed` is the full
/// frame size, threaded into [`FrameError::Malformed`] so the caller can
/// resync past the bad frame.
fn decode_request_payload(payload: &[u8], consumed: usize) -> Result<RequestEnvelope, FrameError> {
    let mut r = Reader::new(payload);
    let id = r.u64().map_err(|message| FrameError::Malformed {
        id: 0,
        consumed,
        message,
    })?;
    let req = decode_request_payload_inner(&mut r).map_err(|message| FrameError::Malformed {
        id,
        consumed,
        message,
    })?;
    Ok(RequestEnvelope {
        v: FRAME_VERSION as u32,
        id,
        req,
    })
}

/// Tries to decode one request frame from the front of `buf`.
///
/// * `Ok(None)` — the frame is incomplete; read more bytes.
/// * `Ok(Some((env, consumed)))` — a full frame decoded; drop `consumed`
///   bytes from the front of the buffer.
/// * `Err(e)` — see [`FrameError::is_recoverable`].
pub fn decode_request_frame(buf: &[u8]) -> Result<Option<(RequestEnvelope, usize)>, FrameError> {
    let Some((len, crc)) = parse_header(buf)? else {
        return Ok(None);
    };
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    check_crc(payload, crc)?;
    let env = decode_request_payload(payload, total)?;
    Ok(Some((env, total)))
}

// ---------------------------------------------------------------------------
// Zero-copy ingest decode
// ---------------------------------------------------------------------------

/// One ingest record parsed *in place* from a v2 frame payload: the device
/// id borrows the connection's read buffer instead of allocating a
/// `String`, and the scalars are copied out of their fixed-width fields.
///
/// This is the borrowed twin of [`trips_data::RawRecord`]; the server
/// resolves `device` against a per-connection intern table and only then
/// materializes the owned record handed to the translator. Views never
/// outlive one parse step — the buffer they borrow is consumed as soon as
/// the frame is dispatched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRecordRef<'a> {
    /// Raw device id, borrowed from the frame payload (validated UTF-8).
    pub device: &'a str,
    /// X coordinate (meters, deployment frame).
    pub x: f64,
    /// Y coordinate (meters, deployment frame).
    pub y: f64,
    /// Floor number.
    pub floor: i16,
    /// Sample timestamp (the raw `i64` of a [`Timestamp`]).
    pub ts: i64,
}

impl RawRecordRef<'_> {
    /// Materializes the owned record (allocates the device id). The
    /// serving path avoids this in favor of its intern table; tests use it
    /// to check the borrowed decode against the owned one.
    pub fn to_record(&self) -> RawRecord {
        RawRecord::new(
            DeviceId::new(self.device),
            self.x,
            self.y,
            self.floor,
            Timestamp(self.ts),
        )
    }
}

/// A v2 `Ingest` frame decoded zero-copy: the correlation id plus record
/// views borrowing the frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestFrameRef<'a> {
    /// Envelope correlation id.
    pub id: u64,
    /// The batch, parsed in place.
    pub records: Vec<RawRecordRef<'a>>,
}

/// One decoded request frame, borrowed where it pays.
///
/// `Ingest` is the hot path — per-record strings dominate its decode cost,
/// so it parses into [`RawRecordRef`] views. Every other request decodes
/// through the owned path (they are rare, small, or both).
#[derive(Debug, PartialEq)]
pub enum RequestFrameRef<'a> {
    /// A v2 `Ingest`, parsed in place.
    Ingest(IngestFrameRef<'a>),
    /// Any other request, decoded to its owned form.
    Owned(RequestEnvelope),
}

/// Parses the body of an `INGEST` payload (tag already consumed) into
/// borrowed views. The pre-allocation is clamped by the bytes actually
/// remaining, so a lying record count cannot balloon memory.
fn decode_ingest_records<'a>(r: &mut Reader<'a>) -> DecodeResult<Vec<RawRecordRef<'a>>> {
    /// Minimum encoded record size: device len prefix + x + y + floor + ts.
    const MIN_RECORD_BYTES: usize = 4 + 8 + 8 + 2 + 8;
    let count = r.usize_count()?;
    let remaining = r.data.len() - r.pos;
    let mut records = Vec::with_capacity(count.min(remaining / MIN_RECORD_BYTES));
    for _ in 0..count {
        let device = r.str_ref()?;
        let x = r.f64()?;
        let y = r.f64()?;
        let floor = r.i16()?;
        let ts = r.i64()?;
        records.push(RawRecordRef {
            device,
            x,
            y,
            floor,
            ts,
        });
    }
    r.done()?;
    Ok(records)
}

/// The zero-copy twin of [`decode_request_frame`]: same contract, same
/// [`FrameError`] taxonomy, same consumed count — but an `Ingest` frame
/// comes back as borrowed [`RawRecordRef`] views instead of owned records.
/// On every input, `Ingest(view)` here and `Request::Ingest { records }`
/// from the owned decode describe the same records (the interop and
/// property tests pin this).
pub fn decode_request_frame_ref(
    buf: &[u8],
) -> Result<Option<(RequestFrameRef<'_>, usize)>, FrameError> {
    let Some((len, crc)) = parse_header(buf)? else {
        return Ok(None);
    };
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    check_crc(payload, crc)?;
    let mut r = Reader::new(payload);
    let id = r.u64().map_err(|message| FrameError::Malformed {
        id: 0,
        consumed: total,
        message,
    })?;
    if r.u8() == Ok(req_tag::INGEST) {
        let records = decode_ingest_records(&mut r).map_err(|message| FrameError::Malformed {
            id,
            consumed: total,
            message,
        })?;
        return Ok(Some((
            RequestFrameRef::Ingest(IngestFrameRef { id, records }),
            total,
        )));
    }
    // Anything else (including a truncated tag byte): the owned decode
    // handles every case and error path identically.
    let env = decode_request_payload(payload, total)?;
    Ok(Some((RequestFrameRef::Owned(env), total)))
}

/// Encodes a pushed alert (correlation id 0) as one complete v2 frame,
/// straight from the borrowed alert — byte-identical to framing
/// `Response::Alert(alert.clone())`, without the clone. The server's
/// fan-out path encodes each alert once this way and refcounts the bytes
/// across subscriber write queues.
pub fn encode_alert_frame(alert: &Alert) -> Vec<u8> {
    let mut b = Buf::new();
    b.u64(0);
    b.u8(resp_tag::ALERT);
    b.str(&serde_json::to_string(alert).expect("alerts always serialize"));
    frame(b.out)
}

// ---------------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------------

fn encode_error(b: &mut Buf, err: &ServerError) {
    match err {
        ServerError::Overloaded { queue_capacity } => {
            b.u8(err_tag::OVERLOADED);
            b.u64(*queue_capacity as u64);
        }
        ServerError::TooManyConnections { limit } => {
            b.u8(err_tag::TOO_MANY_CONNECTIONS);
            b.u64(*limit as u64);
        }
        ServerError::BadRequest { message } => {
            b.u8(err_tag::BAD_REQUEST);
            b.str(message);
        }
        ServerError::UnsupportedVersion { got, want } => {
            b.u8(err_tag::UNSUPPORTED_VERSION);
            b.u32(*got);
            b.u32(*want);
        }
        ServerError::ShuttingDown => b.u8(err_tag::SHUTTING_DOWN),
        ServerError::Internal { message } => {
            b.u8(err_tag::INTERNAL);
            b.str(message);
        }
    }
}

fn decode_error(r: &mut Reader) -> DecodeResult<ServerError> {
    Ok(match r.u8()? {
        err_tag::OVERLOADED => ServerError::Overloaded {
            queue_capacity: r.u64()? as usize,
        },
        err_tag::TOO_MANY_CONNECTIONS => ServerError::TooManyConnections {
            limit: r.u64()? as usize,
        },
        err_tag::BAD_REQUEST => ServerError::BadRequest { message: r.str()? },
        err_tag::UNSUPPORTED_VERSION => ServerError::UnsupportedVersion {
            got: r.u32()?,
            want: r.u32()?,
        },
        err_tag::SHUTTING_DOWN => ServerError::ShuttingDown,
        err_tag::INTERNAL => ServerError::Internal { message: r.str()? },
        other => return Err(format!("unknown error tag {other}")),
    })
}

fn encode_result(b: &mut Buf, result: &QueryResult) {
    match result {
        QueryResult::PopularRegions(rows) => {
            b.u8(query_tag::POPULAR_REGIONS);
            b.count(rows.len());
            for row in rows {
                b.u32(row.region.0);
                b.str(&row.region_name);
                b.u64(row.stays as u64);
                b.u64(row.pass_bys as u64);
                b.u64(row.unique_stayers as u64);
                b.i64(row.total_dwell.0);
            }
        }
        QueryResult::Flows(rows) => {
            b.u8(query_tag::TOP_FLOWS);
            b.count(rows.len());
            for row in rows {
                b.u32(row.from.0);
                b.str(&row.from_name);
                b.u32(row.to.0);
                b.str(&row.to_name);
                b.u64(row.count as u64);
            }
        }
        QueryResult::DwellHistogram(rows) => {
            b.u8(query_tag::DWELL_HISTOGRAM);
            b.count(rows.len());
            for (bucket, count) in rows {
                b.i64(bucket.0);
                b.u64(*count as u64);
            }
        }
        QueryResult::DeviceSummaries(rows) => {
            b.u8(query_tag::DEVICE_SUMMARIES);
            b.count(rows.len());
            for (device, summary) in rows {
                b.str(device.as_str());
                b.str(&summary.device);
                b.u64(summary.regions_visited as u64);
                b.u64(summary.stays as u64);
                b.i64(summary.accounted.0);
            }
        }
        QueryResult::Semantics(rows) => {
            b.u8(query_tag::SEMANTICS);
            b.count(rows.len());
            for s in rows {
                b.str(s.device.as_str());
                b.str(&s.event);
                b.u32(s.region.0);
                b.str(&s.region_name);
                b.i64(s.start.0);
                b.i64(s.end.0);
                b.u8(s.inferred as u8);
                match &s.display_point {
                    None => b.u8(0),
                    Some(p) => {
                        b.u8(1);
                        b.f64(p.xy.x);
                        b.f64(p.xy.y);
                        b.i16(p.floor);
                    }
                }
            }
        }
        QueryResult::Stats(stats) => {
            b.u8(query_tag::STATS);
            b.u64(stats.shards as u64);
            b.u64(stats.devices as u64);
            b.u64(stats.semantics as u64);
            b.u64(stats.regions as u64);
            b.count(stats.devices_per_shard.len());
            for n in &stats.devices_per_shard {
                b.u64(*n as u64);
            }
        }
    }
}

fn decode_result(r: &mut Reader) -> DecodeResult<QueryResult> {
    Ok(match r.u8()? {
        query_tag::POPULAR_REGIONS => {
            let count = r.usize_count()?;
            let mut rows = Vec::new();
            for _ in 0..count {
                rows.push(RegionPopularity {
                    region: RegionId(r.u32()?),
                    region_name: r.str()?,
                    stays: r.u64()? as usize,
                    pass_bys: r.u64()? as usize,
                    unique_stayers: r.u64()? as usize,
                    total_dwell: Duration(r.i64()?),
                });
            }
            QueryResult::PopularRegions(rows)
        }
        query_tag::TOP_FLOWS => {
            let count = r.usize_count()?;
            let mut rows = Vec::new();
            for _ in 0..count {
                rows.push(Flow {
                    from: RegionId(r.u32()?),
                    from_name: r.str()?,
                    to: RegionId(r.u32()?),
                    to_name: r.str()?,
                    count: r.u64()? as usize,
                });
            }
            QueryResult::Flows(rows)
        }
        query_tag::DWELL_HISTOGRAM => {
            let count = r.usize_count()?;
            let mut rows = Vec::new();
            for _ in 0..count {
                let bucket = Duration(r.i64()?);
                let n = r.u64()? as usize;
                rows.push((bucket, n));
            }
            QueryResult::DwellHistogram(rows)
        }
        query_tag::DEVICE_SUMMARIES => {
            let count = r.usize_count()?;
            let mut rows = Vec::new();
            for _ in 0..count {
                let device = DeviceId::new(&r.str()?);
                let summary = DeviceSummary {
                    device: r.str()?,
                    regions_visited: r.u64()? as usize,
                    stays: r.u64()? as usize,
                    accounted: Duration(r.i64()?),
                };
                rows.push((device, summary));
            }
            QueryResult::DeviceSummaries(rows)
        }
        query_tag::SEMANTICS => {
            let count = r.usize_count()?;
            let mut rows = Vec::new();
            for _ in 0..count {
                let device = DeviceId::new(&r.str()?);
                let event = r.str()?;
                let region = RegionId(r.u32()?);
                let region_name = r.str()?;
                let start = Timestamp(r.i64()?);
                let end = Timestamp(r.i64()?);
                let inferred = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad inferred flag {other}")),
                };
                let display_point = match r.u8()? {
                    0 => None,
                    1 => {
                        let x = r.f64()?;
                        let y = r.f64()?;
                        let floor = r.i16()?;
                        Some(trips_geom::IndoorPoint::new(x, y, floor))
                    }
                    other => return Err(format!("bad display-point flag {other}")),
                };
                rows.push(trips_annotate::MobilitySemantics {
                    device,
                    event,
                    region,
                    region_name,
                    start,
                    end,
                    inferred,
                    display_point,
                });
            }
            QueryResult::Semantics(rows)
        }
        query_tag::STATS => {
            let shards = r.u64()? as usize;
            let devices = r.u64()? as usize;
            let semantics = r.u64()? as usize;
            let regions = r.u64()? as usize;
            let count = r.usize_count()?;
            let mut devices_per_shard = Vec::new();
            for _ in 0..count {
                devices_per_shard.push(r.u64()? as usize);
            }
            QueryResult::Stats(StoreStats {
                shards,
                devices,
                semantics,
                regions,
                devices_per_shard,
            })
        }
        other => return Err(format!("unknown result tag {other}")),
    })
}

fn encode_response_payload(env: &ResponseEnvelope) -> Vec<u8> {
    let mut b = Buf::new();
    b.u64(env.id);
    match &env.resp {
        Response::Pong => b.u8(resp_tag::PONG),
        Response::Ingested {
            accepted,
            rejected,
            emitted,
        } => {
            b.u8(resp_tag::INGESTED);
            b.u64(*accepted as u64);
            b.u64(*rejected as u64);
            b.u64(*emitted as u64);
        }
        Response::Flushed { devices, emitted } => {
            b.u8(resp_tag::FLUSHED);
            b.u64(*devices as u64);
            b.u64(*emitted as u64);
        }
        Response::Query { result } => {
            b.u8(resp_tag::QUERY);
            encode_result(&mut b, result);
        }
        Response::Health(report) => {
            b.u8(resp_tag::HEALTH);
            b.str(&serde_json::to_string(report).expect("health reports always serialize"));
        }
        Response::Metrics(report) => {
            b.u8(resp_tag::METRICS);
            b.str(&serde_json::to_string(report).expect("metrics reports always serialize"));
        }
        Response::SnapshotSaved {
            path,
            devices,
            semantics,
        } => {
            b.u8(resp_tag::SNAPSHOT_SAVED);
            b.str(path);
            b.u64(*devices as u64);
            b.u64(*semantics as u64);
        }
        Response::ShuttingDown => b.u8(resp_tag::SHUTTING_DOWN),
        Response::Subscribed { rule_id, name } => {
            b.u8(resp_tag::SUBSCRIBED);
            b.u64(*rule_id);
            b.str(name);
        }
        Response::Unsubscribed { existed } => {
            b.u8(resp_tag::UNSUBSCRIBED);
            b.u8(*existed as u8);
        }
        // Rule traces and alerts ride as embedded JSON like the admin
        // reports: traces are cold, and alert volume is bounded by rule
        // fire rates, not ingest rates.
        Response::Rules { rules } => {
            b.u8(resp_tag::RULES);
            b.str(&serde_json::to_string(rules).expect("rule traces always serialize"));
        }
        Response::Alert(alert) => {
            b.u8(resp_tag::ALERT);
            b.str(&serde_json::to_string(alert).expect("alerts always serialize"));
        }
        // Prometheus text is already a serialized document; span dumps are
        // cold admin reads whose schema (like the reports above) grows —
        // both ride as embedded strings/JSON.
        Response::MetricsProm { text } => {
            b.u8(resp_tag::METRICS_PROM);
            b.str(text);
        }
        Response::Traces { spans } => {
            b.u8(resp_tag::TRACES);
            b.str(&serde_json::to_string(spans).expect("span records always serialize"));
        }
        Response::SlowLog {
            threshold_us,
            evicted,
            spans,
        } => {
            b.u8(resp_tag::SLOW_LOG);
            b.u64(*threshold_us);
            b.u64(*evicted);
            b.str(&serde_json::to_string(spans).expect("span records always serialize"));
        }
        Response::Error(err) => {
            b.u8(resp_tag::ERROR);
            encode_error(&mut b, err);
        }
    }
    b.out
}

/// Encodes a response envelope as one complete v2 frame.
pub fn encode_response_frame(env: &ResponseEnvelope) -> Vec<u8> {
    frame(encode_response_payload(env))
}

fn decode_response_payload_inner(r: &mut Reader) -> DecodeResult<Response> {
    let resp = match r.u8()? {
        resp_tag::PONG => Response::Pong,
        resp_tag::INGESTED => Response::Ingested {
            accepted: r.u64()? as usize,
            rejected: r.u64()? as usize,
            emitted: r.u64()? as usize,
        },
        resp_tag::FLUSHED => Response::Flushed {
            devices: r.u64()? as usize,
            emitted: r.u64()? as usize,
        },
        resp_tag::QUERY => Response::Query {
            result: decode_result(r)?,
        },
        resp_tag::HEALTH => {
            let json = r.str()?;
            let report: HealthReport =
                serde_json::from_str(&json).map_err(|e| format!("embedded health report: {e}"))?;
            Response::Health(report)
        }
        resp_tag::METRICS => {
            let json = r.str()?;
            let report: MetricsReport =
                serde_json::from_str(&json).map_err(|e| format!("embedded metrics report: {e}"))?;
            Response::Metrics(report)
        }
        resp_tag::SNAPSHOT_SAVED => Response::SnapshotSaved {
            path: r.str()?,
            devices: r.u64()? as usize,
            semantics: r.u64()? as usize,
        },
        resp_tag::SHUTTING_DOWN => Response::ShuttingDown,
        resp_tag::SUBSCRIBED => Response::Subscribed {
            rule_id: r.u64()?,
            name: r.str()?,
        },
        resp_tag::UNSUBSCRIBED => Response::Unsubscribed {
            existed: match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(format!("bad existed flag {other}")),
            },
        },
        resp_tag::RULES => {
            let json = r.str()?;
            let rules: Vec<RuleTrace> =
                serde_json::from_str(&json).map_err(|e| format!("embedded rule traces: {e}"))?;
            Response::Rules { rules }
        }
        resp_tag::ALERT => {
            let json = r.str()?;
            let alert: Alert =
                serde_json::from_str(&json).map_err(|e| format!("embedded alert: {e}"))?;
            Response::Alert(alert)
        }
        resp_tag::METRICS_PROM => Response::MetricsProm { text: r.str()? },
        resp_tag::TRACES => {
            let json = r.str()?;
            let spans: Vec<trips_obs::SpanRecord> =
                serde_json::from_str(&json).map_err(|e| format!("embedded span records: {e}"))?;
            Response::Traces { spans }
        }
        resp_tag::SLOW_LOG => {
            let threshold_us = r.u64()?;
            let evicted = r.u64()?;
            let json = r.str()?;
            let spans: Vec<trips_obs::SpanRecord> =
                serde_json::from_str(&json).map_err(|e| format!("embedded span records: {e}"))?;
            Response::SlowLog {
                threshold_us,
                evicted,
                spans,
            }
        }
        resp_tag::ERROR => Response::Error(decode_error(r)?),
        other => return Err(format!("unknown response tag {other}")),
    };
    r.done()?;
    Ok(resp)
}

/// Decodes a response payload whose CRC has already been checked (the
/// client's streaming read path: header, then payload, then this).
pub fn decode_response_payload(payload: &[u8]) -> Result<ResponseEnvelope, FrameError> {
    let consumed = HEADER_LEN + payload.len();
    let mut r = Reader::new(payload);
    let id = r.u64().map_err(|message| FrameError::Malformed {
        id: 0,
        consumed,
        message,
    })?;
    let resp = decode_response_payload_inner(&mut r).map_err(|message| FrameError::Malformed {
        id,
        consumed,
        message,
    })?;
    Ok(ResponseEnvelope {
        v: FRAME_VERSION as u32,
        id,
        resp,
    })
}

/// Tries to decode one response frame from the front of `buf` (see
/// [`decode_request_frame`] for the contract).
pub fn decode_response_frame(buf: &[u8]) -> Result<Option<(ResponseEnvelope, usize)>, FrameError> {
    let Some((len, crc)) = parse_header(buf)? else {
        return Ok(None);
    };
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    check_crc(payload, crc)?;
    let env = decode_response_payload(payload)?;
    Ok(Some((env, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{EndpointMetrics, HealthReport, LoopShardMetrics, MetricsReport};
    use trips_geom::IndoorPoint;
    use trips_store::{StoreHealth, WalStats};

    fn roundtrip_request(req: Request) {
        let env = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 42,
            req,
        };
        let bytes = encode_request_frame(&env);
        let (back, consumed) = decode_request_frame(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, env);
    }

    fn roundtrip_response(resp: Response) {
        let env = ResponseEnvelope {
            v: FRAME_VERSION as u32,
            id: 42,
            resp,
        };
        let bytes = encode_response_frame(&env);
        let (back, consumed) = decode_response_frame(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, env);
    }

    #[test]
    fn request_roundtrip_every_variant() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Ingest {
            records: vec![
                RawRecord::new(DeviceId::new("b0.3a.7f.00.01"), 5.25, -4.5, 2, Timestamp(7)),
                RawRecord::new(DeviceId::new(""), f64::MAX, f64::MIN, -1, Timestamp(-1)),
            ],
        });
        roundtrip_request(Request::Ingest { records: vec![] });
        roundtrip_request(Request::Flush { device: None });
        roundtrip_request(Request::Flush {
            device: Some("b0.3a.7f.00.01".into()),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(
                SemanticsSelector {
                    device_pattern: Some("b0.*".into()),
                    region: Some(RegionId(9)),
                    event: Some("stay".into()),
                    range: Some((Timestamp(100), Timestamp(2_000))),
                },
                Query::TopFlows { limit: 10 },
            ),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(
                SemanticsSelector::all(),
                Query::DwellHistogram {
                    bucket: Duration::from_mins(5),
                },
            ),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(SemanticsSelector::all(), Query::DeviceSummaries),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(SemanticsSelector::all(), Query::Semantics),
        });
        roundtrip_request(Request::Query {
            request: QueryRequest::new(SemanticsSelector::all(), Query::Stats),
        });
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Snapshot {
            path: "snaps/mall.json".into(),
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Subscribe {
            tql: r#"WHEN occupancy(floor 2) > 50 FOR 5m ALERT"#.into(),
        });
        roundtrip_request(Request::Unsubscribe { rule_id: 3 });
        roundtrip_request(Request::ListRules);
        roundtrip_request(Request::MetricsProm);
        roundtrip_request(Request::TraceDump { limit: None });
        roundtrip_request(Request::TraceDump { limit: Some(32) });
        roundtrip_request(Request::SlowLog { limit: None });
        roundtrip_request(Request::SlowLog { limit: Some(8) });
    }

    #[test]
    fn response_roundtrip_every_variant() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Ingested {
            accepted: 10,
            rejected: 1,
            emitted: 4,
        });
        roundtrip_response(Response::Flushed {
            devices: 3,
            emitted: 12,
        });
        roundtrip_response(Response::Query {
            result: QueryResult::PopularRegions(vec![RegionPopularity {
                region: RegionId(3),
                region_name: "shop-3".into(),
                stays: 5,
                pass_bys: 9,
                unique_stayers: 4,
                total_dwell: Duration::from_mins(75),
            }]),
        });
        roundtrip_response(Response::Query {
            result: QueryResult::Flows(vec![Flow {
                from: RegionId(1),
                from_name: "a".into(),
                to: RegionId(2),
                to_name: "b".into(),
                count: 17,
            }]),
        });
        roundtrip_response(Response::Query {
            result: QueryResult::DwellHistogram(vec![
                (Duration::from_mins(5), 3),
                (Duration::from_mins(10), 1),
            ]),
        });
        roundtrip_response(Response::Query {
            result: QueryResult::DeviceSummaries(vec![(
                DeviceId::new("b0.3a.7f.00.01"),
                DeviceSummary {
                    device: "b0.*.01".into(),
                    regions_visited: 4,
                    stays: 2,
                    accounted: Duration::from_mins(30),
                },
            )]),
        });
        roundtrip_response(Response::Query {
            result: QueryResult::Semantics(vec![
                trips_annotate::MobilitySemantics {
                    device: DeviceId::new("d-1"),
                    event: "stay".into(),
                    region: RegionId(7),
                    region_name: "shop-7".into(),
                    start: Timestamp(1_000),
                    end: Timestamp(61_000),
                    inferred: false,
                    display_point: Some(IndoorPoint::new(3.5, 4.5, 1)),
                },
                trips_annotate::MobilitySemantics {
                    device: DeviceId::new("d-1"),
                    event: "pass-by".into(),
                    region: RegionId(8),
                    region_name: "hall".into(),
                    start: Timestamp(61_000),
                    end: Timestamp(61_000),
                    inferred: true,
                    display_point: None,
                },
            ]),
        });
        roundtrip_response(Response::Query {
            result: QueryResult::Stats(StoreStats {
                shards: 4,
                devices: 10,
                semantics: 99,
                regions: 12,
                devices_per_shard: vec![3, 3, 2, 2],
            }),
        });
        roundtrip_response(Response::Health(HealthReport {
            status: "ok".into(),
            uptime_ms: 1234,
            store: StoreHealth {
                shards: 8,
                devices: 2,
                semantics: 7,
            },
            open_devices: 1,
            buffered_records: 20,
            active_connections: 3,
            wal: Some(WalStats {
                segments: 2,
                bytes: 4096,
                records_since_checkpoint: 17,
                last_checkpoint_age_ms: Some(1500),
                fsyncs: 6,
                rotations: 1,
            }),
        }));
        roundtrip_response(Response::Metrics(MetricsReport {
            uptime_ms: 1234,
            connections_accepted: 5,
            connections_rejected: 1,
            active_connections: 2,
            requests: 100,
            shed: 7,
            bad_requests: 2,
            queue_capacity: 64,
            peak_queue_depth: 9,
            ingest_coalesced: 3,
            rss_kb: Some(4096),
            event_backend: "poll".into(),
            loop_shards: vec![
                LoopShardMetrics {
                    shard: 0,
                    connections: 1,
                    pending_completions: 0,
                    wakeups: 9,
                    bytes_read: 2048,
                    jobs: 4,
                },
                LoopShardMetrics {
                    shard: 1,
                    connections: 1,
                    pending_completions: 2,
                    wakeups: 11,
                    bytes_read: 1024,
                    jobs: 2,
                },
            ],
            translator_shards: 4,
            translator_lock_contention: 1,
            endpoints: vec![EndpointMetrics {
                endpoint: "query".into(),
                count: 80,
                ops_per_sec: 123.4,
                p50_us: 40.0,
                p99_us: 900.0,
                max_us: 1500.0,
                mean_us: 80.0,
            }],
            wal: None,
            rules: vec![RuleTrace {
                id: 2,
                name: "crowded".into(),
                priority: 9,
                source: "WHEN occupancy(floor 2) > 50 ALERT".into(),
                evals: 40,
                fires: 2,
                last_eval_ms: Some(1_000),
                last_fire_ms: None,
            }],
            alerts_delivered: 2,
            alerts_dropped: 1,
            slow_requests: 1,
            store_lock_contention: 4,
            rule_evals: 40,
            rule_fires: 2,
            connections_reaped: 1,
            connections_rebalanced: 2,
        }));
        roundtrip_response(Response::MetricsProm {
            text: "# TYPE trips_requests_total counter\ntrips_requests_total 100\n".into(),
        });
        roundtrip_response(Response::Traces {
            spans: vec![trips_obs::SpanRecord {
                id: 11,
                conn: 3,
                shard: 1,
                endpoint: "query".into(),
                kind: "Query".into(),
                unix_ms: 1_700_000_000_123,
                total_us: 250,
                stages_us: vec![0, 1, 2, 3, 4, 5, 6, 7],
            }],
        });
        roundtrip_response(Response::SlowLog {
            threshold_us: 1_000,
            evicted: 2,
            spans: vec![],
        });
        roundtrip_response(Response::SnapshotSaved {
            path: "snaps/mall.json".into(),
            devices: 12,
            semantics: 300,
        });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Subscribed {
            rule_id: 3,
            name: "rule-3".into(),
        });
        roundtrip_response(Response::Unsubscribed { existed: false });
        roundtrip_response(Response::Rules {
            rules: vec![RuleTrace {
                id: 3,
                name: "rule-3".into(),
                priority: 0,
                source: r#"WHEN device ENTERS region "lab-*" ALERT"#.into(),
                evals: 0,
                fires: 0,
                last_eval_ms: None,
                last_fire_ms: None,
            }],
        });
        roundtrip_response(Response::Alert(Alert {
            rule_id: 3,
            rule_name: "rule-3".into(),
            device: Some("b0.3a.7f.00.01".into()),
            region: Some(12),
            region_name: Some("lab-west".into()),
            message: "device entered lab-west".into(),
            at_ms: 36_000_000,
            seq: 1,
        }));
        roundtrip_response(Response::Error(ServerError::Overloaded {
            queue_capacity: 64,
        }));
        roundtrip_response(Response::Error(ServerError::TooManyConnections {
            limit: 4,
        }));
        roundtrip_response(Response::Error(ServerError::BadRequest {
            message: "nope".into(),
        }));
        roundtrip_response(Response::Error(ServerError::UnsupportedVersion {
            got: 9,
            want: 2,
        }));
        roundtrip_response(Response::Error(ServerError::ShuttingDown));
        roundtrip_response(Response::Error(ServerError::Internal {
            message: "disk full".into(),
        }));
    }

    /// Golden bytes: the exact wire encoding of one request/response pair,
    /// pinned. If this test fails, the change broke protocol v2 — bump the
    /// frame version instead of editing the expectation.
    #[test]
    fn golden_bytes_ingest_pair() {
        let req = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 7,
            req: Request::Ingest {
                records: vec![RawRecord::new(
                    DeviceId::new("d-1"),
                    1.5,
                    2.5,
                    0,
                    Timestamp(1000),
                )],
            },
        };
        #[rustfmt::skip]
        let want_payload: Vec<u8> = vec![
            // id 7 u64 le
            7, 0, 0, 0, 0, 0, 0, 0,
            // tag: Ingest
            1,
            // record count u32 le
            1, 0, 0, 0,
            // device "d-1": len u32 le + utf8
            3, 0, 0, 0, b'd', b'-', b'1',
            // x = 1.5 -> bits 0x3FF8000000000000 le
            0, 0, 0, 0, 0, 0, 0xF8, 0x3F,
            // y = 2.5 -> bits 0x4004000000000000 le
            0, 0, 0, 0, 0, 0, 0x04, 0x40,
            // floor i16 le
            0, 0,
            // ts 1000 i64 le
            0xE8, 0x03, 0, 0, 0, 0, 0, 0,
        ];
        let mut want = vec![FRAME_MAGIC, FRAME_VERSION];
        want.extend_from_slice(&(want_payload.len() as u32).to_le_bytes());
        want.extend_from_slice(&crc32(&want_payload).to_le_bytes());
        want.extend_from_slice(&want_payload);
        assert_eq!(encode_request_frame(&req), want);

        let resp = ResponseEnvelope {
            v: FRAME_VERSION as u32,
            id: 7,
            resp: Response::Ingested {
                accepted: 1,
                rejected: 0,
                emitted: 0,
            },
        };
        #[rustfmt::skip]
        let want_payload: Vec<u8> = vec![
            7, 0, 0, 0, 0, 0, 0, 0, // id
            1,                      // tag: Ingested
            1, 0, 0, 0, 0, 0, 0, 0, // accepted
            0, 0, 0, 0, 0, 0, 0, 0, // rejected
            0, 0, 0, 0, 0, 0, 0, 0, // emitted
        ];
        let mut want = vec![FRAME_MAGIC, FRAME_VERSION];
        want.extend_from_slice(&(want_payload.len() as u32).to_le_bytes());
        want.extend_from_slice(&crc32(&want_payload).to_le_bytes());
        want.extend_from_slice(&want_payload);
        assert_eq!(encode_response_frame(&resp), want);
    }

    #[test]
    fn incomplete_frames_ask_for_more_bytes() {
        let env = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 1,
            req: Request::Ping,
        };
        let bytes = encode_request_frame(&env);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_request_frame(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn bad_magic_is_fatal_and_unrecoverable() {
        let err = decode_request_frame(b"{\"v\":1}").unwrap_err();
        assert_eq!(err, FrameError::BadMagic { got: b'{' });
        assert!(!err.is_recoverable());
    }

    #[test]
    fn unknown_frame_version_is_fatal() {
        let err = decode_request_frame(&[FRAME_MAGIC, 9, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, FrameError::UnsupportedVersion { got: 9 });
        assert!(!err.is_recoverable());
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut bytes = vec![FRAME_MAGIC, FRAME_VERSION];
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = decode_request_frame(&bytes).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }), "{err:?}");
        assert!(!err.is_recoverable());
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let env = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 5,
            req: Request::Ping,
        };
        let mut bytes = encode_request_frame(&env);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = decode_request_frame(&bytes).unwrap_err();
        assert_eq!(err, FrameError::BadCrc);
        assert!(!err.is_recoverable());
    }

    #[test]
    fn malformed_body_is_recoverable_with_id_and_consumed() {
        // Valid header + CRC over a payload with a bogus request tag.
        let mut payload = Vec::new();
        payload.extend_from_slice(&99u64.to_le_bytes());
        payload.push(0xEE); // unknown request tag
        let mut bytes = vec![FRAME_MAGIC, FRAME_VERSION];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = decode_request_frame(&bytes).unwrap_err();
        match &err {
            FrameError::Malformed { id, consumed, .. } => {
                assert_eq!(*id, 99, "id recovered before the bad tag");
                assert_eq!(*consumed, bytes.len(), "consumed covers the whole frame");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.is_recoverable());
    }

    #[test]
    fn truncated_body_inside_valid_frame_is_malformed_not_fatal() {
        // An Ingest frame claiming 5 records but carrying none: the frame
        // is delimited + checksummed fine, the *body* is short.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.push(1); // Ingest
        payload.extend_from_slice(&5u32.to_le_bytes()); // count 5, no records
        let mut bytes = vec![FRAME_MAGIC, FRAME_VERSION];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = decode_request_frame(&bytes).unwrap_err();
        assert!(err.is_recoverable(), "{err:?}");
    }

    #[test]
    fn trailing_garbage_after_body_is_malformed() {
        let env = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 2,
            req: Request::Ping,
        };
        let mut payload = encode_request_payload(&env);
        payload.push(0); // one stray byte inside the checksummed payload
        let bytes = frame(payload);
        let err = decode_request_frame(&bytes).unwrap_err();
        assert!(err.is_recoverable(), "{err:?}");
    }

    #[test]
    fn back_to_back_frames_decode_independently() {
        let a = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 1,
            req: Request::Ping,
        };
        let b = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 2,
            req: Request::Health,
        };
        let mut bytes = encode_request_frame(&a);
        bytes.extend_from_slice(&encode_request_frame(&b));
        let (first, consumed) = decode_request_frame(&bytes).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, rest) = decode_request_frame(&bytes[consumed..]).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(consumed + rest, bytes.len());
    }

    /// Decode `bytes` with both decoders and assert they agree exactly:
    /// same progress (None/Some/Err), same consumed count, same envelope
    /// once the borrowed records are materialized.
    fn assert_ref_decode_agrees(bytes: &[u8]) {
        let owned = decode_request_frame(bytes);
        let borrowed = decode_request_frame_ref(bytes);
        match (owned, borrowed) {
            (Ok(None), Ok(None)) => {}
            (Ok(Some((env, n))), Ok(Some((frame_ref, m)))) => {
                assert_eq!(n, m, "consumed counts diverge");
                match frame_ref {
                    RequestFrameRef::Ingest(view) => {
                        assert_eq!(view.id, env.id);
                        let materialized: Vec<RawRecord> =
                            view.records.iter().map(|r| r.to_record()).collect();
                        match env.req {
                            Request::Ingest { records } => assert_eq!(materialized, records),
                            other => panic!("owned decode disagrees on tag: {other:?}"),
                        }
                    }
                    RequestFrameRef::Owned(ref_env) => assert_eq!(ref_env, env),
                }
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (owned, borrowed) => {
                panic!("decoders diverge: owned={owned:?} borrowed={borrowed:?}")
            }
        }
    }

    fn ingest_envelope(id: u64, records: Vec<RawRecord>) -> RequestEnvelope {
        RequestEnvelope {
            v: FRAME_VERSION as u32,
            id,
            req: Request::Ingest { records },
        }
    }

    #[test]
    fn zero_copy_ingest_decode_matches_owned() {
        let cases = vec![
            ingest_envelope(1, vec![]),
            ingest_envelope(
                2,
                vec![RawRecord::new(
                    DeviceId::new("tag-1"),
                    1.5,
                    -2.5,
                    3,
                    Timestamp(1000),
                )],
            ),
            ingest_envelope(
                3,
                vec![
                    RawRecord::new(
                        DeviceId::new(""),
                        f64::MIN,
                        f64::MAX,
                        i16::MIN,
                        Timestamp(i64::MIN),
                    ),
                    RawRecord::new(DeviceId::new("repeat"), 0.0, -0.0, 0, Timestamp(0)),
                    RawRecord::new(
                        DeviceId::new("repeat"),
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        i16::MAX,
                        Timestamp(i64::MAX),
                    ),
                    RawRecord::new(DeviceId::new("unicode-τρίψ"), 9.25, 8.75, -1, Timestamp(42)),
                ],
            ),
        ];
        for env in cases {
            let bytes = encode_request_frame(&env);
            assert_ref_decode_agrees(&bytes);
            // And every truncated prefix makes identical progress (Ok(None)).
            for cut in 0..bytes.len() {
                assert_ref_decode_agrees(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn zero_copy_decode_defers_non_ingest_to_owned_path() {
        let env = RequestEnvelope {
            v: FRAME_VERSION as u32,
            id: 77,
            req: Request::Ping,
        };
        let bytes = encode_request_frame(&env);
        let (frame_ref, consumed) = decode_request_frame_ref(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame_ref, RequestFrameRef::Owned(env));
    }

    #[test]
    fn zero_copy_decode_malformed_parity() {
        // A structurally valid frame whose ingest body lies about its record
        // count: both decoders must report the same recoverable error.
        let mut b = Buf::new();
        b.u64(9);
        b.u8(req_tag::INGEST);
        b.u32(5); // claims 5 records, provides none
        let bytes = frame(b.out);
        assert_ref_decode_agrees(&bytes);
        let err = decode_request_frame_ref(&bytes).unwrap_err();
        assert!(err.is_recoverable(), "{err:?}");

        // A corrupted checksum stays fatal on both paths.
        let env = ingest_envelope(
            4,
            vec![RawRecord::new(
                DeviceId::new("d"),
                1.0,
                2.0,
                0,
                Timestamp(7),
            )],
        );
        let mut bytes = encode_request_frame(&env);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_ref_decode_agrees(&bytes);
        assert!(!decode_request_frame_ref(&bytes)
            .unwrap_err()
            .is_recoverable());
    }

    #[test]
    fn alert_frame_matches_owned_encoding() {
        let alert = Alert {
            rule_id: 3,
            rule_name: "overcrowded".to_string(),
            device: Some("tag-9".to_string()),
            region: Some(12),
            region_name: Some("atrium".to_string()),
            message: "occupancy over threshold".to_string(),
            at_ms: 1_700_000_000_000,
            seq: 41,
        };
        let owned = encode_response_frame(&ResponseEnvelope {
            v: FRAME_VERSION as u32,
            id: 0,
            resp: Response::Alert(alert.clone()),
        });
        assert_eq!(encode_alert_frame(&alert), owned);
    }
}
