//! A blocking client for the serving protocol — used by the e2e tests,
//! the `server_load` generator, and anything embedding a TRIPS server.
//!
//! Speaks either protocol version over the same connection type:
//! NDJSON v1 ([`Client::connect`]) or the binary v2 framing
//! ([`Client::connect_v2`], see [`crate::codec`]); switch per call with
//! [`Client::set_protocol`]. The *read* path is self-describing
//! regardless of the configured version — the first byte distinguishes a
//! binary frame from a JSON line — so a v2 client still understands the
//! v1 rejection line an overloaded server writes before a request is
//! ever sent (`TooManyConnections`).
//!
//! One request in flight at a time (write a message, read a message);
//! the server guarantees per-connection response ordering, so
//! correlation ids are checked but never reordered.
//!
//! ## Timeouts poison the connection
//!
//! By default every call blocks until the server answers. A stalled or
//! wedged server would therefore hang callers forever — bound that with
//! [`Client::set_read_timeout`] (any call) or connect with
//! [`Client::connect_with_timeout`], which bounds the TCP connect *and*
//! installs a read timeout in one step.
//!
//! After any transport error — a timeout included — the connection is
//! **poisoned**: the reply to the timed-out request may still arrive
//! later, and reading it as the answer to the *next* request would pair
//! responses with the wrong calls. Every subsequent call fails fast with
//! an `io::Error` of kind `BrokenPipe` whose source is
//! [`ClientPoisoned`]; reconnect to continue.

use crate::codec::{self, FRAME_MAGIC, HEADER_LEN};
use crate::protocol::{
    decode_response, encode_request, Request, RequestEnvelope, Response, ServerError, PROTOCOL_V2,
    PROTOCOL_VERSION,
};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use trips_data::RawRecord;
use trips_obs::SpanRecord;
use trips_store::{Alert, Query, QueryRequest, QueryResult, RuleTrace, SemanticsSelector};

/// What [`Client::slow_log`] returns on success:
/// `(threshold_us, evicted, spans)`.
pub type SlowLogPayload = (u64, u64, Vec<SpanRecord>);

/// The typed source of the `BrokenPipe` error every call on a poisoned
/// [`Client`] returns. Downcast to distinguish "this connection died
/// earlier" from a fresh transport failure:
///
/// ```ignore
/// match client.ping() {
///     Err(e) if e.get_ref().is_some_and(|s| s.is::<ClientPoisoned>()) => reconnect(),
///     other => ...,
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPoisoned {
    /// What poisoned the connection (the original error, stringified).
    pub reason: String,
}

impl fmt::Display for ClientPoisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "connection poisoned by an earlier transport error ({}); \
             responses can no longer be paired with requests — reconnect",
            self.reason
        )
    }
}

impl std::error::Error for ClientPoisoned {}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    protocol: u32,
    poisoned: Option<String>,
    /// Alerts (id 0, pushed by the server for this connection's standing
    /// rules) that arrived interleaved with a request's response. Drained
    /// by [`Client::recv_alert`] before it touches the socket.
    pending_alerts: VecDeque<Alert>,
}

impl Client {
    /// Connects to a server address (e.g. `handle.addr()` or
    /// `"127.0.0.1:7878"`), speaking NDJSON v1.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects speaking the binary v2 framing. No handshake round-trip:
    /// the server detects the version per message from the first byte.
    pub fn connect_v2(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut client = Self::connect(addr)?;
        client.set_protocol(PROTOCOL_V2)?;
        Ok(client)
    }

    /// Connects with `timeout` bounding the TCP handshake, and installs
    /// the same value as both the read and the write timeout — so
    /// neither a black-holed address, nor a server that accepts but
    /// never replies, nor one that stops *reading* (a blocking
    /// `write_all` of a large batch fills the send buffer and would
    /// otherwise park forever) can hang the caller indefinitely.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let client = Self::from_stream(TcpStream::connect_timeout(&addr, timeout)?)?;
        client.set_read_timeout(Some(timeout))?;
        client.stream.set_write_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 1,
            protocol: PROTOCOL_VERSION,
            poisoned: None,
            pending_alerts: VecDeque::new(),
        })
    }

    /// Selects the wire version for *subsequent* requests:
    /// [`PROTOCOL_VERSION`] (NDJSON) or [`PROTOCOL_V2`] (binary frames).
    /// Versions may be switched mid-connection; the server answers each
    /// message in the framing it arrived in.
    pub fn set_protocol(&mut self, version: u32) -> io::Result<()> {
        match version {
            PROTOCOL_VERSION | PROTOCOL_V2 => {
                self.protocol = version;
                Ok(())
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown protocol version {other} (supported: 1, 2)"),
            )),
        }
    }

    /// The wire version of subsequent requests.
    pub fn protocol(&self) -> u32 {
        self.protocol
    }

    /// Whether an earlier transport error poisoned this connection (every
    /// further call fails fast; see [`ClientPoisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Bounds how long [`Client::call`] blocks waiting for a response
    /// (`None` = wait forever, the default). A timeout surfaces as an
    /// `Err` of kind `WouldBlock`/`TimedOut` **and poisons the
    /// connection** — the late reply would otherwise be read as the
    /// answer to the next request.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response.
    ///
    /// Protocol-level failures (including `Overloaded` shedding) come back
    /// as `Ok(Response::Error(_))` — only transport/framing problems are
    /// `Err`, and any such `Err` poisons the connection (see
    /// [`ClientPoisoned`]). A connection-level rejection written before
    /// any request (`TooManyConnections`) surfaces as the response to the
    /// first call.
    pub fn call(&mut self, req: Request) -> io::Result<Response> {
        if let Some(reason) = &self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                ClientPoisoned {
                    reason: reason.clone(),
                },
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        match self.exchange(id, req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Sends a batch of requests back-to-back in one write, then reads the
    /// responses in order — the client half of response batching: the
    /// server's segmented write queue flushes all N replies with a single
    /// `writev(2)` where the plain [`Client::call`] loop would pay one
    /// round-trip (and one server-side write) per request.
    ///
    /// Responses come back in request order (the server processes one
    /// connection's requests sequentially). Pushed alerts interleaved in
    /// the stream are parked for [`Client::recv_alert`] exactly as in
    /// [`Client::call`]. Any transport `Err` poisons the connection.
    pub fn call_pipelined(&mut self, reqs: Vec<Request>) -> io::Result<Vec<Response>> {
        if let Some(reason) = &self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                ClientPoisoned {
                    reason: reason.clone(),
                },
            ));
        }
        let first_id = self.next_id;
        self.next_id += reqs.len() as u64;
        match self.exchange_pipelined(first_id, reqs) {
            Ok(resps) => Ok(resps),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// The fallible transport half of [`Client::call_pipelined`].
    fn exchange_pipelined(
        &mut self,
        first_id: u64,
        reqs: Vec<Request>,
    ) -> io::Result<Vec<Response>> {
        let n = reqs.len();
        let mut wire = Vec::new();
        for (i, req) in reqs.into_iter().enumerate() {
            let id = first_id + i as u64;
            match self.protocol {
                PROTOCOL_V2 => {
                    wire.extend_from_slice(&codec::encode_request_frame(&RequestEnvelope {
                        v: PROTOCOL_V2,
                        id,
                        req,
                    }));
                }
                _ => {
                    let mut line = encode_request(&RequestEnvelope::new(id, req));
                    line.push('\n');
                    wire.extend_from_slice(line.as_bytes());
                }
            }
        }
        self.stream.write_all(&wire)?;
        let mut resps = Vec::with_capacity(n);
        for i in 0..n {
            let want = first_id + i as u64;
            loop {
                let env = self.read_response()?;
                if env.id == 0 {
                    if let Response::Alert(alert) = env.resp {
                        self.pending_alerts.push_back(alert);
                        continue;
                    }
                }
                if env.id != want && env.id != 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {} does not match request id {want}", env.id),
                    ));
                }
                resps.push(env.resp);
                break;
            }
        }
        Ok(resps)
    }

    /// The fallible transport half of [`Client::call`] (any `Err` here
    /// poisons the connection).
    fn exchange(&mut self, id: u64, req: Request) -> io::Result<Response> {
        match self.protocol {
            PROTOCOL_V2 => {
                let frame = codec::encode_request_frame(&RequestEnvelope {
                    v: PROTOCOL_V2,
                    id,
                    req,
                });
                self.stream.write_all(&frame)?;
            }
            _ => {
                let mut line = encode_request(&RequestEnvelope::new(id, req));
                line.push('\n');
                self.stream.write_all(line.as_bytes())?;
            }
        }
        loop {
            let env = self.read_response()?;
            // Standing-rule alerts are pushed with id 0 and may land
            // between a request and its response; park them for
            // `recv_alert` and keep waiting for the real answer.
            if env.id == 0 {
                if let Response::Alert(alert) = env.resp {
                    self.pending_alerts.push_back(alert);
                    continue;
                }
            }
            // id 0 otherwise marks connection-level errors the server
            // emits unprompted.
            if env.id != id && env.id != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response id {} does not match request id {id}", env.id),
                ));
            }
            return Ok(env.resp);
        }
    }

    /// Reads one response in whichever framing the server used (detected
    /// from the first byte, like the server's own read path).
    fn read_response(&mut self) -> io::Result<crate::protocol::ResponseEnvelope> {
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            buf[0]
        };
        if first == FRAME_MAGIC {
            let mut header = [0u8; HEADER_LEN];
            self.reader.read_exact(&mut header)?;
            let (payload_len, crc) = match codec::parse_header(&header) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => unreachable!("a full header always parses or errors"),
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            };
            let mut payload = vec![0u8; payload_len];
            self.reader.read_exact(&mut payload)?;
            codec::check_crc(&payload, crc)
                .and_then(|()| codec::decode_response_payload(&payload))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        } else {
            let mut reply = String::new();
            let n = self.reader.read_line(&mut reply)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            decode_response(reply.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.call(Request::Ping)
    }

    /// Ingests a batch of raw records.
    pub fn ingest(&mut self, records: Vec<RawRecord>) -> io::Result<Response> {
        self.call(Request::Ingest { records })
    }

    /// Flushes one device's stream buffer — or, with `None`, every device
    /// **this session** has ingested (a flush-all is scoped to the
    /// requesting connection; other sessions' streams are untouched).
    pub fn flush(&mut self, device: Option<&str>) -> io::Result<Response> {
        self.call(Request::Flush {
            device: device.map(str::to_string),
        })
    }

    /// Runs a typed store query; unwraps the result variant.
    pub fn query(&mut self, request: QueryRequest) -> io::Result<Result<QueryResult, ServerError>> {
        match self.call(Request::Query { request })? {
            Response::Query { result } => Ok(Ok(result)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected query response, got {other:?}"),
            )),
        }
    }

    /// Shorthand: query with a selector + kind.
    pub fn query_parts(
        &mut self,
        selector: SemanticsSelector,
        query: Query,
    ) -> io::Result<Result<QueryResult, ServerError>> {
        self.query(QueryRequest::new(selector, query))
    }

    /// Health probe.
    pub fn health(&mut self) -> io::Result<Response> {
        self.call(Request::Health)
    }

    /// Metrics probe.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.call(Request::Metrics)
    }

    /// The server's metric registry in Prometheus text format — the same
    /// payload the standalone HTTP `/metrics` listener serves.
    pub fn metrics_prom(&mut self) -> io::Result<Result<String, ServerError>> {
        match self.call(Request::MetricsProm)? {
            Response::MetricsProm { text } => Ok(Ok(text)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected prometheus metrics response, got {other:?}"),
            )),
        }
    }

    /// Recent request-path span trees from every event-loop shard's trace
    /// ring, oldest first (the newest `limit` when set).
    pub fn trace_dump(
        &mut self,
        limit: Option<usize>,
    ) -> io::Result<Result<Vec<SpanRecord>, ServerError>> {
        match self.call(Request::TraceDump { limit })? {
            Response::Traces { spans } => Ok(Ok(spans)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected trace response, got {other:?}"),
            )),
        }
    }

    /// The slow-request log: `(threshold_us, evicted, spans)`, newest
    /// first.
    pub fn slow_log(
        &mut self,
        limit: Option<usize>,
    ) -> io::Result<Result<SlowLogPayload, ServerError>> {
        match self.call(Request::SlowLog { limit })? {
            Response::SlowLog {
                threshold_us,
                evicted,
                spans,
            } => Ok(Ok((threshold_us, evicted, spans))),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected slow-log response, got {other:?}"),
            )),
        }
    }

    /// Flushes all buffers server-side and persists a snapshot. On a
    /// durable server `path` is ignored (the checkpoint lives in the WAL
    /// directory); otherwise `path` must be relative and resolves inside
    /// the server's configured snapshot root.
    pub fn snapshot(&mut self, path: &str) -> io::Result<Response> {
        self.call(Request::Snapshot {
            path: path.to_string(),
        })
    }

    /// Requests a graceful drain.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(Request::Shutdown)
    }

    /// Registers a standing rule (TQL `WHEN … ALERT …`) on this
    /// connection; returns `(rule_id, name)`. Matching [`Alert`]s are
    /// pushed with correlation id 0 — collect them with
    /// [`Client::recv_alert`]. The rule lives exactly as long as the
    /// connection.
    pub fn subscribe(&mut self, tql: &str) -> io::Result<Result<(u64, String), ServerError>> {
        match self.call(Request::Subscribe {
            tql: tql.to_string(),
        })? {
            Response::Subscribed { rule_id, name } => Ok(Ok((rule_id, name))),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected subscribed response, got {other:?}"),
            )),
        }
    }

    /// Removes a rule this connection registered. `Ok(Ok(false))` means
    /// the id was unknown *to this session* — rules owned by other
    /// connections cannot be removed remotely.
    pub fn unsubscribe(&mut self, rule_id: u64) -> io::Result<Result<bool, ServerError>> {
        match self.call(Request::Unsubscribe { rule_id })? {
            Response::Unsubscribed { existed } => Ok(Ok(existed)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected unsubscribed response, got {other:?}"),
            )),
        }
    }

    /// Evaluation traces for every registered rule, server-wide.
    pub fn list_rules(&mut self) -> io::Result<Result<Vec<RuleTrace>, ServerError>> {
        match self.call(Request::ListRules)? {
            Response::Rules { rules } => Ok(Ok(rules)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected rules response, got {other:?}"),
            )),
        }
    }

    /// Compiles a one-shot TQL `FIND` statement client-side and runs it
    /// as a typed query. Compile errors (including a `WHEN` rule, which
    /// belongs to [`Client::subscribe`]) surface as `InvalidInput` with
    /// the rendered caret diagnostic — nothing is sent.
    pub fn query_tql(&mut self, src: &str) -> io::Result<Result<QueryResult, ServerError>> {
        let request = match trips_query_lang::compile(src) {
            Ok(trips_query_lang::Compiled::Query(request)) => request,
            Ok(trips_query_lang::Compiled::Rule(_)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "`WHEN … ALERT` is a standing rule — use `subscribe`, not `query_tql`",
                ));
            }
            Err(e) => {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, e.render(src)));
            }
        };
        self.query(request)
    }

    /// Waits up to `timeout` for the next pushed [`Alert`]; `Ok(None)` on
    /// a quiet wire. Alerts that arrived interleaved with earlier
    /// responses are returned first without touching the socket. Unlike a
    /// timed-out [`Client::call`], an empty wait does **not** poison the
    /// connection — no request/response pairing is at risk while nothing
    /// is in flight.
    pub fn recv_alert(&mut self, timeout: Duration) -> io::Result<Option<Alert>> {
        if let Some(alert) = self.pending_alerts.pop_front() {
            return Ok(Some(alert));
        }
        if let Some(reason) = &self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                ClientPoisoned {
                    reason: reason.clone(),
                },
            ));
        }
        let prev = self.reader.get_ref().read_timeout()?;
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let outcome = self.try_read_alert();
        self.reader.get_ref().set_read_timeout(prev)?;
        match outcome {
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
            ok => ok,
        }
    }

    /// One bounded read attempt: `Ok(None)` if the wire stayed quiet
    /// before any byte was consumed (safe — the stream is still framed);
    /// any mid-message failure is a real transport error.
    fn try_read_alert(&mut self) -> io::Result<Option<Alert>> {
        match self.reader.fill_buf() {
            Ok([]) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        let env = self.read_response()?;
        match env.resp {
            Response::Alert(alert) if env.id == 0 => Ok(Some(alert)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected message while idle (id {}): {other:?}", env.id),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn timeout_poisons_the_connection() {
        // A "server" that accepts and then never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });

        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let err = client.ping().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "first failure is the timeout itself: {err:?}"
        );
        assert!(client.is_poisoned());

        // Every subsequent call fails fast with the typed poison error —
        // even though the socket itself is still open.
        let err = client.ping().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let source = err.get_ref().expect("poison error carries a source");
        assert!(
            source.is::<ClientPoisoned>(),
            "downcastable poison marker: {source:?}"
        );

        hold.join().unwrap();
    }

    #[test]
    fn protocol_selection_is_validated() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            let _ = listener.accept();
        });
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.protocol(), PROTOCOL_VERSION);
        client.set_protocol(PROTOCOL_V2).unwrap();
        assert_eq!(client.protocol(), PROTOCOL_V2);
        assert!(client.set_protocol(7).is_err());
        assert_eq!(client.protocol(), PROTOCOL_V2, "failed switch is a no-op");
        accept.join().unwrap();
    }
}
