//! A blocking NDJSON client for the serving protocol — used by the e2e
//! tests, the `server_load` generator, and anything embedding a TRIPS
//! server.
//!
//! One request in flight at a time (write a line, read a line); the
//! server guarantees per-connection response ordering, so correlation ids
//! are checked but never reordered.
//!
//! By default every call blocks until the server answers. A stalled or
//! wedged server would therefore hang callers forever — bound that with
//! [`Client::set_read_timeout`] (any call) or connect with
//! [`Client::connect_with_timeout`], which bounds the TCP connect *and*
//! installs a read timeout in one step. A timed-out call surfaces as an
//! `Err` of kind `WouldBlock`/`TimedOut`; the connection should be
//! considered dead afterwards (a late reply would desynchronize the
//! request/response pairing).

use crate::protocol::{
    decode_response, encode_request, Request, RequestEnvelope, Response, ServerError,
};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use trips_data::RawRecord;
use trips_store::{Query, QueryRequest, QueryResult, SemanticsSelector};

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server address (e.g. `handle.addr()` or
    /// `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with `timeout` bounding the TCP handshake, and installs
    /// the same value as both the read and the write timeout — so
    /// neither a black-holed address, nor a server that accepts but
    /// never replies, nor one that stops *reading* (a blocking
    /// `write_all` of a large batch fills the send buffer and would
    /// otherwise park forever) can hang the caller indefinitely.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let client = Self::from_stream(TcpStream::connect_timeout(&addr, timeout)?)?;
        client.set_read_timeout(Some(timeout))?;
        client.stream.set_write_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 1,
        })
    }

    /// Bounds how long [`Client::call`] blocks waiting for a response
    /// (`None` = wait forever, the default). A timeout surfaces as an
    /// `Err` of kind `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and blocks for its response.
    ///
    /// Protocol-level failures (including `Overloaded` shedding) come back
    /// as `Ok(Response::Error(_))` — only transport/framing problems are
    /// `Err`. A connection-level rejection written before any request
    /// (`TooManyConnections`) surfaces as the response to the first call.
    pub fn call(&mut self, req: Request) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = encode_request(&RequestEnvelope::new(id, req));
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let env = decode_response(reply.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        // id 0 marks connection-level errors the server emits unprompted.
        if env.id != id && env.id != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} does not match request id {id}", env.id),
            ));
        }
        Ok(env.resp)
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.call(Request::Ping)
    }

    /// Ingests a batch of raw records.
    pub fn ingest(&mut self, records: Vec<RawRecord>) -> io::Result<Response> {
        self.call(Request::Ingest { records })
    }

    /// Flushes one device's stream buffer (or all with `None`).
    pub fn flush(&mut self, device: Option<&str>) -> io::Result<Response> {
        self.call(Request::Flush {
            device: device.map(str::to_string),
        })
    }

    /// Runs a typed store query; unwraps the result variant.
    pub fn query(&mut self, request: QueryRequest) -> io::Result<Result<QueryResult, ServerError>> {
        match self.call(Request::Query { request })? {
            Response::Query { result } => Ok(Ok(result)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected query response, got {other:?}"),
            )),
        }
    }

    /// Shorthand: query with a selector + kind.
    pub fn query_parts(
        &mut self,
        selector: SemanticsSelector,
        query: Query,
    ) -> io::Result<Result<QueryResult, ServerError>> {
        self.query(QueryRequest::new(selector, query))
    }

    /// Health probe.
    pub fn health(&mut self) -> io::Result<Response> {
        self.call(Request::Health)
    }

    /// Metrics probe.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.call(Request::Metrics)
    }

    /// Flushes all buffers server-side and persists a snapshot to `path`
    /// (a path on the **server's** filesystem).
    pub fn snapshot(&mut self, path: &str) -> io::Result<Response> {
        self.call(Request::Snapshot {
            path: path.to_string(),
        })
    }

    /// Requests a graceful drain.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(Request::Shutdown)
    }
}
