//! # trips-server — the TCP serving layer
//!
//! TRIPS (VLDB 2018) frames translation as the front half of an
//! *interactive service*: raw positioning streams go in, mobility-semantics
//! queries come out. After the sharded store (`trips-store`) and the
//! streaming translator (`trips-core`), this crate adds the missing
//! serving boundary: a dependency-light TCP server on `std::net` speaking
//! a versioned protocol — newline-delimited JSON (v1) and a
//! length-prefixed, CRC-framed binary codec (v2) on the same port,
//! detected per message — absorbing the two-sided workload of large
//! indoor-positioning deployments (many concurrent device streams +
//! ad-hoc analyst queries).
//!
//! * [`protocol`] — the message model: versioned [`RequestEnvelope`] /
//!   [`ResponseEnvelope`], three endpoint families (**ingest**,
//!   **query**, **admin**), typed [`ServerError`]s, and the NDJSON v1
//!   encoding;
//! * [`codec`] — the binary v2 framing: `magic | version | payload_len |
//!   crc32c` headers around a compact field-by-field payload encoding
//!   (the WAL's codec idiom applied to the wire), with a typed
//!   [`FrameError`] split into fatal (desynchronized — close) and
//!   recoverable (bad body in a well-delimited frame — answer and
//!   continue) cases, plus a **zero-copy ingest decode**
//!   ([`decode_request_frame_ref`] / [`RawRecordRef`]) that parses v2
//!   ingest batches as borrowed views straight out of the connection
//!   read buffer;
//! * [`event`] — `poll(2)`/`epoll(7)` readiness multiplexing, the
//!   worker→event-loop [`event::Waker`], and raw `writev(2)` /
//!   `timerfd` bindings for batched flushes and idle-timeout ticks;
//! * [`server`] — [`TripsServer`]: sharded event loops driving every
//!   connection, per-connection sessions with per-device
//!   refcounts, a fixed worker pool behind a **bounded admission queue**
//!   that sheds load ([`ServerError::Overloaded`]) instead of growing,
//!   adaptive ingest micro-batching, segmented write queues flushed via
//!   `writev`, least-loaded acceptor placement with optional idle
//!   connection migration, idle-connection reaping, connection limits,
//!   per-endpoint latency metrics, snapshot save / snapshot boot, and
//!   graceful drain-and-shutdown;
//! * [`client`] — a blocking [`Client`] speaking either protocol version,
//!   for tests, tools and the `server_load` generator;
//! * [`bootstrap`] — DSM + trained-editor assembly from a `trips-sim`
//!   scenario (this repo's stand-in for a surveyed deployment).
//!
//! Ingested record batches run through
//! `trips_core::stream::StreamingTranslator::with_store`, so semantics are
//! queryable **while device streams are still open** — a gap-closed
//! session, an overflowing buffer, an explicit `Flush`, or a client
//! disconnect each publish into the live store without stopping the world.
//!
//! See the repository README ("Serving" and "Wire protocol") for a wire
//! transcript, the framing layout, and the overload semantics.

pub mod bootstrap;
pub mod client;
pub mod codec;
pub mod event;
pub mod protocol;
pub mod queue;
pub mod server;

pub use bootstrap::{bootstrap_scenario, editor_from_truth, ServerBootstrap};
pub use client::{Client, ClientPoisoned, SlowLogPayload};
pub use codec::{
    decode_request_frame, decode_request_frame_ref, decode_response_frame, encode_alert_frame,
    encode_request_frame, encode_response_frame, FrameError, IngestFrameRef, RawRecordRef,
    RequestFrameRef, FRAME_MAGIC, MAX_FRAME_PAYLOAD,
};
pub use event::BackendChoice;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, EndpointMetrics,
    HealthReport, LoopShardMetrics, MetricsReport, Request, RequestEnvelope, Response,
    ResponseEnvelope, ServerError, PROTOCOL_V2, PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    ServerConfig, ServerHandle, ServerReport, TripsServer, DEFAULT_SLOW_LOG,
    DEFAULT_SLOW_THRESHOLD_US, DEFAULT_TRACE_RING,
};
