//! # trips-server — the TCP serving layer
//!
//! TRIPS (VLDB 2018) frames translation as the front half of an
//! *interactive service*: raw positioning streams go in, mobility-semantics
//! queries come out. After the sharded store (`trips-store`) and the
//! streaming translator (`trips-core`), this crate adds the missing
//! serving boundary: a dependency-light TCP server on `std::net` speaking
//! a versioned newline-delimited JSON protocol, absorbing the two-sided
//! workload of large indoor-positioning deployments (many concurrent
//! device streams + ad-hoc analyst queries).
//!
//! * [`protocol`] — the wire format: versioned [`RequestEnvelope`] /
//!   [`ResponseEnvelope`] lines, three endpoint families (**ingest**,
//!   **query**, **admin**) and typed [`ServerError`]s;
//! * [`server`] — [`TripsServer`]: scoped-thread accept loop,
//!   per-connection sessions, a fixed worker pool behind a **bounded
//!   admission queue** that sheds load ([`ServerError::Overloaded`])
//!   instead of growing, connection limits, per-endpoint latency metrics,
//!   snapshot save / snapshot boot, and graceful drain-and-shutdown;
//! * [`client`] — a blocking [`Client`] for tests, tools and the
//!   `server_load` generator;
//! * [`bootstrap`] — DSM + trained-editor assembly from a `trips-sim`
//!   scenario (this repo's stand-in for a surveyed deployment).
//!
//! Ingested record batches run through
//! `trips_core::stream::StreamingTranslator::with_store`, so semantics are
//! queryable **while device streams are still open** — a gap-closed
//! session, an overflowing buffer, an explicit `Flush`, or a client
//! disconnect each publish into the live store without stopping the world.
//!
//! See the repository README ("Serving") for a wire transcript and the
//! overload semantics.

pub mod bootstrap;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use bootstrap::{bootstrap_scenario, editor_from_truth, ServerBootstrap};
pub use client::Client;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, EndpointMetrics,
    HealthReport, MetricsReport, Request, RequestEnvelope, Response, ResponseEnvelope, ServerError,
    PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServerConfig, ServerHandle, ServerReport, TripsServer};
