//! The wire protocol: versioned newline-delimited JSON (NDJSON).
//!
//! Every request and every response is one JSON document on one line,
//! wrapped in an envelope carrying the protocol version and a client-chosen
//! correlation id (echoed back verbatim, so a client can pipeline):
//!
//! ```text
//! C: {"v":1,"id":1,"req":"Ping"}\n
//! S: {"v":1,"id":1,"resp":"Pong"}\n
//! C: {"v":1,"id":2,"req":{"Query":{"request":{"selector":{...},"query":"PopularRegions"}}}}\n
//! S: {"v":1,"id":2,"resp":{"Query":{"result":{"PopularRegions":[...]}}}}\n
//! ```
//!
//! Enums use serde's externally-tagged shape (`"Ping"` for unit variants,
//! `{"Variant": payload}` otherwise). Errors are ordinary responses — the
//! [`Response::Error`] variant carries a typed [`ServerError`], so a client
//! can distinguish *shed* load ([`ServerError::Overloaded`], the 503 of
//! this protocol) from its own mistakes ([`ServerError::BadRequest`]).
//!
//! The three endpoint families:
//!
//! * **ingest** — [`Request::Ingest`] (raw record batches; the server feeds
//!   them through a `StreamingTranslator` publishing into the live store)
//!   and [`Request::Flush`] (translate buffered records now);
//! * **query** — [`Request::Query`], the full typed
//!   [`trips_store::QueryRequest`] surface (selector globs, half-open
//!   windows, every query kind);
//! * **admin** — [`Request::Ping`] / [`Request::Health`] /
//!   [`Request::Metrics`] / [`Request::Snapshot`] / [`Request::Shutdown`]
//!   (graceful drain).

use serde::{Deserialize, Serialize};
use std::fmt;
use trips_data::RawRecord;
use trips_obs::SpanRecord;
use trips_store::{Alert, QueryRequest, QueryResult, RuleTrace, StoreHealth, WalStats};

/// The NDJSON protocol version. An NDJSON envelope with any other `v` is
/// rejected with [`ServerError::UnsupportedVersion`] — including `v: 2`:
/// protocol v2 *is* the binary framing (see [`crate::codec`]), so a v2
/// version number arriving as JSON is a framing mismatch, not a request.
pub const PROTOCOL_VERSION: u32 = 1;

/// The binary protocol version (see [`crate::codec`]). Messages of either
/// version may be interleaved on one connection; the server always answers
/// in the framing the request arrived in.
pub const PROTOCOL_V2: u32 = 2;

/// One client request (the `req` field of a [`RequestEnvelope`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered inline (never queued, never shed).
    Ping,
    /// Ingest a batch of raw positioning records. Records are routed to
    /// per-device streaming buffers; semantics finalized by this batch
    /// (gap-closed or overflowing sessions) become queryable immediately.
    Ingest { records: Vec<RawRecord> },
    /// Force-translate buffered records — one device, or every device when
    /// `device` is `None` — so their semantics become queryable without
    /// waiting for a session gap.
    Flush { device: Option<String> },
    /// A typed store query (selector + query kind).
    Query { request: QueryRequest },
    /// Cheap health/occupancy snapshot; answered inline (never shed), so
    /// health stays observable while the admission queue is saturated.
    Health,
    /// Per-endpoint latency/throughput counters; answered inline.
    Metrics,
    /// Flush every open stream buffer, then persist the store. On a
    /// durable server (`--wal-dir`) this is a **checkpoint + compact**:
    /// the WAL rotates, the checkpoint snapshot is published atomically
    /// inside the durability directory, and older segments are retired —
    /// `path` is ignored and the response carries the real snapshot
    /// path. Without a WAL it is a one-shot atomic persist to `path`.
    Snapshot { path: String },
    /// Graceful drain: stop accepting connections and work, finish queued
    /// requests, flush stream buffers, then exit the serve loop.
    Shutdown,
    /// Register a standing rule (TQL `WHEN … ALERT` text) scoped to this
    /// connection: matching [`Response::Alert`] frames are pushed on this
    /// connection (correlation id 0) as ingest fires the rule, and the
    /// rule is torn down when the connection closes. Answered inline.
    Subscribe { tql: String },
    /// Unregister a rule this connection subscribed. Answered inline.
    Unsubscribe { rule_id: u64 },
    /// Per-rule execution traces for every registered rule (all
    /// connections), priority-ordered. Answered inline.
    ListRules,
    /// The full metric registry rendered in Prometheus text exposition
    /// format — the same payload the standalone HTTP `/metrics` listener
    /// serves, over the native protocol. Answered inline.
    MetricsProm,
    /// Recent request-path span trees from every event-loop shard's trace
    /// ring, oldest first (the newest `limit` when set). Answered inline.
    TraceDump { limit: Option<usize> },
    /// The slow-request log: span trees whose end-to-end latency crossed
    /// the configured slow threshold, newest first. Answered inline.
    SlowLog { limit: Option<usize> },
}

impl Request {
    /// The endpoint family used for metrics bucketing.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Ingest { .. } | Request::Flush { .. } => "ingest",
            Request::Query { .. } => "query",
            _ => "admin",
        }
    }

    /// The variant name, for span/trace labeling.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::Ingest { .. } => "Ingest",
            Request::Flush { .. } => "Flush",
            Request::Query { .. } => "Query",
            Request::Health => "Health",
            Request::Metrics => "Metrics",
            Request::Snapshot { .. } => "Snapshot",
            Request::Shutdown => "Shutdown",
            Request::Subscribe { .. } => "Subscribe",
            Request::Unsubscribe { .. } => "Unsubscribe",
            Request::ListRules => "ListRules",
            Request::MetricsProm => "MetricsProm",
            Request::TraceDump { .. } => "TraceDump",
            Request::SlowLog { .. } => "SlowLog",
        }
    }
}

/// One server response (the `resp` field of a [`ResponseEnvelope`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Pong,
    /// Ingest outcome: `accepted` records buffered, `rejected` malformed
    /// records dropped, `emitted` semantics finalized by this batch.
    Ingested {
        accepted: usize,
        rejected: usize,
        emitted: usize,
    },
    /// Flush outcome: devices flushed and semantics emitted.
    Flushed {
        devices: usize,
        emitted: usize,
    },
    Query {
        result: QueryResult,
    },
    Health(HealthReport),
    Metrics(MetricsReport),
    SnapshotSaved {
        path: String,
        devices: usize,
        semantics: usize,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server drains and exits
    /// after this is written.
    ShuttingDown,
    /// Acknowledges a [`Request::Subscribe`]: the registered rule's id
    /// (used to [`Request::Unsubscribe`]) and its display name.
    Subscribed {
        rule_id: u64,
        name: String,
    },
    /// Acknowledges a [`Request::Unsubscribe`]; `existed` is false when the
    /// id named no rule owned by this connection.
    Unsubscribed {
        existed: bool,
    },
    /// Answer to [`Request::ListRules`].
    Rules {
        rules: Vec<RuleTrace>,
    },
    /// Answer to [`Request::MetricsProm`]: the Prometheus text exposition.
    MetricsProm {
        text: String,
    },
    /// Answer to [`Request::TraceDump`].
    Traces {
        spans: Vec<SpanRecord>,
    },
    /// Answer to [`Request::SlowLog`].
    SlowLog {
        /// The active promotion threshold in microseconds.
        threshold_us: u64,
        /// Slow spans evicted from the log since startup (capacity
        /// pressure; raise the slow-log capacity or the threshold).
        evicted: u64,
        spans: Vec<SpanRecord>,
    },
    /// An unsolicited push: a standing rule subscribed on this connection
    /// fired. Always delivered with correlation id 0 — clients must treat
    /// id-0 `Alert` envelopes as out-of-band, not as the answer to a
    /// pending request.
    Alert(Alert),
    Error(ServerError),
}

impl Response {
    /// Whether this is an error response.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}

/// Typed failure modes, each mapping to a well-known HTTP-ish meaning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerError {
    /// Load shed: the bounded admission queue is full (503). Back off and
    /// retry — nothing was enqueued, server memory stays bounded.
    Overloaded { queue_capacity: usize },
    /// The connection cap is reached; this connection is closed after the
    /// error is written (503).
    TooManyConnections { limit: usize },
    /// Unparseable or malformed request line (400). The offending line is
    /// echoed truncated in `message`.
    BadRequest { message: String },
    /// Envelope `v` is not [`PROTOCOL_VERSION`] (505).
    UnsupportedVersion { got: u32, want: u32 },
    /// The server is draining; no new work is admitted (503).
    ShuttingDown,
    /// Request was valid but execution failed, e.g. a snapshot path that
    /// cannot be written (500).
    Internal { message: String },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { queue_capacity } => {
                write!(f, "overloaded: admission queue full ({queue_capacity})")
            }
            ServerError::TooManyConnections { limit } => {
                write!(f, "too many connections (limit {limit})")
            }
            ServerError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServerError::UnsupportedVersion { got, want } => {
                write!(f, "unsupported protocol version {got} (expected {want})")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Health endpoint payload: store occupancy (via the store's cheap
/// [`trips_store::SemanticsStore::store_stats`] — no full scans) plus the
/// serving side's own vitals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"` or `"draining"`.
    pub status: String,
    pub uptime_ms: u64,
    pub store: StoreHealth,
    /// Devices with buffered (not yet translated) records.
    pub open_devices: usize,
    /// Raw records buffered across those devices.
    pub buffered_records: usize,
    pub active_connections: usize,
    /// WAL occupancy (segment count, bytes, replay debt, checkpoint
    /// age); `None` when the server runs without a durability layer.
    pub wal: Option<WalStats>,
}

/// Latency/throughput summary of one endpoint family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointMetrics {
    pub endpoint: String,
    pub count: usize,
    /// Requests per second over the server's uptime.
    pub ops_per_sec: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    pub mean_us: f64,
}

/// Per-loop-shard vitals: each event-loop shard owns its fds, buffers and
/// waker; these gauges show whether the acceptor's round-robin spread the
/// connection population evenly and whether one shard's completion queue
/// is backing up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopShardMetrics {
    pub shard: usize,
    /// Connections currently owned by this shard.
    pub connections: usize,
    /// Finished jobs handed back by workers, not yet applied by the
    /// shard's loop (a sustained backlog means the shard is saturated).
    pub pending_completions: usize,
    /// Times this shard's waker was signaled (worker completions +
    /// acceptor handoffs).
    pub wakeups: u64,
    /// Bytes this shard's connections read off their sockets — one half
    /// of the observed-load signal behind least-loaded placement.
    #[serde(default)]
    pub bytes_read: u64,
    /// Work jobs this shard queued for the worker pool — the other half
    /// of the observed-load signal.
    #[serde(default)]
    pub jobs: u64,
}

/// Metrics endpoint payload.
///
/// Fields added after protocol v1 carry `#[serde(default)]` so a report
/// emitted by an older server (or a future one with fields this build does
/// not know — unknown keys are ignored on decode) still parses. The core
/// v1 fields stay required: their absence means a different document, not
/// an older peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    pub uptime_ms: u64,
    pub connections_accepted: u64,
    pub connections_rejected: u64,
    pub active_connections: usize,
    pub requests: u64,
    /// Requests rejected with [`ServerError::Overloaded`].
    pub shed: u64,
    pub bad_requests: u64,
    pub queue_capacity: usize,
    /// High-water mark of the admission queue (never exceeds
    /// `queue_capacity` — the bounded-memory invariant).
    pub peak_queue_depth: usize,
    /// Queued `Ingest` jobs a worker executed piggybacked under another
    /// job's translator-lock acquisition (adaptive micro-batching; see
    /// the server docs). 0 means the queue never had adjacent ingests.
    #[serde(default)]
    pub ingest_coalesced: u64,
    /// Resident set size of the serving process in KiB (Linux
    /// `/proc/self/statm`; `None` where that is unavailable). The
    /// connection-scaling gate watches this for flat memory.
    #[serde(default)]
    pub rss_kb: Option<u64>,
    /// The readiness backend the event loops run on (`"epoll"`/`"poll"`).
    #[serde(default)]
    pub event_backend: String,
    /// One entry per event-loop shard.
    #[serde(default)]
    pub loop_shards: Vec<LoopShardMetrics>,
    /// Number of translator-lock shards (FNV device-hash partitioned,
    /// aligned with the store's shard hash).
    #[serde(default)]
    pub translator_shards: usize,
    /// Times a worker found its translator shard's lock held and had to
    /// wait. High values relative to `requests` mean devices are hashing
    /// into too few shards (or one device dominates the stream).
    #[serde(default)]
    pub translator_lock_contention: u64,
    pub endpoints: Vec<EndpointMetrics>,
    /// WAL occupancy; `None` without a durability layer. Tracks the
    /// durability overhead the perf trajectory must watch: segment
    /// growth between checkpoints and how stale the last checkpoint is.
    #[serde(default)]
    pub wal: Option<WalStats>,
    /// Per-rule execution traces (priority-ordered), covering every
    /// standing rule registered via [`Request::Subscribe`].
    #[serde(default)]
    pub rules: Vec<RuleTrace>,
    /// Alerts accepted by subscriber connections' write buffers.
    #[serde(default)]
    pub alerts_delivered: u64,
    /// Alerts dropped (subscriber buffer over its cap or connection gone).
    #[serde(default)]
    pub alerts_dropped: u64,
    /// Requests whose span crossed the slow threshold and were promoted
    /// into the slow-log.
    #[serde(default)]
    pub slow_requests: u64,
    /// Times an ingest found its store shard's write lock contended
    /// (store-side counter; the per-wait time lands in the
    /// `store_publish` span stage).
    #[serde(default)]
    pub store_lock_contention: u64,
    /// Standing-rule condition evaluations across all rules.
    #[serde(default)]
    pub rule_evals: u64,
    /// Standing-rule fires across all rules.
    #[serde(default)]
    pub rule_fires: u64,
    /// Connections closed for sitting idle past the configured
    /// `--idle-timeout` (0 when reaping is off).
    #[serde(default)]
    pub connections_reaped: u64,
    /// Idle connections migrated between loop shards by `--rebalance`.
    #[serde(default)]
    pub connections_rebalanced: u64,
}

/// A request plus version + correlation id — one line on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    pub v: u32,
    pub id: u64,
    pub req: Request,
}

impl RequestEnvelope {
    /// Wraps a request in a current-version envelope.
    pub fn new(id: u64, req: Request) -> Self {
        RequestEnvelope {
            v: PROTOCOL_VERSION,
            id,
            req,
        }
    }
}

/// A response plus version + the echoed correlation id (0 when the request
/// line could not be parsed far enough to recover an id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    pub v: u32,
    pub id: u64,
    pub resp: Response,
}

impl ResponseEnvelope {
    /// Wraps a response in a current-version envelope.
    pub fn new(id: u64, resp: Response) -> Self {
        ResponseEnvelope {
            v: PROTOCOL_VERSION,
            id,
            resp,
        }
    }
}

/// Serializes an envelope to its wire line (no trailing newline).
pub fn encode_request(env: &RequestEnvelope) -> String {
    serde_json::to_string(env).expect("request envelopes always serialize")
}

/// Serializes an envelope to its wire line (no trailing newline).
pub fn encode_response(env: &ResponseEnvelope) -> String {
    serde_json::to_string(env).expect("response envelopes always serialize")
}

/// Serializes a pushed alert to its v1 wire line (no trailing newline)
/// straight from a borrowed [`Alert`] — byte-identical to
/// `encode_response` of an id-0 `Response::Alert` envelope, without
/// cloning the alert. The alert fan-out path encodes once per framing and
/// shares the bytes across subscribers.
pub fn encode_alert_line(alert: &Alert) -> String {
    // The vendored serde derive has no `rename`; the field is named for
    // the wire key it must produce (the externally-tagged `Alert` variant).
    #[allow(non_snake_case)]
    #[derive(Serialize)]
    struct RespRef<'a> {
        Alert: &'a Alert,
    }
    #[derive(Serialize)]
    struct EnvRef<'a> {
        v: u32,
        id: u64,
        resp: RespRef<'a>,
    }
    serde_json::to_string(&EnvRef {
        v: PROTOCOL_VERSION,
        id: 0,
        resp: RespRef { Alert: alert },
    })
    .expect("alerts always serialize")
}

/// Parses one request line. `Err` carries the error response to write back
/// (bad JSON → `BadRequest` with id 0; wrong version → the envelope's own
/// id, so pipelined clients can still correlate).
// The Err is a full envelope by design — it is written to the wire
// immediately, once, on a path that just failed to parse; boxing it
// would buy nothing.
#[allow(clippy::result_large_err)]
pub fn decode_request(line: &str) -> Result<RequestEnvelope, ResponseEnvelope> {
    let env: RequestEnvelope = serde_json::from_str(line).map_err(|e| {
        let mut shown: String = line.chars().take(120).collect();
        if shown.len() < line.len() {
            shown.push('…');
        }
        ResponseEnvelope::new(
            0,
            Response::Error(ServerError::BadRequest {
                message: format!("{e} in {shown:?}"),
            }),
        )
    })?;
    if env.v != PROTOCOL_VERSION {
        return Err(ResponseEnvelope::new(
            env.id,
            Response::Error(ServerError::UnsupportedVersion {
                got: env.v,
                want: PROTOCOL_VERSION,
            }),
        ));
    }
    Ok(env)
}

/// Parses one response line.
pub fn decode_response(line: &str) -> Result<ResponseEnvelope, String> {
    serde_json::from_str(line).map_err(|e| format!("unparseable response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, Duration, Timestamp};
    use trips_store::{Query, SemanticsSelector};

    #[test]
    fn request_roundtrip_every_variant() {
        let requests = vec![
            Request::Ping,
            Request::Ingest {
                records: vec![RawRecord::new(
                    DeviceId::new("b0.3a.7f.00.01"),
                    5.0,
                    4.0,
                    0,
                    Timestamp::from_dhms(0, 10, 0, 0),
                )],
            },
            Request::Flush {
                device: Some("b0.3a.7f.00.01".into()),
            },
            Request::Flush { device: None },
            Request::Query {
                request: QueryRequest::new(
                    SemanticsSelector::all()
                        .with_device_pattern("b0.*")
                        .between(
                            Timestamp::from_dhms(0, 10, 0, 0),
                            Timestamp::from_dhms(0, 16, 0, 0),
                        ),
                    Query::TopFlows { limit: 10 },
                ),
            },
            Request::Health,
            Request::Metrics,
            Request::Snapshot {
                path: "/tmp/snap.json".into(),
            },
            Request::Shutdown,
            Request::Subscribe {
                tql: r#"WHEN device ENTERS region "lab-*" ALERT"#.into(),
            },
            Request::Unsubscribe { rule_id: 7 },
            Request::ListRules,
            Request::MetricsProm,
            Request::TraceDump { limit: Some(16) },
            Request::TraceDump { limit: None },
            Request::SlowLog { limit: None },
        ];
        for (i, req) in requests.into_iter().enumerate() {
            let env = RequestEnvelope::new(i as u64, req);
            let line = encode_request(&env);
            assert!(!line.contains('\n'), "one line per request: {line}");
            let back = decode_request(&line).unwrap();
            assert_eq!(back, env, "{line}");
        }
    }

    #[test]
    fn response_roundtrip_every_variant() {
        let responses = vec![
            Response::Pong,
            Response::Ingested {
                accepted: 10,
                rejected: 1,
                emitted: 4,
            },
            Response::Flushed {
                devices: 3,
                emitted: 12,
            },
            Response::Health(HealthReport {
                status: "ok".into(),
                uptime_ms: 1234,
                store: trips_store::StoreHealth {
                    shards: 8,
                    devices: 2,
                    semantics: 7,
                },
                open_devices: 1,
                buffered_records: 20,
                active_connections: 3,
                wal: Some(WalStats {
                    segments: 2,
                    bytes: 4096,
                    records_since_checkpoint: 17,
                    last_checkpoint_age_ms: Some(1500),
                    fsyncs: 9,
                    rotations: 1,
                }),
            }),
            Response::Metrics(MetricsReport {
                uptime_ms: 1234,
                connections_accepted: 5,
                connections_rejected: 1,
                active_connections: 2,
                requests: 100,
                shed: 7,
                bad_requests: 2,
                queue_capacity: 64,
                peak_queue_depth: 9,
                ingest_coalesced: 5,
                rss_kb: Some(10_240),
                event_backend: "epoll".into(),
                loop_shards: vec![LoopShardMetrics {
                    shard: 0,
                    connections: 2,
                    pending_completions: 1,
                    wakeups: 42,
                    bytes_read: 4096,
                    jobs: 7,
                }],
                translator_shards: 8,
                translator_lock_contention: 3,
                endpoints: vec![EndpointMetrics {
                    endpoint: "query".into(),
                    count: 80,
                    ops_per_sec: 123.4,
                    p50_us: 40.0,
                    p99_us: 900.0,
                    max_us: 1500.0,
                    mean_us: 80.0,
                }],
                wal: Some(WalStats {
                    segments: 1,
                    bytes: 16,
                    records_since_checkpoint: 0,
                    last_checkpoint_age_ms: None,
                    fsyncs: 3,
                    rotations: 0,
                }),
                rules: vec![RuleTrace {
                    id: 1,
                    name: "crowded".into(),
                    priority: 9,
                    source: "WHEN occupancy(floor 2) > 50 ALERT".into(),
                    evals: 120,
                    fires: 3,
                    last_eval_ms: Some(86_400_000),
                    last_fire_ms: Some(82_800_000),
                }],
                alerts_delivered: 3,
                alerts_dropped: 0,
                slow_requests: 2,
                store_lock_contention: 1,
                rule_evals: 120,
                rule_fires: 3,
                connections_reaped: 1,
                connections_rebalanced: 4,
            }),
            Response::SnapshotSaved {
                path: "/tmp/snap.json".into(),
                devices: 12,
                semantics: 300,
            },
            Response::ShuttingDown,
            Response::Subscribed {
                rule_id: 3,
                name: "crowded".into(),
            },
            Response::Unsubscribed { existed: true },
            Response::Rules {
                rules: vec![RuleTrace {
                    id: 3,
                    name: "crowded".into(),
                    priority: 0,
                    source: r#"WHEN device ENTERS region "lab-*" ALERT"#.into(),
                    evals: 0,
                    fires: 0,
                    last_eval_ms: None,
                    last_fire_ms: None,
                }],
            },
            Response::MetricsProm {
                text: "# TYPE trips_requests_total counter\ntrips_requests_total 5\n".into(),
            },
            Response::Traces {
                spans: vec![SpanRecord {
                    id: 7,
                    conn: 2,
                    shard: 0,
                    endpoint: "ingest".into(),
                    kind: "Ingest".into(),
                    unix_ms: 1_700_000_000_000,
                    total_us: 850,
                    stages_us: vec![1, 2, 3, 4, 5, 6, 7, 8],
                }],
            },
            Response::SlowLog {
                threshold_us: 500,
                evicted: 0,
                spans: vec![],
            },
            Response::Alert(Alert {
                rule_id: 3,
                rule_name: "crowded".into(),
                device: Some("b0.3a.7f.00.01".into()),
                region: Some(12),
                region_name: Some("lab-west".into()),
                message: "device entered lab-west".into(),
                at_ms: 36_000_000,
                seq: 1,
            }),
            Response::Error(ServerError::Overloaded { queue_capacity: 64 }),
            Response::Error(ServerError::TooManyConnections { limit: 4 }),
            Response::Error(ServerError::BadRequest {
                message: "nope".into(),
            }),
            Response::Error(ServerError::UnsupportedVersion { got: 9, want: 1 }),
            Response::Error(ServerError::ShuttingDown),
            Response::Error(ServerError::Internal {
                message: "disk full".into(),
            }),
        ];
        for (i, resp) in responses.into_iter().enumerate() {
            let env = ResponseEnvelope::new(i as u64, resp);
            let line = encode_response(&env);
            assert!(!line.contains('\n'), "one line per response: {line}");
            let back = decode_response(&line).unwrap();
            assert_eq!(back, env, "{line}");
        }
    }

    #[test]
    fn bad_json_yields_bad_request_with_id_zero() {
        let err = decode_request("{not json").unwrap_err();
        assert_eq!(err.id, 0);
        match err.resp {
            Response::Error(ServerError::BadRequest { message }) => {
                assert!(message.contains("{not json"), "{message}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        // A valid JSON document of the wrong shape is also a bad request.
        let err = decode_request(r#"{"hello":"world"}"#).unwrap_err();
        assert!(matches!(
            err.resp,
            Response::Error(ServerError::BadRequest { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected_with_correlation_id() {
        let env = RequestEnvelope {
            v: 99,
            id: 42,
            req: Request::Ping,
        };
        let err = decode_request(&encode_request(&env)).unwrap_err();
        assert_eq!(err.id, 42, "version errors keep the correlation id");
        assert_eq!(
            err.resp,
            Response::Error(ServerError::UnsupportedVersion { got: 99, want: 1 })
        );
    }

    #[test]
    fn very_long_bad_line_is_truncated_in_the_error() {
        let line = "x".repeat(100_000);
        let err = decode_request(&line).unwrap_err();
        match err.resp {
            Response::Error(ServerError::BadRequest { message }) => {
                assert!(message.len() < 400, "error echo bounded: {}", message.len());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    /// A v1-era client must parse a metrics report from a *newer* server:
    /// unknown keys are ignored, and fields the older wire shape omits
    /// fall back to their defaults instead of failing the decode.
    #[test]
    fn metrics_report_is_forward_compatible() {
        // A newer server's report with a field this build has never
        // heard of: decoding ignores it.
        let env = ResponseEnvelope::new(
            3,
            Response::Metrics(MetricsReport {
                uptime_ms: 9,
                connections_accepted: 1,
                connections_rejected: 0,
                active_connections: 1,
                requests: 4,
                shed: 0,
                bad_requests: 0,
                queue_capacity: 64,
                peak_queue_depth: 1,
                ingest_coalesced: 0,
                rss_kb: None,
                event_backend: "poll".into(),
                loop_shards: vec![],
                translator_shards: 8,
                translator_lock_contention: 0,
                endpoints: vec![],
                wal: None,
                rules: vec![],
                alerts_delivered: 0,
                alerts_dropped: 0,
                slow_requests: 0,
                store_lock_contention: 0,
                rule_evals: 0,
                rule_fires: 0,
                connections_reaped: 0,
                connections_rebalanced: 0,
            }),
        );
        let line = encode_response(&env);
        let with_unknown = line.replacen(
            "\"uptime_ms\":",
            "\"metric_from_the_future\":{\"nested\":[1,2]},\"uptime_ms\":",
            1,
        );
        assert_ne!(line, with_unknown, "injection must have happened");
        let back = decode_response(&with_unknown).unwrap();
        assert_eq!(back, env, "unknown fields are ignored");

        // An *older* server's report omitting every post-v1 field still
        // parses; the omitted fields take their defaults.
        let v1_line = r#"{"v":1,"id":3,"resp":{"Metrics":{
            "uptime_ms":9,"connections_accepted":1,"connections_rejected":0,
            "active_connections":1,"requests":4,"shed":0,"bad_requests":0,
            "queue_capacity":64,"peak_queue_depth":1,"endpoints":[]}}}"#
            .replace('\n', "");
        let back = decode_response(&v1_line).unwrap();
        match back.resp {
            Response::Metrics(report) => {
                assert_eq!(report.requests, 4);
                assert_eq!(report.event_backend, "");
                assert_eq!(report.rss_kb, None);
                assert!(report.loop_shards.is_empty());
                assert_eq!(report.rule_evals, 0);
                assert_eq!(report.store_lock_contention, 0);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn endpoint_families() {
        assert_eq!(Request::Ping.endpoint(), "admin");
        assert_eq!(Request::Health.endpoint(), "admin");
        assert_eq!(Request::Shutdown.endpoint(), "admin");
        assert_eq!(Request::ListRules.endpoint(), "admin");
        assert_eq!(
            Request::Subscribe { tql: String::new() }.endpoint(),
            "admin"
        );
        assert_eq!(Request::Unsubscribe { rule_id: 1 }.endpoint(), "admin");
        assert_eq!(Request::MetricsProm.endpoint(), "admin");
        assert_eq!(Request::TraceDump { limit: None }.endpoint(), "admin");
        assert_eq!(Request::SlowLog { limit: None }.endpoint(), "admin");
        assert_eq!(Request::Ingest { records: vec![] }.endpoint(), "ingest");
        assert_eq!(Request::Flush { device: None }.endpoint(), "ingest");
        assert_eq!(
            Request::Query {
                request: QueryRequest::new(
                    SemanticsSelector::all(),
                    Query::DwellHistogram {
                        bucket: Duration::from_mins(5)
                    }
                )
            }
            .endpoint(),
            "query"
        );
    }

    #[test]
    fn alert_line_matches_owned_envelope_encoding() {
        let alert = Alert {
            rule_id: 7,
            rule_name: "crowding".to_string(),
            device: Some("tag-3".to_string()),
            region: Some(4),
            region_name: None,
            message: "threshold crossed".to_string(),
            at_ms: 123_456,
            seq: 2,
        };
        let owned = encode_response(&ResponseEnvelope::new(0, Response::Alert(alert.clone())));
        assert_eq!(encode_alert_line(&alert), owned);
    }
}
