//! Adaptive loop-shard placement and `--rebalance` migration: the
//! acceptor places new connections on the least-loaded shard, and with
//! rebalancing enabled a skewed shard migrates fully-idle connections
//! toward the emptiest one between laps — counted in
//! `connections_rebalanced`, with the migrated sockets staying live.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_server::{bootstrap_scenario, Client, Response, ServerConfig, TripsServer};
use trips_sim::ScenarioConfig;

#[test]
fn idle_connections_migrate_off_a_skewed_shard() {
    let boot = bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0xBA1A,
            ..ScenarioConfig::default()
        },
    );
    let handle = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            loop_shards: 2,
            rebalance: true,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = handle.addr();

    // One connection hammers ingest so its shard's observed load (bytes +
    // jobs) dominates; while it is hot, every new connection is placed on
    // the other shard — manufacturing a 1-vs-N connection skew.
    let stop = AtomicBool::new(false);
    let mut held: Vec<Client> = Vec::new();
    std::thread::scope(|s| {
        let stop = &stop;
        s.spawn(move || {
            let mut hot = Client::connect(addr).unwrap();
            let records: Vec<RawRecord> = (0..50)
                .map(|i| {
                    RawRecord::new(
                        DeviceId::new("3a.7f.00.01"),
                        1.0 + i as f64 * 0.1,
                        2.0,
                        0,
                        Timestamp::from_millis(i * 1000),
                    )
                })
                .collect();
            while !stop.load(Ordering::Relaxed) {
                let _ = hot.ingest(records.clone());
            }
        });
        // Held idle connections, opened while the hot shard is busy.
        std::thread::sleep(Duration::from_millis(200));
        for _ in 0..4 {
            held.push(Client::connect(addr).unwrap());
        }
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });

    // With ingest stopped the skewed shard should migrate idle
    // connections until the spread is within one; poll the metric.
    let mut observer = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut rebalanced = 0;
    while Instant::now() < deadline {
        match observer.metrics().unwrap() {
            Response::Metrics(m) => {
                rebalanced = m.connections_rebalanced;
                if rebalanced >= 1 {
                    break;
                }
            }
            other => panic!("metrics failed: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    assert!(
        rebalanced >= 1,
        "expected at least one idle connection to migrate between loop shards"
    );

    // Migrated connections must still be fully serviceable.
    for client in &mut held {
        match client.ping().unwrap() {
            Response::Pong => {}
            other => panic!("ping after migration failed: {other:?}"),
        }
    }
    handle.shutdown().unwrap();
}
