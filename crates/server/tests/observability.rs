//! Observability-layer tests: scrape `GET /metrics` under live load,
//! verify the exposition stays valid and monotonic, exercise the
//! slow-log / trace-dump endpoints on both protocol versions, and check
//! the HTTP responder's routing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;
use trips_data::{DeviceId, RawRecord};
use trips_obs::{validate_exposition, STAGE_COUNT};
use trips_server::{
    bootstrap_scenario, Client, Response, ServerBootstrap, ServerConfig, TripsServer,
};
use trips_sim::ScenarioConfig;
use trips_store::{Query, QueryRequest, SemanticsSelector};

const FLOORS: u16 = 1;
const SHOPS: usize = 3;

fn scenario(devices: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        devices,
        days: 1,
        seed,
        ..ScenarioConfig::default()
    }
}

fn deployment() -> ServerBootstrap {
    bootstrap_scenario(FLOORS, SHOPS, &scenario(3, 0x0B5E))
}

/// `(device, records)` traffic matching the deployment's layout.
fn traffic(devices: usize, seed: u64) -> Vec<(DeviceId, Vec<RawRecord>)> {
    let campus = trips_sim::scenario::generate_campus(1, FLOORS, SHOPS, &scenario(devices, seed));
    campus.buildings[0]
        .dataset
        .traces
        .iter()
        .map(|t| (t.device.clone(), t.raw.records().to_vec()))
        .collect()
}

/// One blocking HTTP/1.0 request against the metrics listener; returns
/// `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn http_metrics_endpoint_serves_valid_exposition_and_404s_elsewhere() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let metrics = handle.metrics_addr().expect("metrics listener bound");

    // A little traffic so the latency histograms have samples.
    let mut client = Client::connect(handle.addr()).unwrap();
    for (_, records) in traffic(2, 0xFACE) {
        for batch in records.chunks(200) {
            assert!(matches!(
                client.ingest(batch.to_vec()).unwrap(),
                Response::Ingested { .. }
            ));
        }
    }

    let (status, body) = http_get(metrics, "/metrics");
    assert!(status.contains("200"), "status line: {status}");
    let parsed = validate_exposition(&body).expect("exposition parses");
    for family in [
        "trips_requests_total",
        "trips_connections_active",
        "trips_translator_shards",
        "trips_store_devices",
        "trips_rule_evals_total",
        "trips_slow_requests_total",
        "trips_loop_shard_connections{shard=\"0\"}",
        "trips_request_latency_us_count{endpoint=\"ingest\"}",
    ] {
        assert!(
            parsed.contains_key(family),
            "missing series {family} in:\n{body}"
        );
    }
    assert!(
        parsed["trips_request_latency_us_count{endpoint=\"ingest\"}"] >= 1.0,
        "ingest latency histogram saw the batches"
    );
    assert!(body.contains("# TYPE trips_request_latency_us histogram"));

    let (status, body) = http_get(metrics, "/definitely-not-metrics");
    assert!(status.contains("404"), "status line: {status}");
    assert!(body.contains("/metrics"));

    // The same payload is served over the native protocol, and it names
    // the same families.
    let over_wire = client.metrics_prom().unwrap().expect("MetricsProm ok");
    let wire_parsed = validate_exposition(&over_wire).expect("wire exposition parses");
    assert!(wire_parsed.contains_key("trips_requests_total"));

    handle.shutdown().unwrap();
}

#[test]
fn scraping_under_live_load_stays_valid_and_monotonic() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let metrics = handle.metrics_addr().unwrap();

    let stop = AtomicBool::new(false);
    let request_errors = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Ingest load: loop the traffic until the scraper is done.
        s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            let flows = traffic(3, 0xD00D);
            'outer: loop {
                for (_, records) in &flows {
                    for batch in records.chunks(50) {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        match client.ingest(batch.to_vec()) {
                            Ok(Response::Ingested { .. }) => {}
                            _ => {
                                request_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        });
        // Query load on a second connection.
        s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                let req = QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions);
                match client.query(req) {
                    Ok(Ok(_)) => {}
                    _ => {
                        request_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        });

        // Scrape repeatedly while both are running: every exposition must
        // parse and every counter must be monotonic scrape over scrape.
        let mut last = validate_exposition(&http_get(metrics, "/metrics").1).unwrap();
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(50));
            let (status, body) = http_get(metrics, "/metrics");
            assert!(status.contains("200"));
            let parsed = validate_exposition(&body).expect("mid-load exposition parses");
            for series in [
                "trips_requests_total",
                "trips_connections_accepted_total",
                "trips_request_latency_us_count{endpoint=\"ingest\"}",
                "trips_request_latency_us_count{endpoint=\"query\"}",
                "trips_rule_evals_total",
                "trips_wal_fsyncs_total",
            ] {
                // WAL families only exist on durable servers — skip those.
                let (Some(now), Some(before)) = (parsed.get(series), last.get(series)) else {
                    continue;
                };
                assert!(now >= before, "{series} went backwards: {before} -> {now}");
            }
            assert!(parsed["trips_requests_total"] >= 1.0);
            last = parsed;
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        request_errors.load(Ordering::Relaxed),
        0,
        "scraping must not disturb request traffic"
    );
    handle.shutdown().unwrap();
}

#[test]
fn zero_threshold_slow_log_captures_full_span_trees_on_both_wires() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            // Promote *every* request: the trace-one-request switch.
            slow_threshold_us: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let flows = traffic(2, 0xBEEF);
    let (_, records) = &flows[0];
    assert!(matches!(
        client
            .ingest(records[..100.min(records.len())].to_vec())
            .unwrap(),
        Response::Ingested { .. }
    ));
    let req = QueryRequest::new(SemanticsSelector::all(), Query::Semantics);
    client.query(req).unwrap().unwrap();

    let (threshold_us, _evicted, spans) = client.slow_log(None).unwrap().expect("SlowLog ok");
    assert_eq!(threshold_us, 0);
    let ingest_span = spans
        .iter()
        .find(|s| s.kind == "Ingest")
        .expect("ingest span promoted at threshold 0");
    assert_eq!(ingest_span.endpoint, "ingest");
    assert_eq!(
        ingest_span.stages_us.len(),
        STAGE_COUNT,
        "every pipeline stage present in the span tree"
    );
    assert!(ingest_span.total_us > 0, "total covers parse -> reply");
    assert!(ingest_span.unix_ms > 0, "wall-clock correlation stamp");
    // The end-to-end total includes the queue/worker hop, so it is at
    // least the measured queue wait.
    assert!(ingest_span.total_us >= ingest_span.stage_us("queue_wait").unwrap());
    let query_span = spans
        .iter()
        .find(|s| s.kind == "Query")
        .expect("query span promoted at threshold 0");
    assert_eq!(query_span.endpoint, "query");

    // The trace rings hold the same spans (plus inline admin ones), and
    // both protocol versions serve them.
    let traces = client.trace_dump(None).unwrap().expect("TraceDump ok");
    assert!(traces.iter().any(|s| s.kind == "Ingest"));
    let mut v2 = Client::connect_v2(handle.addr()).unwrap();
    let (t2, _, spans2) = v2.slow_log(Some(1000)).unwrap().expect("v2 SlowLog ok");
    assert_eq!(t2, 0);
    assert!(spans2.iter().any(|s| s.kind == "Ingest"));
    let traces2 = v2.trace_dump(Some(5)).unwrap().expect("v2 TraceDump ok");
    assert!(traces2.len() <= 5, "limit caps the dump");

    // Admin requests answered inline also appear in the rings.
    client.metrics().unwrap();
    let traces = client.trace_dump(None).unwrap().unwrap();
    assert!(traces.iter().any(|s| s.endpoint == "admin"));

    // Metrics report mirrors the slow-log promotion counter.
    match client.metrics().unwrap() {
        Response::Metrics(report) => {
            assert!(report.slow_requests > 0, "promotions counted");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    handle.shutdown().unwrap();
}
