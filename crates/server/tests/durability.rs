//! End-to-end durability: a WAL-backed server recovers its queryable
//! state across restarts (with and without checkpoints), `Snapshot`
//! means checkpoint+compact, `Health`/`Metrics` expose WAL occupancy,
//! and the blocking client's read timeout keeps a stalled server from
//! hanging callers.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration as StdDuration, Instant};
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_server::{
    bootstrap_scenario, Client, Response, ServerBootstrap, ServerConfig, TripsServer,
};
use trips_sim::ScenarioConfig;
use trips_store::{DurabilityConfig, Query, QueryRequest, QueryResult, SemanticsSelector};

const FLOORS: u16 = 1;
const SHOPS: usize = 3;

fn scenario(devices: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        devices,
        days: 1,
        seed,
        ..ScenarioConfig::default()
    }
}

/// Training is deterministic per seed, so "restart" = bootstrap again.
fn deployment() -> ServerBootstrap {
    bootstrap_scenario(FLOORS, SHOPS, &scenario(4, 0x5EED))
}

fn traffic(seed: u64) -> Vec<(DeviceId, Vec<RawRecord>)> {
    let campus = trips_sim::scenario::generate_campus(2, FLOORS, SHOPS, &scenario(4, seed));
    campus
        .buildings
        .iter()
        .flat_map(|b| {
            b.dataset
                .traces
                .iter()
                .map(|t| (t.device.clone(), t.raw.records().to_vec()))
        })
        .collect()
}

fn queries_to_compare() -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(SemanticsSelector::all(), Query::Semantics),
        QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
        QueryRequest::new(SemanticsSelector::all(), Query::TopFlows { limit: 50 }),
        QueryRequest::new(
            SemanticsSelector::all(),
            Query::DwellHistogram {
                bucket: Duration::from_mins(5),
            },
        ),
        QueryRequest::new(SemanticsSelector::all(), Query::DeviceSummaries),
        QueryRequest::new(
            SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            ),
            Query::Semantics,
        ),
    ]
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trips-server-wal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        durability: Some(DurabilityConfig::new(dir)),
        ..ServerConfig::default()
    }
}

fn answers(client: &mut Client) -> Vec<QueryResult> {
    queries_to_compare()
        .into_iter()
        .map(|q| client.query(q).unwrap().unwrap())
        .collect()
}

fn ingest_all(client: &mut Client, traffic: &[(DeviceId, Vec<RawRecord>)]) {
    for (_, records) in traffic {
        for batch in records.chunks(50) {
            match client.ingest(batch.to_vec()).unwrap() {
                Response::Ingested { rejected, .. } => assert_eq!(rejected, 0),
                other => panic!("ingest failed: {other:?}"),
            }
        }
    }
    match client.flush(None).unwrap() {
        Response::Flushed { .. } => {}
        other => panic!("flush failed: {other:?}"),
    }
}

/// Ingest → flush → capture answers → graceful drain → reboot from the
/// same WAL directory (no checkpoint was ever taken, so this is pure
/// replay) → identical answers.
#[test]
fn wal_replay_restores_query_results_across_restart() {
    let dir = wal_dir("replay");
    let before;
    {
        let boot = deployment();
        let server = TripsServer::new(boot.dsm, boot.editor, durable_config(&dir)).unwrap();
        assert!(
            server.recovery_report().unwrap().replayed_records == 0,
            "fresh dir"
        );
        let handle = server.spawn("127.0.0.1:0").unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        ingest_all(&mut client, &traffic(0xD00D));

        // WAL occupancy is observable over the wire.
        match client.health().unwrap() {
            Response::Health(h) => {
                let wal = h.wal.expect("durable server reports wal stats");
                assert!(wal.records_since_checkpoint > 0, "ingest journaled");
                assert!(wal.segments >= 1);
                assert!(wal.last_checkpoint_age_ms.is_none(), "never checkpointed");
            }
            other => panic!("health failed: {other:?}"),
        }
        before = answers(&mut client);
        drop(client);
        handle.shutdown().unwrap();
    }

    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, durable_config(&dir)).unwrap();
    let report = server.recovery_report().unwrap().clone();
    assert!(!report.snapshot_loaded, "no checkpoint was taken");
    assert!(report.replayed_records > 0, "ingest replayed from the WAL");
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        answers(&mut client),
        before,
        "recovery is invisible to queries"
    );
    drop(client);
    handle.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// `Snapshot` on a durable server = checkpoint + compact: the response
/// carries the checkpoint path inside the WAL dir, older segments are
/// retired, and a restart replays only post-checkpoint mutations — while
/// answering identically.
#[test]
fn snapshot_request_checkpoints_compacts_and_recovers() {
    let dir = wal_dir("checkpoint");
    let before;
    {
        let boot = deployment();
        let server = TripsServer::new(boot.dsm, boot.editor, durable_config(&dir)).unwrap();
        let handle = server.spawn("127.0.0.1:0").unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        ingest_all(&mut client, &traffic(0xBEEF));

        match client.snapshot("ignored-on-durable-servers").unwrap() {
            Response::SnapshotSaved { path, .. } => {
                assert!(
                    path.starts_with(dir.to_str().unwrap()),
                    "checkpoint lives in the wal dir, got {path}"
                );
                assert!(PathBuf::from(&path).exists());
            }
            other => panic!("snapshot failed: {other:?}"),
        }
        match client.metrics().unwrap() {
            Response::Metrics(m) => {
                let wal = m.wal.expect("durable server reports wal metrics");
                assert_eq!(wal.records_since_checkpoint, 0, "checkpoint resets debt");
                assert!(wal.last_checkpoint_age_ms.is_some());
                assert_eq!(wal.segments, 1, "older segments retired");
            }
            other => panic!("metrics failed: {other:?}"),
        }

        // Post-checkpoint traffic lands in the new segment only.
        ingest_all(&mut client, &traffic(0xF00D));
        before = answers(&mut client);
        drop(client);
        handle.shutdown().unwrap();
    }

    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, durable_config(&dir)).unwrap();
    let report = server.recovery_report().unwrap().clone();
    assert!(report.snapshot_loaded, "checkpoint snapshot used");
    assert!(report.replayed_records > 0, "post-checkpoint ops replayed");
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(answers(&mut client), before);
    drop(client);
    handle.shutdown().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A server configured with both a boot snapshot and a durability dir is
/// a contradiction and must fail to build, not pick silently.
#[test]
fn snapshot_plus_durability_is_rejected_at_boot() {
    let dir = wal_dir("contradiction");
    let boot = deployment();
    let config = ServerConfig {
        snapshot: Some(dir.join("some.json")),
        ..durable_config(&dir)
    };
    match TripsServer::new(boot.dsm, boot.editor, config) {
        Err(err) => assert!(
            matches!(err, trips_store::SemanticsStoreError::Config(_)),
            "{err}"
        ),
        Ok(_) => panic!("contradictory boot config must be rejected"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The blocking client against a socket that accepts and then never
/// replies: with a read timeout installed the call returns a typed
/// timeout error in bounded time instead of hanging forever.
#[test]
fn client_read_timeout_bounds_a_stalled_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept connections, read nothing, write nothing, never close.
    let stall = std::thread::spawn(move || {
        let mut held = Vec::new();
        while held.len() < 2 {
            if let Ok((stream, _)) = listener.accept() {
                held.push(stream);
            }
        }
        std::thread::sleep(StdDuration::from_secs(5));
        drop(held);
    });

    // Via connect_with_timeout (timeout installed automatically).
    let mut client = Client::connect_with_timeout(addr, StdDuration::from_millis(200)).unwrap();
    let t0 = Instant::now();
    let err = client.ping().expect_err("stalled server must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "{err}"
    );
    assert!(
        t0.elapsed() < StdDuration::from_secs(3),
        "timed out in bounded time, took {:?}",
        t0.elapsed()
    );

    // Via set_read_timeout on a plain connection.
    let mut client = Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(StdDuration::from_millis(200)))
        .unwrap();
    let err = client.ping().expect_err("stalled server must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "{err}"
    );
    drop(client);
    let _ = stall.join();
}
