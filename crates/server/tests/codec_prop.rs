//! Property tests for the zero-copy v2 ingest decode
//! (`decode_request_frame_ref`): on every valid frame the borrowed decode
//! agrees byte-for-byte with the owned decode, and no truncation or
//! bit-flip of a valid frame can make either decoder panic — corruption
//! lands as `Ok(None)` (incomplete) or a typed `FrameError`, identically
//! on both paths.

use proptest::prelude::*;
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_server::codec::{decode_request_frame, decode_request_frame_ref, RequestFrameRef};
use trips_server::{encode_request_frame, Request, RequestEnvelope, PROTOCOL_V2};

/// Device-id palette: ASCII, empty-able, and multi-byte UTF-8 so borrowed
/// `&str` slicing is exercised across char boundaries.
const DEVICE_CHARS: [char; 8] = ['a', 'b', '0', '7', '.', '-', 'é', '雲'];

fn arb_device() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..DEVICE_CHARS.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| DEVICE_CHARS[i]).collect())
}

/// Coordinates include the funny floats (NaN, infinities, subnormal-ish
/// extremes) — the decoder must carry them bit-faithfully, well-formedness
/// is the server's concern.
fn arb_coord() -> impl Strategy<Value = f64> {
    (0usize..12, -1e9f64..1e9).prop_map(|(k, v)| match k {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => f64::MAX,
        4 => f64::MIN_POSITIVE,
        5 => -0.0,
        _ => v,
    })
}

fn arb_record() -> impl Strategy<Value = RawRecord> {
    (
        arb_device(),
        arb_coord(),
        arb_coord(),
        i16::MIN..i16::MAX,
        i64::MIN..i64::MAX,
    )
        .prop_map(|(device, x, y, floor, ts)| {
            RawRecord::new(DeviceId::new(&device), x, y, floor, Timestamp(ts))
        })
}

fn arb_ingest_frame() -> impl Strategy<Value = Vec<u8>> {
    (0u64..u64::MAX, prop::collection::vec(arb_record(), 0..20)).prop_map(|(id, records)| {
        encode_request_frame(&RequestEnvelope {
            v: PROTOCOL_V2,
            id,
            req: Request::Ingest { records },
        })
    })
}

/// Runs both decoders over `bytes` and asserts they tell the same story:
/// same progress/consumed, same materialized envelope, or the same typed
/// error (compared via `Debug`, which covers NaN coordinates too).
/// Returns whether the input decoded cleanly.
fn decoders_agree(bytes: &[u8]) -> Result<bool, TestCaseError> {
    let owned = decode_request_frame(bytes);
    let borrowed = decode_request_frame_ref(bytes);
    match (owned, borrowed) {
        (Ok(None), Ok(None)) => Ok(false),
        (Ok(Some((env, consumed_o))), Ok(Some((frame, consumed_b)))) => {
            prop_assert_eq!(consumed_o, consumed_b);
            let materialized = match frame {
                RequestFrameRef::Ingest(view) => RequestEnvelope {
                    v: PROTOCOL_V2,
                    id: view.id,
                    req: Request::Ingest {
                        records: view.records.iter().map(|r| r.to_record()).collect(),
                    },
                },
                RequestFrameRef::Owned(env) => env,
            };
            prop_assert_eq!(format!("{env:?}"), format!("{materialized:?}"));
            Ok(true)
        }
        (Err(eo), Err(eb)) => {
            prop_assert_eq!(format!("{eo:?}"), format!("{eb:?}"));
            Ok(false)
        }
        (o, b) => Err(TestCaseError::fail(format!(
            "decoders disagree: owned {o:?} vs borrowed {b:?}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Valid frames always decode, identically on both paths, and the
    /// ingest body takes the borrowed branch.
    #[test]
    fn valid_frames_decode_identically(bytes in arb_ingest_frame()) {
        let decoded = decoders_agree(&bytes)?;
        prop_assert!(decoded, "a complete valid frame must decode");
        match decode_request_frame_ref(&bytes) {
            Ok(Some((RequestFrameRef::Ingest(_), consumed))) => {
                prop_assert_eq!(consumed, bytes.len());
            }
            other => return Err(TestCaseError::fail(format!(
                "ingest frame must take the borrowed branch, got {other:?}"
            ))),
        }
    }

    /// Every truncation of a valid frame is incomplete — `Ok(None)` from
    /// both decoders, never a panic, never a phantom parse.
    #[test]
    fn truncations_never_panic(bytes in arb_ingest_frame(), cut in 0.0f64..1.0) {
        let cut = (bytes.len() as f64 * cut) as usize;
        let prefix = &bytes[..cut.min(bytes.len().saturating_sub(1))];
        let decoded = decoders_agree(prefix)?;
        prop_assert!(!decoded, "a strict prefix must not decode to a frame");
    }

    /// A single flipped bit anywhere in a valid frame never panics either
    /// decoder, and both report the same outcome (a CRC/magic error, an
    /// incomplete read, or — for bits the codec does not checksum against
    /// the same meaning, like a longer length prefix — the same parse).
    #[test]
    fn bit_flips_never_panic(
        bytes in arb_ingest_frame(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut corrupt = bytes;
        let idx = ((corrupt.len() as f64 * pos) as usize).min(corrupt.len() - 1);
        corrupt[idx] ^= 1 << bit;
        decoders_agree(&corrupt)?;
    }
}
