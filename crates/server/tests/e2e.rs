//! End-to-end serving tests: boot a real server on an ephemeral port and
//! drive it over TCP — concurrent ingest + query, snapshot → restart →
//! identical results, load shedding past the admission queue, connection
//! caps, and wire-level error handling.

use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use trips_core::stream::{StreamConfig, StreamingTranslator};
use trips_data::{DeviceId, Duration, RawRecord, Timestamp};
use trips_server::{
    bootstrap_scenario, Client, Request, Response, ServerBootstrap, ServerConfig, ServerError,
    TripsServer,
};
use trips_sim::ScenarioConfig;
use trips_store::{Query, QueryRequest, QueryResult, SemanticsSelector, SemanticsStore};

const FLOORS: u16 = 1;
const SHOPS: usize = 3;

fn scenario(devices: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        devices,
        days: 1,
        seed,
        ..ScenarioConfig::default()
    }
}

/// The deployment configuration both boots of a server share (training is
/// deterministic per seed, so "restart" = bootstrap again).
fn deployment() -> ServerBootstrap {
    bootstrap_scenario(FLOORS, SHOPS, &scenario(4, 0x5EED))
}

/// Campus traffic that fits the deployment's mall layout, grouped
/// per-building as `(device, its records in time order)`.
fn campus_traffic(
    buildings: usize,
    devices: usize,
    seed: u64,
) -> Vec<Vec<(DeviceId, Vec<RawRecord>)>> {
    let campus =
        trips_sim::scenario::generate_campus(buildings, FLOORS, SHOPS, &scenario(devices, seed));
    campus
        .buildings
        .iter()
        .map(|b| {
            b.dataset
                .traces
                .iter()
                .map(|t| (t.device.clone(), t.raw.records().to_vec()))
                .collect()
        })
        .collect()
}

fn queries_to_compare() -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(SemanticsSelector::all(), Query::Semantics),
        QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
        QueryRequest::new(SemanticsSelector::all(), Query::TopFlows { limit: 50 }),
        QueryRequest::new(
            SemanticsSelector::all(),
            Query::DwellHistogram {
                bucket: Duration::from_mins(5),
            },
        ),
        QueryRequest::new(SemanticsSelector::all(), Query::DeviceSummaries),
        QueryRequest::new(
            SemanticsSelector::all().with_device_pattern("b0.*"),
            Query::PopularRegions,
        ),
        QueryRequest::new(
            SemanticsSelector::all().between(
                Timestamp::from_dhms(0, 10, 0, 0),
                Timestamp::from_dhms(0, 16, 0, 0),
            ),
            Query::Semantics,
        ),
    ]
}

/// The acceptance-criteria flow: ingest a campus over the wire while
/// concurrently querying it, flush, compare against an in-process
/// reference translation, snapshot, restart from the snapshot, and verify
/// every query answers identically.
#[test]
fn ingest_query_snapshot_restart_roundtrip() {
    let traffic = campus_traffic(2, 4, 0xCAFE);
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            // Wire-level snapshots resolve against this root (the server
            // rejects absolute paths).
            snapshot_root: Some(std::env::temp_dir()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Two ingest connections (one per building) racing a query connection.
    let ingested = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for building in &traffic {
            let ingested = &ingested;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (_, records) in building {
                    for batch in records.chunks(50) {
                        match client.ingest(batch.to_vec()).unwrap() {
                            Response::Ingested {
                                accepted, rejected, ..
                            } => {
                                assert_eq!(rejected, 0, "sim records are well-formed");
                                ingested.fetch_add(accepted, Ordering::Relaxed);
                            }
                            other => panic!("ingest failed: {other:?}"),
                        }
                    }
                }
            });
        }
        // Analyst traffic while the streams are open: health + analytics
        // must answer (possibly partial data), never error.
        s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            for _ in 0..30 {
                match client.health().unwrap() {
                    Response::Health(h) => assert_eq!(h.status, "ok"),
                    other => panic!("health failed: {other:?}"),
                }
                let result = client
                    .query_parts(SemanticsSelector::all(), Query::PopularRegions)
                    .unwrap();
                assert!(result.is_ok(), "query during ingest: {result:?}");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
    });
    let total_records: usize = traffic
        .iter()
        .flat_map(|b| b.iter().map(|(_, r)| r.len()))
        .sum();
    assert_eq!(ingested.load(Ordering::Relaxed), total_records);

    let mut client = Client::connect(addr).unwrap();

    // Semantics are queryable while streams are still open: flush one
    // device explicitly and find its semantics without closing anything.
    let (probe_device, _) = &traffic[0][0];
    match client.flush(Some(probe_device.as_str())).unwrap() {
        // `emitted` may be 0 here: session gaps can have already published
        // most of the day mid-push, leaving a tail that translates to
        // nothing — the query below is the real check.
        Response::Flushed { devices, .. } => assert!(devices <= 1),
        other => panic!("flush failed: {other:?}"),
    }
    match client
        .query_parts(
            SemanticsSelector::all().with_device_pattern(probe_device.as_str()),
            Query::Semantics,
        )
        .unwrap()
        .unwrap()
    {
        QueryResult::Semantics(sems) => {
            assert!(!sems.is_empty(), "probe semantics visible mid-stream")
        }
        other => panic!("wrong variant: {other:?}"),
    }

    // Flush everything and check the server against an in-process
    // reference translation of the same traffic.
    match client.flush(None).unwrap() {
        Response::Flushed { .. } => {}
        other => panic!("flush-all failed: {other:?}"),
    }
    let reference = reference_store(&traffic);
    let all = SemanticsSelector::all();
    let server_semantics = match client
        .query_parts(all.clone(), Query::Semantics)
        .unwrap()
        .unwrap()
    {
        QueryResult::Semantics(s) => s,
        other => panic!("wrong variant: {other:?}"),
    };
    assert_eq!(
        server_semantics,
        reference.semantics(&all),
        "wire-ingested semantics must equal in-process streaming translation"
    );
    let server_pops = match client
        .query_parts(all.clone(), Query::PopularRegions)
        .unwrap()
        .unwrap()
    {
        QueryResult::PopularRegions(p) => p,
        other => panic!("wrong variant: {other:?}"),
    };
    assert_eq!(server_pops, reference.popular_regions(&all));

    // Snapshot + graceful drain. The wire carries a *relative* path; the
    // server resolves it inside its configured snapshot root.
    let snap_rel = format!("trips-server-e2e-restart-{}.json", std::process::id());
    let snap = std::env::temp_dir().join(&snap_rel);
    let before: Vec<QueryResult> = queries_to_compare()
        .into_iter()
        .map(|q| client.query(q).unwrap().unwrap())
        .collect();
    match client.snapshot(&snap_rel).unwrap() {
        Response::SnapshotSaved {
            path,
            devices,
            semantics,
        } => {
            assert_eq!(path, snap.display().to_string(), "resolved inside the root");
            assert!(devices > 0 && semantics > 0);
        }
        other => panic!("snapshot failed: {other:?}"),
    }
    drop(client);
    let report = handle.shutdown().unwrap();
    assert!(report.requests > 0);
    assert_eq!(report.shed, 0, "default queue must not shed this workload");
    assert_eq!(report.bad_requests, 0);
    assert!(report.devices > 0 && report.semantics > 0);

    // Restart from the snapshot: every query must answer identically.
    let boot2 = deployment();
    let server2 = TripsServer::new(
        boot2.dsm,
        boot2.editor,
        ServerConfig {
            snapshot: Some(snap.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle2 = server2.spawn("127.0.0.1:0").unwrap();
    let mut client2 = Client::connect(handle2.addr()).unwrap();
    let after: Vec<QueryResult> = queries_to_compare()
        .into_iter()
        .map(|q| client2.query(q).unwrap().unwrap())
        .collect();
    assert_eq!(before, after, "restart from snapshot must be lossless");
    drop(client2);
    handle2.shutdown().unwrap();
    let _ = std::fs::remove_file(&snap);
}

/// Ingests `traffic` into a freshly booted server under `config` (one
/// connection per building, each flushing its own session), then answers
/// the comparison queries.
fn serve_and_query(
    traffic: &[Vec<(DeviceId, Vec<RawRecord>)>],
    config: ServerConfig,
) -> Vec<QueryResult> {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, config).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();
    std::thread::scope(|s| {
        for building in traffic {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (_, records) in building {
                    for batch in records.chunks(50) {
                        match client.ingest(batch.to_vec()).unwrap() {
                            Response::Ingested { rejected, .. } => assert_eq!(rejected, 0),
                            other => panic!("ingest failed: {other:?}"),
                        }
                    }
                }
                match client.flush(None).unwrap() {
                    Response::Flushed { .. } => {}
                    other => panic!("flush failed: {other:?}"),
                }
            });
        }
    });
    let mut client = Client::connect(addr).unwrap();
    let results = queries_to_compare()
        .into_iter()
        .map(|q| client.query(q).unwrap().unwrap())
        .collect();
    drop(client);
    handle.shutdown().unwrap();
    results
}

/// The sharding acceptance criterion: translation through four loop
/// shards and eight translator shards must be **bit-identical** to a
/// serial server (one loop, one translator lock) over the same traffic —
/// a device lives wholly within one translator instance, so partitioning
/// by device hash must not change a single emitted semantic.
#[test]
fn sharded_translation_is_bit_identical_to_serial() {
    let traffic = campus_traffic(2, 4, 0xB17);
    let serial = serve_and_query(
        &traffic,
        ServerConfig {
            loop_shards: 1,
            translator_shards: 1,
            ..ServerConfig::default()
        },
    );
    let sharded = serve_and_query(
        &traffic,
        ServerConfig {
            loop_shards: 4,
            translator_shards: 8,
            ..ServerConfig::default()
        },
    );
    assert_eq!(
        serial, sharded,
        "sharded topology changed the translated output"
    );
}

/// The same traffic through an in-process `StreamingTranslator` with an
/// attached store — the ground truth the server must match.
fn reference_store(traffic: &[Vec<(DeviceId, Vec<RawRecord>)>]) -> Arc<SemanticsStore> {
    let boot = deployment();
    let store = Arc::new(SemanticsStore::new());
    let mut translator =
        StreamingTranslator::from_editor(&boot.dsm, &boot.editor, None, StreamConfig::default())
            .unwrap()
            .with_store(store.clone());
    for building in traffic {
        for (_, records) in building {
            for r in records {
                translator.push(r.clone());
            }
        }
    }
    translator.finish();
    store
}

/// Driving the server past its admission queue must shed with typed
/// `Overloaded` errors while memory stays bounded (peak queue depth never
/// exceeds capacity) and no request fails any other way.
#[test]
fn overload_sheds_with_bounded_queue() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            max_connections: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Substance for the queries: pre-ingest synthetic semantics directly
    // into the live store (the wire is not under test here).
    let store = server.store();
    for d in 0..50u32 {
        let id = DeviceId::new(&format!("bulk-{d:03}"));
        let sems: Vec<trips_annotate::MobilitySemantics> = (0..40u32)
            .map(|i| trips_annotate::MobilitySemantics {
                device: id.clone(),
                event: if i % 2 == 0 { "stay" } else { "pass-by" }.into(),
                region: trips_dsm::RegionId((d + i) % 7),
                region_name: format!("R{}", (d + i) % 7),
                start: Timestamp::from_millis(i as i64 * 60_000),
                end: Timestamp::from_millis(i as i64 * 60_000 + 30_000),
                inferred: false,
                display_point: None,
            })
            .collect();
        store.ingest(&id, &sems);
    }
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let shed = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let hard_errors = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (shed, ok, hard_errors) = (&shed, &ok, &hard_errors);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..150 {
                    let query = if i % 2 == 0 {
                        Query::Semantics
                    } else {
                        Query::PopularRegions
                    };
                    match client.query_parts(SemanticsSelector::all(), query).unwrap() {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(ServerError::Overloaded { queue_capacity }) => {
                            assert_eq!(queue_capacity, 1);
                            shed.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => {
                            eprintln!("hard error: {e}");
                            hard_errors.fetch_add(1, Ordering::Relaxed)
                        }
                    };
                }
            });
        }
    });
    assert_eq!(hard_errors.load(Ordering::Relaxed), 0);
    assert!(ok.load(Ordering::Relaxed) > 0, "some queries must succeed");
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "8 closed-loop clients against workers=1/queue=1 must shed"
    );

    // The server's own accounting agrees, and the bounded-memory invariant
    // held: the queue never grew beyond its capacity.
    let mut admin = Client::connect(addr).unwrap();
    match admin.metrics().unwrap() {
        Response::Metrics(m) => {
            assert_eq!(m.shed as usize, shed.load(Ordering::Relaxed));
            assert_eq!(m.queue_capacity, 1);
            assert!(
                m.peak_queue_depth <= m.queue_capacity,
                "peak {} exceeded capacity {}",
                m.peak_queue_depth,
                m.queue_capacity
            );
            let query_ep = m.endpoints.iter().find(|e| e.endpoint == "query").unwrap();
            assert_eq!(
                query_ep.count,
                ok.load(Ordering::Relaxed),
                "shed requests never execute"
            );
            assert!(query_ep.max_us >= query_ep.p99_us && query_ep.p99_us >= query_ep.p50_us);
            assert!(query_ep.mean_us > 0.0);
        }
        other => panic!("metrics failed: {other:?}"),
    }
    // Health still answers inline while the work queue is tiny.
    match admin.health().unwrap() {
        Response::Health(h) => assert_eq!(h.store.devices, 50),
        other => panic!("health failed: {other:?}"),
    }
    drop(admin);
    let report = handle.shutdown().unwrap();
    assert_eq!(report.shed as usize, shed.load(Ordering::Relaxed));
    assert!(report.peak_queue_depth <= 1);
}

#[test]
fn connection_cap_rejects_with_typed_error() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut first = Client::connect(addr).unwrap();
    assert_eq!(first.ping().unwrap(), Response::Pong, "first session live");

    let mut second = Client::connect(addr).unwrap();
    match second.ping().unwrap() {
        Response::Error(ServerError::TooManyConnections { limit }) => assert_eq!(limit, 1),
        other => panic!("expected connection rejection, got {other:?}"),
    }
    // The rejected socket is closed server-side.
    assert!(second.ping().is_err());

    // Freeing the slot admits a new session.
    drop(first);
    let mut third = loop {
        let mut c = Client::connect(addr).unwrap();
        match c.ping().unwrap() {
            Response::Pong => break c,
            Response::Error(ServerError::TooManyConnections { .. }) => {
                // The first session's teardown hasn't been observed yet.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("unexpected: {other:?}"),
        }
    };
    assert_eq!(third.ping().unwrap(), Response::Pong);
    // Rejected sockets count as rejected only — never as accepted.
    match third.metrics().unwrap() {
        Response::Metrics(m) => {
            assert_eq!(
                m.connections_accepted, 2,
                "only the first and third sessions were accepted"
            );
            assert!(m.connections_rejected >= 1);
            assert_eq!(m.active_connections, 1);
        }
        other => panic!("metrics failed: {other:?}"),
    }
    drop(third);
    handle.shutdown().unwrap();
}

/// Wire-level robustness: garbage lines and wrong versions get typed
/// errors and the connection keeps serving; empty ingest batches do not
/// register phantom devices; unwritable snapshot paths surface `Internal`.
#[test]
fn wire_errors_and_edge_cases() {
    use std::io::{BufRead, BufReader, Write};
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Raw socket: garbage, then wrong version, then a valid ping — the
    // session must survive all three.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    raw.write_all(b"this is not json\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let resp = trips_server::decode_response(line.trim()).unwrap();
    assert_eq!(resp.id, 0);
    assert!(matches!(
        resp.resp,
        Response::Error(ServerError::BadRequest { .. })
    ));
    line.clear();
    raw.write_all(b"{\"v\":99,\"id\":7,\"req\":\"Ping\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let resp = trips_server::decode_response(line.trim()).unwrap();
    assert_eq!(resp.id, 7, "version errors carry the correlation id");
    assert!(matches!(
        resp.resp,
        Response::Error(ServerError::UnsupportedVersion { got: 99, want: 1 })
    ));
    line.clear();
    raw.write_all(b"{\"v\":1,\"id\":8,\"req\":\"Ping\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let resp = trips_server::decode_response(line.trim()).unwrap();
    assert_eq!((resp.id, resp.resp), (8, Response::Pong));
    drop((raw, reader));

    let mut client = Client::connect(addr).unwrap();
    // Empty ingest batch: accepted but registers nothing (the store's
    // empty-slice guard seen from the wire).
    match client.ingest(Vec::new()).unwrap() {
        Response::Ingested {
            accepted,
            rejected,
            emitted,
        } => assert_eq!((accepted, rejected, emitted), (0, 0, 0)),
        other => panic!("empty ingest failed: {other:?}"),
    }
    // A record with non-finite coordinates cannot even be expressed in
    // JSON (NaN has no representation) — it dies at the parse boundary as
    // a BadRequest rather than reaching the buffers.
    let bad = RawRecord::new(
        DeviceId::new("bad"),
        f64::NAN,
        0.0,
        0,
        Timestamp::from_millis(0),
    );
    match client.ingest(vec![bad]).unwrap() {
        Response::Error(ServerError::BadRequest { .. }) => {}
        other => panic!("expected parse rejection, got {other:?}"),
    }
    match client.health().unwrap() {
        Response::Health(h) => {
            assert_eq!(
                h.store.devices, 0,
                "no phantom devices from empty/bad batches"
            );
            assert_eq!(h.open_devices, 0);
        }
        other => panic!("health failed: {other:?}"),
    }
    // Absolute snapshot target on a server with no snapshot root: a typed
    // BadRequest (the wire must not name server paths), then the server
    // keeps serving. Snapshot-path rejections are application-level, not
    // wire-level, so they do not count toward `bad_requests` below.
    match client
        .snapshot("/nonexistent-trips-dir/deep/snap.json")
        .unwrap()
    {
        Response::Error(ServerError::BadRequest { message }) => {
            assert!(message.contains("snapshot rejected"), "{message}");
        }
        other => panic!("expected snapshot rejection, got {other:?}"),
    }
    assert_eq!(client.ping().unwrap(), Response::Pong);
    drop(client);

    let report = handle.shutdown().unwrap();
    assert_eq!(
        report.bad_requests, 3,
        "garbage + wrong version + unrepresentable record"
    );
}

/// Draining refuses new work but finishes what was admitted: after
/// `Shutdown`, a second connection's requests get `ShuttingDown`.
#[test]
fn drain_refuses_new_work() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Open a bystander connection BEFORE the drain starts (connections
    // after it may be refused at accept time).
    let mut bystander = Client::connect(addr).unwrap();
    assert_eq!(bystander.ping().unwrap(), Response::Pong);

    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(admin.shutdown().unwrap(), Response::ShuttingDown);

    // The draining server refuses the bystander's new work with a typed
    // error (or the socket is already torn down — also a valid drain).
    match bystander.call(Request::Query {
        request: QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
    }) {
        Ok(Response::Error(ServerError::ShuttingDown)) => {}
        Ok(other) => panic!("draining server must refuse work, got {other:?}"),
        Err(_) => {} // connection already closed by the drain
    }
    handle.join().unwrap();
}

/// Pipelined calls: N requests leave in one write, N responses come back
/// in request order — over both framings, with a mixed request batch and
/// enough depth that the server's write queue actually batches replies.
#[test]
fn pipelined_calls_answer_in_order() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    for protocol in [1u32, 2] {
        let mut client = Client::connect(addr).unwrap();
        client.set_protocol(protocol).unwrap();
        // A mixed batch: pings interleaved with queries and a health
        // probe, so ordered responses are distinguishable by kind.
        let reqs: Vec<Request> = (0..32)
            .map(|i| match i % 3 {
                0 => Request::Ping,
                1 => Request::Query {
                    request: QueryRequest::new(SemanticsSelector::all(), Query::PopularRegions),
                },
                _ => Request::Health,
            })
            .collect();
        let resps = client.call_pipelined(reqs).unwrap();
        assert_eq!(resps.len(), 32);
        for (i, resp) in resps.iter().enumerate() {
            match (i % 3, resp) {
                (0, Response::Pong) => {}
                (1, Response::Query { .. }) => {}
                (2, Response::Health(_)) => {}
                (_, other) => panic!("protocol {protocol}: response {i} out of order: {other:?}"),
            }
        }
        // The connection stays healthy for sequential calls afterwards.
        assert_eq!(client.ping().unwrap(), Response::Pong);
    }
    handle.shutdown().unwrap();
}
