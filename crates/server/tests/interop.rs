//! Protocol interop: v1 and v2 clients against the same server, versions
//! mixed per message on one connection, malformed/truncated binary frames
//! (typed errors or a clean close — never a panic, never a wedged
//! server), and the v2 frame bytes pinned on the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_server::{
    bootstrap_scenario, decode_response_frame, encode_request_frame, Client, Request,
    RequestEnvelope, Response, ServerBootstrap, ServerConfig, ServerError, TripsServer,
    FRAME_MAGIC, PROTOCOL_V2, PROTOCOL_VERSION,
};
use trips_sim::ScenarioConfig;
use trips_store::{Query, QueryResult, SemanticsSelector};
use trips_wal::crc32;

fn deployment() -> ServerBootstrap {
    bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0x1217,
            ..ScenarioConfig::default()
        },
    )
}

fn burst(device: &str, minute: i64) -> Vec<RawRecord> {
    (0..20)
        .map(|i| {
            RawRecord::new(
                DeviceId::new(device),
                4.0 + (i as f64) * 0.4,
                5.0,
                0,
                Timestamp::from_dhms(0, 10, minute, i * 2),
            )
        })
        .collect()
}

/// Reads exactly one v2 frame off a raw socket.
fn read_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 10];
    stream.read_exact(&mut header).unwrap();
    assert_eq!(header[0], FRAME_MAGIC);
    let len = u32::from_le_bytes(header[2..6].try_into().unwrap()) as usize;
    let mut frame = header.to_vec();
    frame.resize(10 + len, 0);
    stream.read_exact(&mut frame[10..]).unwrap();
    frame
}

/// Four event-loop shards + a small power-of-two translator shard array:
/// the sharded topology every `*_across_loop_shards` variant runs under
/// (the acceptor deals consecutive connections to different loops).
fn sharded_config() -> ServerConfig {
    ServerConfig {
        loop_shards: 4,
        translator_shards: 4,
        ..ServerConfig::default()
    }
}

/// A v2 client exercises every endpoint family end to end; the answers
/// match what a v1 client sees over the same server.
fn v2_client_matches_v1(config: ServerConfig) {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, config).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut v2 = Client::connect_v2(addr).unwrap();
    let mut v1 = Client::connect(addr).unwrap();

    assert_eq!(v2.ping().unwrap(), Response::Pong);
    match v2.ingest(burst("iop-1", 0)).unwrap() {
        Response::Ingested {
            accepted, rejected, ..
        } => assert_eq!((accepted, rejected), (20, 0)),
        other => panic!("v2 ingest failed: {other:?}"),
    }
    match v2.flush(Some("iop-1")).unwrap() {
        Response::Flushed { devices, emitted } => {
            assert_eq!(devices, 1);
            assert!(emitted >= 1);
        }
        other => panic!("v2 flush failed: {other:?}"),
    }

    // The two protocol versions must see identical query results.
    for query in [
        Query::Semantics,
        Query::PopularRegions,
        Query::TopFlows { limit: 10 },
        Query::DwellHistogram {
            bucket: trips_data::Duration::from_mins(5),
        },
        Query::DeviceSummaries,
        Query::Stats,
    ] {
        let from_v2 = v2
            .query_parts(SemanticsSelector::all(), query.clone())
            .unwrap()
            .unwrap();
        let from_v1 = v1
            .query_parts(SemanticsSelector::all(), query.clone())
            .unwrap()
            .unwrap();
        assert_eq!(from_v2, from_v1, "{query:?} differs across versions");
        if let QueryResult::Semantics(sems) = &from_v2 {
            assert!(!sems.is_empty(), "flushed semantics visible over v2");
        }
    }

    match v2.health().unwrap() {
        Response::Health(h) => assert_eq!(h.status, "ok"),
        other => panic!("v2 health failed: {other:?}"),
    }
    match v2.metrics().unwrap() {
        Response::Metrics(m) => assert!(m.requests > 0),
        other => panic!("v2 metrics failed: {other:?}"),
    }

    drop((v1, v2));
    handle.shutdown().unwrap();
}

#[test]
fn v2_client_full_roundtrip_matches_v1() {
    v2_client_matches_v1(ServerConfig::default());
}

/// The same interop pass with the clients split across four loop shards:
/// version detection, framing, and query results are per-connection state
/// and must not care which loop owns the socket.
#[test]
fn v2_client_full_roundtrip_matches_v1_across_loop_shards() {
    v2_client_matches_v1(sharded_config());
}

/// One connection may interleave v1 and v2 messages; the server answers
/// each in the framing it arrived in.
#[test]
fn versions_interleave_on_one_connection() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    for round in 0..4 {
        let version = if round % 2 == 0 {
            PROTOCOL_VERSION
        } else {
            PROTOCOL_V2
        };
        client.set_protocol(version).unwrap();
        assert_eq!(client.ping().unwrap(), Response::Pong, "round {round}");
        match client
            .ingest(burst(&format!("mix-{round}"), round))
            .unwrap()
        {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
            other => panic!("round {round} ingest failed: {other:?}"),
        }
    }
    match client.flush(None).unwrap() {
        // All four devices belong to this one session regardless of which
        // framing carried their batches.
        Response::Flushed { devices, .. } => assert_eq!(devices, 4),
        other => panic!("flush failed: {other:?}"),
    }
    drop(client);
    handle.shutdown().unwrap();
}

/// Mixed-version concurrent clients: half v1, half v2, each streaming its
/// own device — every record lands, nothing interferes.
fn concurrent_mixed_versions(config: ServerConfig) {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, config).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let accepted = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for n in 0..8usize {
            let accepted = &accepted;
            s.spawn(move || {
                let mut client = if n % 2 == 0 {
                    Client::connect(addr).unwrap()
                } else {
                    Client::connect_v2(addr).unwrap()
                };
                for round in 0..5i64 {
                    match client.ingest(burst(&format!("cc-{n}"), round)).unwrap() {
                        Response::Ingested {
                            accepted: a,
                            rejected,
                            ..
                        } => {
                            assert_eq!(rejected, 0);
                            accepted.fetch_add(a, Ordering::Relaxed);
                        }
                        Response::Error(ServerError::Overloaded { .. }) => {}
                        other => panic!("client {n} ingest failed: {other:?}"),
                    }
                    // Interleaved analyst traffic on the same connection.
                    assert!(client
                        .query_parts(SemanticsSelector::all(), Query::Stats)
                        .unwrap()
                        .is_ok());
                }
                client.flush(None).unwrap();
            });
        }
    });
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        8 * 5 * 20,
        "every batch landed (default queue never sheds this workload)"
    );

    let mut admin = Client::connect_v2(addr).unwrap();
    match admin
        .query_parts(SemanticsSelector::all(), Query::Stats)
        .unwrap()
        .unwrap()
    {
        QueryResult::Stats(stats) => assert_eq!(stats.devices, 8),
        other => panic!("wrong variant: {other:?}"),
    }
    drop(admin);
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_mixed_version_clients() {
    concurrent_mixed_versions(ServerConfig::default());
}

/// Eight mixed-version clients dealt round-robin over four loop shards:
/// two connections per loop, devices hashed across translator shards —
/// the full sharded ingest path, with nothing lost and nothing crossed.
#[test]
fn concurrent_mixed_version_clients_across_loop_shards() {
    concurrent_mixed_versions(sharded_config());
}

/// The exact bytes of a v2 `Ping` frame, pinned: any codec change that
/// shifts the wire layout must be deliberate (and bump the version).
#[test]
fn golden_ping_frame_bytes_on_the_wire() {
    #[rustfmt::skip]
    let want = vec![
        0xF2,                   // magic
        0x02,                   // version
        9, 0, 0, 0,             // payload_len u32 le
        0xEB, 0xBE, 0xDB, 0x4F, // crc32c(payload) le
        1, 0, 0, 0, 0, 0, 0, 0, // id = 1 u64 le
        0,                      // tag: Ping
    ];
    let got = encode_request_frame(&RequestEnvelope {
        v: PROTOCOL_V2,
        id: 1,
        req: Request::Ping,
    });
    assert_eq!(got, want);

    // And the server really answers it: write the pinned bytes raw, read
    // a Pong frame back.
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&want).unwrap();
    let frame = read_frame(&mut raw);
    let (env, consumed) = decode_response_frame(&frame).unwrap().unwrap();
    assert_eq!(consumed, frame.len());
    assert_eq!((env.id, env.resp), (1, Response::Pong));
    drop(raw);
    handle.shutdown().unwrap();
}

/// Malformed and truncated binary frames: a well-delimited frame with a
/// bad body gets a typed `BadRequest` and the connection survives; frames
/// that desynchronize the stream (bad CRC, unknown version, oversized
/// length) get one error and a close; a truncated frame followed by
/// disconnect is ignored. The server never panics and keeps serving
/// throughout.
#[test]
fn malformed_frames_get_typed_errors_never_panics() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // --- Recoverable: valid framing, garbage body (unknown request tag).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let payload: Vec<u8> = [99u64.to_le_bytes().as_slice(), &[0xFF]].concat();
        let mut frame = vec![FRAME_MAGIC, 0x02];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        raw.write_all(&frame).unwrap();
        let (env, _) = decode_response_frame(&read_frame(&mut raw))
            .unwrap()
            .unwrap();
        assert_eq!(env.id, 99, "recoverable errors keep the correlation id");
        assert!(
            matches!(env.resp, Response::Error(ServerError::BadRequest { .. })),
            "{:?}",
            env.resp
        );
        // Same connection still serves.
        raw.write_all(&encode_request_frame(&RequestEnvelope {
            v: PROTOCOL_V2,
            id: 100,
            req: Request::Ping,
        }))
        .unwrap();
        let (env, _) = decode_response_frame(&read_frame(&mut raw))
            .unwrap()
            .unwrap();
        assert_eq!((env.id, env.resp), (100, Response::Pong));
    }

    // --- Fatal: corrupted payload (CRC mismatch) → one error, then close.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut frame = encode_request_frame(&RequestEnvelope {
            v: PROTOCOL_V2,
            id: 5,
            req: Request::Ping,
        });
        let last = frame.len() - 1;
        frame[last] ^= 0xA5;
        raw.write_all(&frame).unwrap();
        let (env, _) = decode_response_frame(&read_frame(&mut raw))
            .unwrap()
            .unwrap();
        assert!(matches!(
            env.resp,
            Response::Error(ServerError::BadRequest { .. })
        ));
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "fatal frame errors close the connection");
    }

    // --- Fatal: unknown frame version byte.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[FRAME_MAGIC, 0x07, 0, 0, 0, 0, 0, 0, 0, 0])
            .unwrap();
        let (env, _) = decode_response_frame(&read_frame(&mut raw))
            .unwrap()
            .unwrap();
        assert!(matches!(
            env.resp,
            Response::Error(ServerError::BadRequest { .. })
        ));
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    // --- Fatal: oversized length prefix (no allocation happens).
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut frame = vec![FRAME_MAGIC, 0x02];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0; 4]);
        raw.write_all(&frame).unwrap();
        let (env, _) = decode_response_frame(&read_frame(&mut raw))
            .unwrap()
            .unwrap();
        assert!(matches!(
            env.resp,
            Response::Error(ServerError::BadRequest { .. })
        ));
    }

    // --- Truncated frame, then disconnect: silently discarded.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = encode_request_frame(&RequestEnvelope {
            v: PROTOCOL_V2,
            id: 6,
            req: Request::Ping,
        });
        raw.write_all(&frame[..frame.len() - 3]).unwrap();
        drop(raw);
    }

    // --- v2-as-JSON: the version number without the framing is a
    // version error, answered as NDJSON.
    {
        use std::io::{BufRead, BufReader};
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"{\"v\":2,\"id\":3,\"req\":\"Ping\"}\n")
            .unwrap();
        let mut line = String::new();
        BufReader::new(raw.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        let env = trips_server::decode_response(line.trim()).unwrap();
        assert_eq!(env.id, 3);
        assert_eq!(
            env.resp,
            Response::Error(ServerError::UnsupportedVersion { got: 2, want: 1 }),
            "v2 is the binary framing; a JSON v:2 envelope is a mismatch"
        );
    }

    // After all of that, the server still serves both protocols.
    let mut check = Client::connect_v2(addr).unwrap();
    assert_eq!(check.ping().unwrap(), Response::Pong);
    check.set_protocol(PROTOCOL_VERSION).unwrap();
    assert_eq!(check.ping().unwrap(), Response::Pong);
    drop(check);
    let report = handle.shutdown().unwrap();
    assert!(report.bad_requests >= 4, "each bad frame was counted");
}
