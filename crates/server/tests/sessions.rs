//! Cross-session regression tests: a connection's `Flush { device: None }`
//! and its teardown must be scoped to *its own* session, never touching
//! devices other live connections are still streaming; wire-level
//! snapshots must resolve inside the configured root.
//!
//! These pin the two serving bugs fixed alongside protocol v2:
//!
//! 1. flush-all used to call `translator.finish()`, flushing **every**
//!    connection's buffers;
//! 2. teardown used to flush + `end_session` every device the connection
//!    had ingested, even when another live connection was still streaming
//!    the same device.

use std::time::Duration as StdDuration;
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_server::{
    bootstrap_scenario, Client, Response, ServerBootstrap, ServerConfig, ServerError, TripsServer,
};
use trips_sim::ScenarioConfig;

fn deployment() -> ServerBootstrap {
    bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0x5E55,
            ..ScenarioConfig::default()
        },
    )
}

/// A short burst of records for `device` that stays buffered: the
/// timestamps sit well inside the default 10-minute flush gap and far
/// under the buffer cap, so only a flush or a session end publishes them.
fn buffered_burst(device: &str, base_minutes: i64) -> Vec<RawRecord> {
    (0..20)
        .map(|i| {
            RawRecord::new(
                DeviceId::new(device),
                4.0 + (i as f64) * 0.4,
                5.0,
                0,
                Timestamp::from_dhms(0, 10, base_minutes, i * 2),
            )
        })
        .collect()
}

fn open_devices(client: &mut Client) -> usize {
    match client.health().unwrap() {
        Response::Health(h) => h.open_devices,
        other => panic!("health failed: {other:?}"),
    }
}

/// Bugfix 1: a flush-all from one connection leaves other sessions'
/// buffers alone.
#[test]
fn flush_all_is_scoped_to_the_requesting_session() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect_v2(addr).unwrap(); // mixed versions on purpose

    // Each session streams its own device; both stay buffered.
    match a.ingest(buffered_burst("dev-a", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest a failed: {other:?}"),
    }
    match b.ingest(buffered_burst("dev-b", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest b failed: {other:?}"),
    }
    assert_eq!(open_devices(&mut a), 2, "both devices buffered");

    // A's flush-all publishes dev-a only.
    match a.flush(None).unwrap() {
        Response::Flushed { devices, .. } => {
            assert_eq!(
                devices, 1,
                "flush-all touches only the session's own device"
            )
        }
        other => panic!("flush failed: {other:?}"),
    }
    assert_eq!(
        open_devices(&mut a),
        1,
        "dev-b still buffered after a's flush-all"
    );

    // B's flush-all now publishes dev-b.
    match b.flush(None).unwrap() {
        Response::Flushed { devices, .. } => assert_eq!(devices, 1),
        other => panic!("flush failed: {other:?}"),
    }
    assert_eq!(open_devices(&mut a), 0);

    // A flush-all from a session that never ingested is a no-op.
    let mut bystander = Client::connect(addr).unwrap();
    match bystander.flush(None).unwrap() {
        Response::Flushed { devices, emitted } => assert_eq!((devices, emitted), (0, 0)),
        other => panic!("flush failed: {other:?}"),
    }

    drop((a, b, bystander));
    handle.shutdown().unwrap();
}

/// Bugfix 2: disconnecting one of two connections streaming the *same*
/// device must not flush or end the device's session — the refcount only
/// reaches zero when the last connection goes away.
#[test]
fn teardown_spares_devices_shared_with_live_sessions() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut watch = Client::connect(addr).unwrap();
    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect_v2(addr).unwrap();

    // Both connections stream the same device (a device roaming between
    // access points reaches the server over more than one ingest path).
    match first.ingest(buffered_burst("dev-shared", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    match second.ingest(buffered_burst("dev-shared", 1)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    assert_eq!(open_devices(&mut watch), 1);

    // First connection goes away; the device must stay open because the
    // second connection still streams it.
    drop(first);
    // Teardown is immediate on the event loop, but give it a few health
    // round-trips to be observed — the device must *remain* open.
    for _ in 0..10 {
        assert_eq!(
            open_devices(&mut watch),
            1,
            "shared device survives the first disconnect"
        );
        std::thread::sleep(StdDuration::from_millis(5));
    }

    // The survivor keeps streaming — the buffer is still live.
    match second.ingest(buffered_burst("dev-shared", 2)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }

    // Last reference gone: now the device flushes and its session ends.
    drop(second);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    loop {
        if open_devices(&mut watch) == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "last disconnect must flush the shared device"
        );
        std::thread::sleep(StdDuration::from_millis(10));
    }

    drop(watch);
    handle.shutdown().unwrap();
}

/// The session invariants must hold *across loop shards*: with four
/// event-loop shards the acceptor deals consecutive connections to
/// different shards, so two clients streaming the same device live on
/// different loops (and their device's translator state on one shared
/// translator shard). Flush-all stays session-scoped, teardown stays
/// refcounted, and `Metrics` reports the shard topology.
#[test]
fn sessions_hold_across_loop_shards() {
    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            loop_shards: 4,
            translator_shards: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Connect in order: round-robin places each on its own loop shard
    // (watch:0, solo:1, first:2, second:3), mixing wire versions.
    let mut watch = Client::connect(addr).unwrap();
    let mut solo = Client::connect(addr).unwrap();
    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect_v2(addr).unwrap();

    match solo.ingest(buffered_burst("dev-solo", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    match first.ingest(buffered_burst("dev-shared", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    match second.ingest(buffered_burst("dev-shared", 1)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    assert_eq!(open_devices(&mut watch), 2, "dev-solo + dev-shared open");

    // The topology is visible: four loop shards, each holding exactly one
    // of the four connections; a power-of-two translator shard count.
    match watch.metrics().unwrap() {
        Response::Metrics(m) => {
            assert_eq!(
                m.event_backend,
                if cfg!(target_os = "linux") {
                    "epoll"
                } else {
                    "poll"
                }
            );
            assert_eq!(m.loop_shards.len(), 4);
            let conns: Vec<usize> = m.loop_shards.iter().map(|s| s.connections).collect();
            assert_eq!(conns, vec![1, 1, 1, 1], "round-robin spread: {conns:?}");
            assert_eq!(m.translator_shards, 4);
        }
        other => panic!("metrics failed: {other:?}"),
    }

    // solo's flush-all (from loop shard 1) publishes only its own device,
    // not dev-shared buffered on another translator shard by other loops.
    match solo.flush(None).unwrap() {
        Response::Flushed { devices, .. } => assert_eq!(devices, 1),
        other => panic!("flush failed: {other:?}"),
    }
    assert_eq!(open_devices(&mut watch), 1, "dev-shared still buffered");

    // first (loop shard 2) disconnects; second (loop shard 3) still
    // streams dev-shared — the cross-shard refcount must spare it.
    drop(first);
    for _ in 0..10 {
        assert_eq!(
            open_devices(&mut watch),
            1,
            "shared device survives a disconnect on another loop shard"
        );
        std::thread::sleep(StdDuration::from_millis(5));
    }
    match second.ingest(buffered_burst("dev-shared", 2)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }

    // Last reference gone: the device flushes and its session ends.
    drop(second);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    loop {
        if open_devices(&mut watch) == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "last disconnect must flush the shared device"
        );
        std::thread::sleep(StdDuration::from_millis(10));
    }

    drop((watch, solo));
    handle.shutdown().unwrap();
}

/// Bugfix 3: wire-level snapshot paths resolve inside the configured
/// root; escapes are rejected; no configured root rejects everything.
#[test]
fn snapshot_paths_are_confined_to_the_root() {
    let root = std::env::temp_dir().join(format!("trips-snap-root-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();

    let boot = deployment();
    let server = TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            snapshot_root: Some(root.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let mut client = Client::connect_v2(handle.addr()).unwrap();

    match client.ingest(buffered_burst("dev-snap", 0)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }

    // Escapes and absolute paths: typed BadRequest, session survives.
    for bad in ["/etc/trips-oops.json", "../escape.json", "a/../../b.json"] {
        match client.snapshot(bad).unwrap() {
            Response::Error(ServerError::BadRequest { message }) => {
                assert!(message.contains("snapshot rejected"), "{bad}: {message}")
            }
            other => panic!("{bad} must be rejected, got {other:?}"),
        }
    }

    // Happy path: a nested relative path lands inside the root (parents
    // are created) and flushes buffers first.
    let resolved = match client.snapshot("nightly/mall.json").unwrap() {
        Response::SnapshotSaved {
            path,
            devices,
            semantics,
        } => {
            assert!(
                devices >= 1 && semantics >= 1,
                "buffers flushed into the snapshot"
            );
            path
        }
        other => panic!("snapshot failed: {other:?}"),
    };
    assert_eq!(
        resolved,
        root.join("nightly/mall.json").display().to_string()
    );
    assert!(root.join("nightly/mall.json").is_file());

    drop(client);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
