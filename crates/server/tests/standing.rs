//! End-to-end standing-query tests: subscribe TQL rules over TCP (both
//! protocol versions), stream traffic, and assert pushed alerts arrive on
//! the subscribing connections — plus the session-scoping rules: only the
//! owning connection can unsubscribe, and teardown unregisters.

use std::time::{Duration as StdDuration, Instant};
use trips_data::{DeviceId, RawRecord, Timestamp};
use trips_server::{
    bootstrap_scenario, Client, Response, ServerBootstrap, ServerConfig, ServerError, TripsServer,
};
use trips_sim::ScenarioConfig;
use trips_store::{Alert, QueryResult};

fn deployment() -> ServerBootstrap {
    bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0x5E55,
            ..ScenarioConfig::default()
        },
    )
}

/// A walk for `device` that crosses the mall floor, so the translator
/// publishes at least one region entry when flushed.
fn walk(device: &str, base_minutes: i64) -> Vec<RawRecord> {
    (0..20)
        .map(|i| {
            RawRecord::new(
                DeviceId::new(device),
                4.0 + (i as f64) * 0.4,
                5.0,
                0,
                Timestamp::from_dhms(0, 10, base_minutes, i * 2),
            )
        })
        .collect()
}

fn drain_alerts(client: &mut Client, quiet: StdDuration) -> Vec<Alert> {
    let mut alerts = Vec::new();
    while let Some(alert) = client.recv_alert(quiet).unwrap() {
        alerts.push(alert);
    }
    alerts
}

#[test]
fn standing_rules_alert_over_both_protocols() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut sub_v1 = Client::connect(addr).unwrap();
    let mut sub_v2 = Client::connect_v2(addr).unwrap();
    let tql = r#"RULE "entries" WHEN device ENTERS region "*" ALERT "device entered""#;
    let (id_v1, name_v1) = sub_v1.subscribe(tql).unwrap().unwrap();
    let (id_v2, name_v2) = sub_v2.subscribe(tql).unwrap().unwrap();
    assert_ne!(id_v1, id_v2);
    assert_eq!(name_v1, "entries");
    assert_eq!(name_v2, "entries");

    // A third connection streams two devices and flushes — publication
    // runs the rules, which push to both subscribers.
    let mut feeder = Client::connect(addr).unwrap();
    for device in ["walker-a", "walker-b"] {
        match feeder.ingest(walk(device, 0)).unwrap() {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
            other => panic!("ingest failed: {other:?}"),
        }
    }
    match feeder.flush(None).unwrap() {
        Response::Flushed { .. } => {}
        other => panic!("flush failed: {other:?}"),
    }

    let a_v1 = drain_alerts(&mut sub_v1, StdDuration::from_secs(2));
    let a_v2 = drain_alerts(&mut sub_v2, StdDuration::from_secs(2));
    assert!(
        a_v1.len() >= 2,
        "both walkers entered at least one region: {a_v1:?}"
    );
    assert_eq!(
        a_v1.len(),
        a_v2.len(),
        "identical rules over identical traffic fire identically"
    );
    for alert in &a_v1 {
        assert_eq!(alert.rule_id, id_v1);
        assert_eq!(alert.rule_name, "entries");
        assert_eq!(alert.message, "device entered");
        assert!(alert.device.is_some(), "ENTERS alerts carry the device");
        assert!(alert.region.is_some(), "ENTERS alerts carry the region");
    }
    assert!(a_v2.iter().all(|a| a.rule_id == id_v2));

    // Traces are server-wide and visible from any connection.
    let rules = feeder.list_rules().unwrap().unwrap();
    assert_eq!(rules.len(), 2);
    for trace in &rules {
        assert_eq!(trace.name, "entries");
        assert_eq!(trace.fires, a_v1.len() as u64);
        assert!(
            trace.source.contains("ENTERS"),
            "trace echoes canonical TQL"
        );
    }
    match feeder.metrics().unwrap() {
        Response::Metrics(report) => {
            assert_eq!(report.rules.len(), 2);
            assert_eq!(report.alerts_delivered, (a_v1.len() + a_v2.len()) as u64);
            assert_eq!(report.alerts_dropped, 0);
        }
        other => panic!("metrics failed: {other:?}"),
    }

    // Ownership: a session can only unsubscribe its own rules.
    assert!(!sub_v1.unsubscribe(id_v2).unwrap().unwrap(), "not its rule");
    assert!(!sub_v1.unsubscribe(99_999).unwrap().unwrap());
    assert!(sub_v1.unsubscribe(id_v1).unwrap().unwrap());
    assert!(!sub_v1.unsubscribe(id_v1).unwrap().unwrap(), "already gone");

    // After v1 unsubscribes, fresh traffic alerts only the v2 subscriber.
    match feeder.ingest(walk("walker-c", 30)).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 20),
        other => panic!("ingest failed: {other:?}"),
    }
    match feeder.flush(Some("walker-c")).unwrap() {
        Response::Flushed { .. } => {}
        other => panic!("flush failed: {other:?}"),
    }
    let late_v2 = drain_alerts(&mut sub_v2, StdDuration::from_secs(2));
    assert!(!late_v2.is_empty(), "surviving subscription still fires");
    assert!(
        drain_alerts(&mut sub_v1, StdDuration::from_millis(200)).is_empty(),
        "unsubscribed session goes quiet"
    );

    drop((sub_v1, sub_v2, feeder));
    handle.shutdown().unwrap();
}

#[test]
fn subscribe_rejects_find_and_bad_tql() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    match client.subscribe("FIND stats").unwrap() {
        Err(ServerError::BadRequest { message }) => {
            assert!(
                message.contains("one-shot"),
                "explains the split: {message}"
            );
        }
        other => panic!("FIND over Subscribe must be rejected: {other:?}"),
    }
    // Parse errors come back with the rendered caret diagnostic.
    match client.subscribe("WHEN device ENTERS room 3 ALERT").unwrap() {
        Err(ServerError::BadRequest { message }) => {
            assert!(message.contains("expected `region"), "{message}");
            assert!(message.contains('^'), "caret rendering included: {message}");
        }
        other => panic!("bad TQL must be rejected: {other:?}"),
    }
    // The connection is fine afterwards — and one-shot TQL works on it.
    match client.query_tql("FIND stats").unwrap().unwrap() {
        QueryResult::Stats(_) => {}
        other => panic!("expected stats: {other:?}"),
    }

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn teardown_unregisters_session_rules() {
    let boot = deployment();
    let server = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default()).unwrap();
    let handle = server.spawn("127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut subscriber = Client::connect_v2(addr).unwrap();
    subscriber
        .subscribe(r#"WHEN occupancy(region "*") > 1000 ALERT "crowded""#)
        .unwrap()
        .unwrap();
    let mut observer = Client::connect(addr).unwrap();
    assert_eq!(observer.list_rules().unwrap().unwrap().len(), 1);

    // Closing the subscribing connection must unregister its rules once
    // the loop shard notices the hangup.
    drop(subscriber);
    let deadline = Instant::now() + StdDuration::from_secs(5);
    loop {
        if observer.list_rules().unwrap().unwrap().is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rules survived their session's teardown"
        );
        std::thread::sleep(StdDuration::from_millis(25));
    }

    drop(observer);
    handle.shutdown().unwrap();
}
