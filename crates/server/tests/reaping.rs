//! Idle-connection reaping (`--idle-timeout`): connections with no
//! traffic past the timeout are closed by their event loop (timerfd tick
//! on epoll, timeout lap on poll), counted in `connections_reaped`, while
//! active connections ride through untouched.

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use trips_server::{
    bootstrap_scenario, BackendChoice, Client, Response, ServerConfig, TripsServer,
};
use trips_sim::ScenarioConfig;

fn spawn_reaping_server(backend: BackendChoice) -> trips_server::ServerHandle {
    let boot = bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0x1D1E,
            ..ScenarioConfig::default()
        },
    );
    TripsServer::new(
        boot.dsm,
        boot.editor,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(300)),
            backend,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap()
}

fn idle_conns_reaped_active_survive(backend: BackendChoice) {
    let handle = spawn_reaping_server(backend);
    let addr = handle.addr();

    // A raw idle connection: never sends a byte, so it is quiescent from
    // the server's perspective and must be reaped after the timeout.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // An active connection pinging well inside the timeout window.
    let mut active = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_millis(1200);
    while Instant::now() < deadline {
        match active.ping().unwrap() {
            Response::Pong => {}
            other => panic!("active ping failed: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // The reaped socket reads EOF (server closed it); the blocking read
    // also proves the close actually happened rather than timing out.
    let mut buf = [0u8; 16];
    let n = idle.read(&mut buf).unwrap();
    assert_eq!(n, 0, "idle connection must be closed by the server");

    // The still-active connection works and the reap is accounted.
    match active.metrics().unwrap() {
        Response::Metrics(m) => {
            assert!(
                m.connections_reaped >= 1,
                "expected at least one reaped connection, got {}",
                m.connections_reaped
            );
        }
        other => panic!("metrics failed: {other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn idle_connections_reaped_on_default_backend() {
    idle_conns_reaped_active_survive(BackendChoice::Auto);
}

#[test]
fn idle_connections_reaped_on_poll_backend() {
    idle_conns_reaped_active_survive(BackendChoice::Poll);
}

/// With the timeout off (the default), idle connections are never reaped.
#[test]
fn no_timeout_means_no_reaping() {
    let boot = bootstrap_scenario(
        1,
        3,
        &ScenarioConfig {
            devices: 2,
            days: 1,
            seed: 0x1D1E,
            ..ScenarioConfig::default()
        },
    );
    let handle = TripsServer::new(boot.dsm, boot.editor, ServerConfig::default())
        .unwrap()
        .spawn("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();
    let _idle = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(600));
    let mut client = Client::connect(addr).unwrap();
    match client.metrics().unwrap() {
        Response::Metrics(m) => {
            assert_eq!(m.connections_reaped, 0);
            assert!(
                m.active_connections >= 2,
                "both connections must still be open, saw {}",
                m.active_connections
            );
        }
        other => panic!("metrics failed: {other:?}"),
    }
    handle.shutdown().unwrap();
}
