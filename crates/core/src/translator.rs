//! The Translator: Cleaning → Annotation → Complementing over each selected
//! positioning sequence (paper §2/§3), "without manual interventions".

use trips_annotate::{Annotator, AnnotatorConfig, EventModel, MobilitySemantics};
use trips_clean::{CleanedSequence, Cleaner, CleanerConfig};
use trips_complement::{Complementor, ComplementorConfig, MobilityKnowledge};
use trips_data::PositioningSequence;
use trips_dsm::{DigitalSpaceModel, DsmError};
use trips_engine::{Pipeline, PipelineReport};

/// Which classifier the Annotator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelChoice {
    /// CART decision tree (default).
    #[default]
    DecisionTree,
    /// Bagged random forest with this many trees.
    RandomForest(usize),
    /// k-nearest neighbours.
    Knn(usize),
}

/// Translator configuration.
#[derive(Debug, Clone)]
pub struct TranslatorConfig {
    pub cleaner: CleanerConfig,
    pub annotator: AnnotatorConfig,
    pub complementor: ComplementorConfig,
    pub model: ModelChoice,
    /// Worker threads for the parallel backend (0 or 1 = serial).
    pub threads: usize,
    /// RNG seed for [`ModelChoice::RandomForest`] bagging. The default
    /// (`0xBEEF`) is pinned by the golden tests; change it to retrain with
    /// different bootstrap samples.
    pub forest_seed: u64,
}

impl Default for TranslatorConfig {
    fn default() -> Self {
        TranslatorConfig {
            cleaner: CleanerConfig::default(),
            annotator: AnnotatorConfig::default(),
            complementor: ComplementorConfig::default(),
            model: ModelChoice::default(),
            threads: 0,
            forest_seed: 0xBEEF,
        }
    }
}

impl TranslatorConfig {
    /// Standard configuration (merge gap enabled, serial execution).
    pub fn standard() -> Self {
        TranslatorConfig {
            annotator: AnnotatorConfig::standard(),
            ..TranslatorConfig::default()
        }
    }

    /// Standard configuration with `n` worker threads.
    pub fn parallel(n: usize) -> Self {
        TranslatorConfig {
            threads: n,
            ..Self::standard()
        }
    }
}

/// Everything the Translator produced for one device.
#[derive(Debug, Clone)]
pub struct DeviceTranslation {
    pub raw: PositioningSequence,
    pub cleaned: CleanedSequence,
    /// The Annotator's output before complementing ("original mobility
    /// semantics sequence").
    pub original_semantics: Vec<MobilitySemantics>,
    /// The complete sequence after the Complementing layer.
    pub semantics: Vec<MobilitySemantics>,
}

impl DeviceTranslation {
    /// Conciseness: raw records per output semantics entry (Table 1's point
    /// that semantics "use a more condensed form").
    pub fn conciseness_ratio(&self) -> f64 {
        if self.semantics.is_empty() {
            return 0.0;
        }
        self.raw.len() as f64 / self.semantics.len() as f64
    }

    /// Number of inferred (complemented) entries.
    pub fn inferred_count(&self) -> usize {
        self.semantics.iter().filter(|s| s.inferred).count()
    }
}

/// The result of one translation task over many devices.
#[derive(Debug, Clone, Default)]
pub struct TranslationResult {
    pub devices: Vec<DeviceTranslation>,
    /// Per-stage wall-clock timings of the pipeline run that produced this
    /// result (clean+annotate / knowledge / complement).
    pub report: PipelineReport,
}

impl TranslationResult {
    /// Total raw records translated.
    pub fn total_records(&self) -> usize {
        self.devices.iter().map(|d| d.raw.len()).sum()
    }

    /// Total output semantics entries.
    pub fn total_semantics(&self) -> usize {
        self.devices.iter().map(|d| d.semantics.len()).sum()
    }

    /// The translation of a specific device, if present.
    pub fn device(&self, id: &trips_data::DeviceId) -> Option<&DeviceTranslation> {
        self.devices.iter().find(|d| d.raw.device() == id)
    }
}

/// The Translator.
pub struct Translator<'a> {
    dsm: &'a DigitalSpaceModel,
    model: EventModel,
    labels: Vec<String>,
    config: TranslatorConfig,
}

impl<'a> Translator<'a> {
    /// Creates a translator with a pre-trained event model.
    pub fn new(
        dsm: &'a DigitalSpaceModel,
        model: EventModel,
        labels: Vec<String>,
        config: TranslatorConfig,
    ) -> Result<Self, DsmError> {
        dsm.topology()?; // must be frozen
        assert!(!labels.is_empty(), "label vocabulary must not be empty");
        Ok(Translator {
            dsm,
            model,
            labels,
            config,
        })
    }

    /// Trains the model from an event editor and builds the translator
    /// (the paper's step (3) → step (4) hand-off).
    pub fn from_editor(
        dsm: &'a DigitalSpaceModel,
        editor: &trips_annotate::EventEditor,
        config: TranslatorConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let (model, labels) = match config.model {
            ModelChoice::DecisionTree => editor.train_default_model()?,
            ModelChoice::RandomForest(n) => editor.train_forest(n, config.forest_seed)?,
            ModelChoice::Knn(k) => editor.train_knn(k)?,
        };
        Ok(Translator::new(dsm, model, labels, config)?)
    }

    /// Translates the selected sequences into mobility semantics.
    ///
    /// Pipeline (all fan-out through [`trips_engine`], so parallel output is
    /// bit-identical to serial):
    ///
    /// 1. `clean+annotate` — clean and annotate every sequence;
    /// 2. `knowledge` — build the mobility knowledge over *all* original
    ///    semantics (the Complementor "refer\[s\] to other generated
    ///    mobility semantics sequences"), a serial barrier;
    /// 3. `complement` — complement each sequence.
    ///
    /// Per-stage wall-clock timings land in [`TranslationResult::report`].
    pub fn translate(&self, sequences: &[PositioningSequence]) -> TranslationResult {
        let mut pipeline = Pipeline::new(self.config.threads);

        // Built once and shared by every worker (they used to be rebuilt
        // from cloned configs for each device).
        let cleaner = Cleaner::new(self.dsm, self.config.cleaner.clone()).expect("frozen DSM");
        let annotator = Annotator::new(
            self.dsm,
            self.model.clone(),
            self.labels.clone(),
            self.config.annotator.clone(),
        );

        let per_device: Vec<(PositioningSequence, CleanedSequence, Vec<MobilitySemantics>)> =
            pipeline.map("clean+annotate", sequences, |_, seq| {
                let cleaned = cleaner.clean(seq);
                let sems = annotator.annotate(&cleaned.sequence);
                (seq.clone(), cleaned, sems)
            });

        let originals: Vec<&Vec<MobilitySemantics>> =
            per_device.iter().map(|(_, _, sems)| sems).collect();
        let complementor = pipeline.stage("knowledge", || {
            let knowledge = MobilityKnowledge::build(self.dsm, &originals, 0.5);
            Complementor::new(self.dsm, knowledge, self.config.complementor.clone())
        });
        let complemented: Vec<Vec<MobilitySemantics>> =
            pipeline.map("complement", &originals, |_, original| {
                complementor.complement(original)
            });

        let devices = per_device
            .into_iter()
            .zip(complemented)
            .map(|((raw, cleaned, original), semantics)| DeviceTranslation {
                raw,
                cleaned,
                original_semantics: original,
                semantics,
            })
            .collect();
        TranslationResult {
            devices,
            report: pipeline.finish(),
        }
    }

    /// The label vocabulary in use.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_sim::{ScenarioConfig, SimulatedDataset};

    fn dataset() -> SimulatedDataset {
        trips_sim::scenario::generate(
            2,
            3,
            &ScenarioConfig {
                devices: 4,
                days: 1,
                seed: 2024,
                ..ScenarioConfig::default()
            },
        )
    }

    /// Editor trained from the simulated ground truth: designate segments of
    /// true visits with their true kinds.
    fn editor_from_truth(ds: &SimulatedDataset) -> trips_annotate::EventEditor {
        let mut editor = trips_annotate::EventEditor::with_default_patterns();
        for trace in &ds.traces {
            for visit in &trace.truth_visits {
                let segment: Vec<trips_data::RawRecord> = trace
                    .raw
                    .records()
                    .iter()
                    .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                    .cloned()
                    .collect();
                if segment.len() < 2 {
                    continue;
                }
                let pattern = visit.kind.name();
                let _ = editor.designate_segment(pattern, &segment);
            }
        }
        editor
    }

    #[test]
    fn end_to_end_translation_produces_semantics() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let result = translator.translate(&ds.sequences());
        assert_eq!(result.devices.len(), 4);
        assert!(result.total_semantics() > 0);
        assert!(
            result.total_records() > result.total_semantics(),
            "condensed"
        );
        for d in &result.devices {
            // Semantics chronological and well-formed.
            for w in d.semantics.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
            for s in &d.semantics {
                assert!(s.start <= s.end);
                assert!(!s.region_name.is_empty());
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let serial =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let parallel =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::parallel(4)).unwrap();
        let seqs = ds.sequences();
        let a = serial.translate(&seqs);
        let b = parallel.translate(&seqs);
        assert_eq!(a.devices.len(), b.devices.len());
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.raw.device(), db.raw.device());
            assert_eq!(da.semantics, db.semantics, "parallel must be bit-identical");
            assert_eq!(da.cleaned.report, db.cleaned.report);
        }
    }

    #[test]
    fn complementing_adds_only_inferred_entries() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let result = translator.translate(&ds.sequences());
        for d in &result.devices {
            let observed: Vec<_> = d.semantics.iter().filter(|s| !s.inferred).collect();
            assert_eq!(
                observed.len(),
                d.original_semantics.len(),
                "complementing must not drop observed semantics"
            );
            assert_eq!(d.semantics.len() - observed.len(), d.inferred_count());
        }
    }

    #[test]
    fn pipeline_report_has_stage_timings() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let t = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let r = t.translate(&ds.sequences());
        let names: Vec<&str> = r.report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["clean+annotate", "knowledge", "complement"]);
        assert_eq!(r.report.stage("clean+annotate").unwrap().items, 4);
        assert_eq!(r.report.stage("complement").unwrap().items, 4);
        assert!(r.report.total_wall() > std::time::Duration::ZERO);
    }

    #[test]
    fn forest_seed_is_configurable() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        assert_eq!(TranslatorConfig::default().forest_seed, 0xBEEF);
        assert_eq!(TranslatorConfig::standard().forest_seed, 0xBEEF);
        for seed in [0xBEEF, 7, 0xDEAD_BEEF] {
            let cfg = TranslatorConfig {
                model: ModelChoice::RandomForest(5),
                forest_seed: seed,
                ..TranslatorConfig::standard()
            };
            let t = Translator::from_editor(&ds.dsm, &editor, cfg).unwrap();
            let r = t.translate(&ds.sequences()[..1]);
            assert_eq!(r.devices.len(), 1, "seed {seed:#x} must train and run");
        }
    }

    #[test]
    fn model_choices_all_run() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        for model in [
            ModelChoice::DecisionTree,
            ModelChoice::RandomForest(5),
            ModelChoice::Knn(3),
        ] {
            let cfg = TranslatorConfig {
                model,
                ..TranslatorConfig::standard()
            };
            let t = Translator::from_editor(&ds.dsm, &editor, cfg).unwrap();
            let r = t.translate(&ds.sequences()[..1]);
            assert_eq!(r.devices.len(), 1);
        }
    }

    #[test]
    fn empty_input_empty_output() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let t = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let r = t.translate(&[]);
        assert!(r.devices.is_empty());
        assert_eq!(r.total_records(), 0);
    }

    #[test]
    fn device_lookup() {
        let ds = dataset();
        let editor = editor_from_truth(&ds);
        let t = Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let r = t.translate(&ds.sequences());
        let id = ds.traces[0].device.clone();
        assert!(r.device(&id).is_some());
        assert!(r.device(&trips_data::DeviceId::new("ghost")).is_none());
    }
}
