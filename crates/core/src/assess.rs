//! Translation-quality assessment against ground truth.
//!
//! The paper's third challenge: "the translation result needs to be assessed
//! properly". The real deployment can only eyeball raw-vs-semantics in the
//! Viewer; the simulator gives us real ground truth (true visits), so this
//! module computes quantitative quality — the numbers behind experiments
//! F3a–F3c and F5.

use trips_annotate::MobilitySemantics;
use trips_data::{Duration, Timestamp};
use trips_sim::TrueVisit;

/// Quality of one device's translated semantics vs its true visits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssessmentReport {
    /// Fraction of true visit time where the predicted region matches.
    pub region_time_accuracy: f64,
    /// Fraction of true visit time covered by *any* semantics entry.
    pub coverage: f64,
    /// Among overlapping (semantics, visit) pairs with matching region,
    /// fraction whose event annotation also matches.
    pub event_accuracy: f64,
    /// Total true visit duration assessed.
    pub truth_duration: Duration,
    /// Number of semantics entries assessed.
    pub semantics_count: usize,
    /// Number of true visits assessed.
    pub visit_count: usize,
}

fn overlap(a0: Timestamp, a1: Timestamp, b0: Timestamp, b1: Timestamp) -> Duration {
    let start = a0.max(b0);
    let end = a1.min(b1);
    if end > start {
        end - start
    } else {
        Duration::ZERO
    }
}

/// Assesses one device's semantics against its ground-truth visits.
pub fn assess(semantics: &[MobilitySemantics], truth: &[TrueVisit]) -> AssessmentReport {
    let mut report = AssessmentReport {
        semantics_count: semantics.len(),
        visit_count: truth.len(),
        ..AssessmentReport::default()
    };
    if truth.is_empty() {
        return report;
    }

    let total_ms: i64 = truth.iter().map(|v| v.duration().as_millis()).sum();
    report.truth_duration = Duration(total_ms);
    if total_ms == 0 {
        return report;
    }

    let mut matched_ms = 0i64;
    let mut covered_ms = 0i64;
    let mut event_pairs = 0usize;
    let mut event_hits = 0usize;

    for visit in truth {
        // Coverage: union of semantics overlaps. Semantics are
        // non-overlapping in time, so summing is exact.
        for s in semantics {
            let ov = overlap(visit.start, visit.end, s.start, s.end);
            if ov == Duration::ZERO {
                continue;
            }
            covered_ms += ov.as_millis();
            if s.region == visit.region {
                matched_ms += ov.as_millis();
                // Event agreement judged on substantial overlaps only
                // (≥ 50 % of the shorter interval), where the comparison is
                // meaningful.
                let shorter = visit
                    .duration()
                    .as_millis()
                    .min(s.duration().as_millis())
                    .max(1);
                if ov.as_millis() * 2 >= shorter {
                    event_pairs += 1;
                    if s.event == visit.kind.name() {
                        event_hits += 1;
                    }
                }
            }
        }
    }

    report.region_time_accuracy = matched_ms as f64 / total_ms as f64;
    report.coverage = (covered_ms as f64 / total_ms as f64).min(1.0);
    report.event_accuracy = if event_pairs == 0 {
        0.0
    } else {
        event_hits as f64 / event_pairs as f64
    };
    report
}

/// Aggregates per-device reports into a macro average (weighted by truth
/// duration).
pub fn aggregate(reports: &[AssessmentReport]) -> AssessmentReport {
    let total_ms: i64 = reports.iter().map(|r| r.truth_duration.as_millis()).sum();
    if total_ms == 0 {
        return AssessmentReport::default();
    }
    let w = |f: fn(&AssessmentReport) -> f64| {
        reports
            .iter()
            .map(|r| f(r) * r.truth_duration.as_millis() as f64)
            .sum::<f64>()
            / total_ms as f64
    };
    AssessmentReport {
        region_time_accuracy: w(|r| r.region_time_accuracy),
        coverage: w(|r| r.coverage),
        event_accuracy: w(|r| r.event_accuracy),
        truth_duration: Duration(total_ms),
        semantics_count: reports.iter().map(|r| r.semantics_count).sum(),
        visit_count: reports.iter().map(|r| r.visit_count).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::DeviceId;
    use trips_dsm::RegionId;
    use trips_sim::VisitKind;

    fn sem(region: u32, event: &str, start_s: i64, end_s: i64) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new("d"),
            event: event.into(),
            region: RegionId(region),
            region_name: format!("r{region}"),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn visit(region: u32, kind: VisitKind, start_s: i64, end_s: i64) -> TrueVisit {
        TrueVisit {
            region: RegionId(region),
            region_name: format!("r{region}"),
            kind,
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
        }
    }

    #[test]
    fn perfect_translation_scores_one() {
        let truth = vec![
            visit(1, VisitKind::Stay, 0, 200),
            visit(2, VisitKind::PassBy, 200, 230),
        ];
        let sems = vec![sem(1, "stay", 0, 200), sem(2, "pass-by", 200, 230)];
        let r = assess(&sems, &truth);
        assert!((r.region_time_accuracy - 1.0).abs() < 1e-9);
        assert!((r.coverage - 1.0).abs() < 1e-9);
        assert!((r.event_accuracy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_region_halves_accuracy() {
        let truth = vec![
            visit(1, VisitKind::Stay, 0, 100),
            visit(2, VisitKind::Stay, 100, 200),
        ];
        // Second semantics points at the wrong region.
        let sems = vec![sem(1, "stay", 0, 100), sem(9, "stay", 100, 200)];
        let r = assess(&sems, &truth);
        assert!((r.region_time_accuracy - 0.5).abs() < 1e-9);
        assert!((r.coverage - 1.0).abs() < 1e-9, "time still covered");
    }

    #[test]
    fn wrong_event_detected() {
        let truth = vec![visit(1, VisitKind::Stay, 0, 100)];
        let sems = vec![sem(1, "pass-by", 0, 100)];
        let r = assess(&sems, &truth);
        assert!((r.region_time_accuracy - 1.0).abs() < 1e-9);
        assert_eq!(r.event_accuracy, 0.0);
    }

    #[test]
    fn gaps_reduce_coverage() {
        let truth = vec![visit(1, VisitKind::Stay, 0, 100)];
        let sems = vec![sem(1, "stay", 0, 40)];
        let r = assess(&sems, &truth);
        assert!((r.coverage - 0.4).abs() < 1e-9);
        assert!((r.region_time_accuracy - 0.4).abs() < 1e-9);
    }

    #[test]
    fn tiny_overlaps_do_not_judge_events() {
        let truth = vec![visit(1, VisitKind::Stay, 0, 1000)];
        // 10 s sliver of a 1000 s visit, with the wrong event: region time
        // counts, but the event comparison is skipped (< 50 % overlap).
        let sems = vec![sem(1, "pass-by", 0, 10)];
        let r = assess(&sems, &truth);
        assert_eq!(r.event_accuracy, 0.0, "no qualified pairs → 0");
        assert!((r.region_time_accuracy - 0.01).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let r = assess(&[], &[]);
        assert_eq!(r, AssessmentReport::default());
        let truth = vec![visit(1, VisitKind::Stay, 0, 100)];
        let r = assess(&[], &truth);
        assert_eq!(r.coverage, 0.0);
        assert_eq!(r.visit_count, 1);
    }

    #[test]
    fn aggregate_weights_by_duration() {
        let a = AssessmentReport {
            region_time_accuracy: 1.0,
            coverage: 1.0,
            event_accuracy: 1.0,
            truth_duration: Duration::from_secs(300),
            semantics_count: 3,
            visit_count: 2,
        };
        let b = AssessmentReport {
            region_time_accuracy: 0.0,
            coverage: 0.5,
            event_accuracy: 0.0,
            truth_duration: Duration::from_secs(100),
            semantics_count: 1,
            visit_count: 1,
        };
        let agg = aggregate(&[a, b]);
        assert!((agg.region_time_accuracy - 0.75).abs() < 1e-9);
        assert!((agg.coverage - 0.875).abs() < 1e-9);
        assert_eq!(agg.semantics_count, 4);
        assert_eq!(agg.visit_count, 3);
        assert_eq!(aggregate(&[]), AssessmentReport::default());
    }
}
