//! Backend storage: "The data configurated in steps (2)-(3) will be stored
//! in the backend for the reuse in other translation tasks in the same
//! indoor space" (paper §4).
//!
//! The store persists DSMs, Event Editor training sets, and semantics-store
//! snapshots to a directory, keyed by name, behind a thread-safe in-memory
//! cache. It is the snapshot/restore backend for the in-memory
//! [`trips_store::SemanticsStore`] ([`Store::save_semantics`] /
//! [`Store::load_semantics`]).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use trips_annotate::{EventEditor, TrainingSet};
use trips_dsm::{json as dsm_json, DigitalSpaceModel};
use trips_store::{SemanticsStore, SemanticsStoreError};

/// Errors raised by the store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Dsm(trips_dsm::DsmError),
    Serde(String),
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Dsm(e) => write!(f, "store DSM error: {e}"),
            StoreError::Serde(e) => write!(f, "store serialization error: {e}"),
            StoreError::NotFound(k) => write!(f, "'{k}' not in store"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<trips_dsm::DsmError> for StoreError {
    fn from(e: trips_dsm::DsmError) -> Self {
        StoreError::Dsm(e)
    }
}

impl From<SemanticsStoreError> for StoreError {
    fn from(e: SemanticsStoreError) -> Self {
        match e {
            SemanticsStoreError::Io(io) => StoreError::Io(io),
            other => StoreError::Serde(other.to_string()),
        }
    }
}

/// Serializable form of an event editor's training data.
#[derive(serde::Serialize, serde::Deserialize)]
struct StoredTraining {
    patterns: Vec<(String, String)>,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
}

/// Directory-backed configuration store with an in-memory cache.
pub struct Store {
    dir: PathBuf,
    dsm_cache: RwLock<BTreeMap<String, DigitalSpaceModel>>,
    /// DSM names whose files already passed `list_dsms` validation, so
    /// repeat listings stay O(directory entries) instead of re-reading
    /// every file.
    validated_dsms: RwLock<std::collections::BTreeSet<String>>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            dsm_cache: RwLock::new(BTreeMap::new()),
            validated_dsms: RwLock::new(std::collections::BTreeSet::new()),
        })
    }

    fn dsm_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("dsm-{name}.json"))
    }

    fn training_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("events-{name}.json"))
    }

    /// Persists a DSM under `name`.
    pub fn save_dsm(&self, name: &str, dsm: &DigitalSpaceModel) -> Result<(), StoreError> {
        dsm_json::save(dsm, self.dsm_path(name))?;
        self.dsm_cache.write().insert(name.to_string(), dsm.clone());
        Ok(())
    }

    /// Loads a DSM by name (cache first, then disk; topology recomputed on
    /// cold loads).
    pub fn load_dsm(&self, name: &str) -> Result<DigitalSpaceModel, StoreError> {
        if let Some(dsm) = self.dsm_cache.read().get(name) {
            return Ok(dsm.clone());
        }
        let path = self.dsm_path(name);
        if !path.exists() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let dsm = dsm_json::load(path)?;
        self.dsm_cache.write().insert(name.to_string(), dsm.clone());
        Ok(dsm)
    }

    /// Lists stored DSM names.
    ///
    /// Unreadable or non-JSON `dsm-*.json` entries surface as errors here
    /// instead of being silently listed and only failing at `load_dsm`
    /// time. Validation reads each file once: names in the DSM cache or
    /// already validated by a previous listing are listed without touching
    /// the file again, so repeat listings are O(directory entries). Full
    /// DSM schema validation still happens at `load_dsm`; a file replaced
    /// with garbage *after* a successful listing is only caught there.
    pub fn list_dsms(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        // Snapshot known-good names up front: holding a lock across the
        // per-file reads would block writers (and then everyone, under
        // writer preference) for the whole directory scan.
        let mut known: std::collections::BTreeSet<String> =
            self.dsm_cache.read().keys().cloned().collect();
        known.extend(self.validated_dsms.read().iter().cloned());
        let mut newly_validated = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if let Some(stripped) = name
                .strip_prefix("dsm-")
                .and_then(|n| n.strip_suffix(".json"))
            {
                if !known.contains(stripped) {
                    let text = fs::read_to_string(entry.path())?;
                    serde_json::from_str::<serde_json::Value>(&text)
                        .map_err(|e| StoreError::Serde(format!("{name}: {e}")))?;
                    newly_validated.push(stripped.to_string());
                }
                names.push(stripped.to_string());
            }
        }
        if !newly_validated.is_empty() {
            self.validated_dsms.write().extend(newly_validated);
        }
        names.sort();
        Ok(names)
    }

    /// Persists an event editor's patterns and designations under `name`.
    pub fn save_training(&self, name: &str, editor: &EventEditor) -> Result<(), StoreError> {
        let ts = editor
            .build_training_set()
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        let stored = StoredTraining {
            patterns: editor
                .patterns()
                .iter()
                .map(|p| (p.name.clone(), p.description.clone()))
                .collect(),
            xs: ts.xs,
            ys: ts.ys,
        };
        let json =
            serde_json::to_string_pretty(&stored).map_err(|e| StoreError::Serde(e.to_string()))?;
        fs::write(self.training_path(name), json)?;
        Ok(())
    }

    fn semantics_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("semantics-{name}.json"))
    }

    /// Persists a semantics-store snapshot under `name` (the versioned JSON
    /// format documented in `trips-store`'s crate docs).
    pub fn save_semantics(&self, name: &str, store: &SemanticsStore) -> Result<(), StoreError> {
        store.persist(self.semantics_path(name))?;
        Ok(())
    }

    /// Restores a semantics store from the snapshot saved under `name`,
    /// recreating its shard layout and rebuilding all aggregates.
    pub fn load_semantics(&self, name: &str) -> Result<SemanticsStore, StoreError> {
        let path = self.semantics_path(name);
        if !path.exists() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        Ok(SemanticsStore::load(path)?)
    }

    /// Lists stored semantics-snapshot names.
    pub fn list_semantics(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().to_string();
            if let Some(stripped) = name
                .strip_prefix("semantics-")
                .and_then(|n| n.strip_suffix(".json"))
            {
                names.push(stripped.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Loads a stored training set by name.
    pub fn load_training(&self, name: &str) -> Result<TrainingSet, StoreError> {
        let path = self.training_path(name);
        if !path.exists() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let json = fs::read_to_string(path)?;
        let stored: StoredTraining =
            serde_json::from_str(&json).map_err(|e| StoreError::Serde(e.to_string()))?;
        Ok(TrainingSet {
            xs: stored.xs,
            ys: stored.ys,
            label_names: stored.patterns.into_iter().map(|(n, _)| n).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, RawRecord, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("trips-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn editor_with_data() -> EventEditor {
        let mut e = EventEditor::with_default_patterns();
        let stay: Vec<RawRecord> = (0..10)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    5.0,
                    5.0,
                    0,
                    Timestamp::from_millis(i * 7000),
                )
            })
            .collect();
        let walk: Vec<RawRecord> = (0..10)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    2.0 * i as f64,
                    0.0,
                    0,
                    Timestamp::from_millis(i * 1000),
                )
            })
            .collect();
        e.designate_segment("stay", &stay).unwrap();
        e.designate_segment("pass-by", &walk).unwrap();
        e
    }

    #[test]
    fn dsm_roundtrip_with_cache() {
        let store = temp_store("dsm");
        let dsm = MallBuilder::new().shops_per_row(2).build();
        store.save_dsm("mall", &dsm).unwrap();
        let back = store.load_dsm("mall").unwrap();
        assert_eq!(back.entity_count(), dsm.entity_count());
        assert!(back.is_frozen());
        assert_eq!(store.list_dsms().unwrap(), vec!["mall"]);
    }

    #[test]
    fn cold_load_from_disk() {
        let dir = std::env::temp_dir().join(format!("trips-store-cold-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store
                .save_dsm("mall", &MallBuilder::new().shops_per_row(2).build())
                .unwrap();
        }
        // New store instance: cache is empty, must read the file.
        let store2 = Store::open(&dir).unwrap();
        let dsm = store2.load_dsm("mall").unwrap();
        assert!(dsm.is_frozen(), "topology recomputed on load");
    }

    #[test]
    fn missing_keys() {
        let store = temp_store("missing");
        assert!(matches!(
            store.load_dsm("ghost"),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            store.load_training("ghost"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn list_dsms_surfaces_garbage_entries() {
        let store = temp_store("garbage");
        store
            .save_dsm("good", &MallBuilder::new().shops_per_row(2).build())
            .unwrap();
        assert_eq!(store.list_dsms().unwrap(), vec!["good"]);
        // A corrupt entry must fail the listing, not be listed as loadable.
        fs::write(store.dsm_path("bad"), "{ not json !").unwrap();
        match store.list_dsms() {
            Err(StoreError::Serde(msg)) => assert!(msg.contains("dsm-bad.json"), "{msg}"),
            other => panic!("garbage must surface as Serde error, got {other:?}"),
        }
    }

    #[test]
    fn list_dsms_validates_each_file_once() {
        let store = temp_store("validate-once");
        fs::write(store.dsm_path("cold"), "{}").unwrap();
        assert_eq!(store.list_dsms().unwrap(), vec!["cold"]);
        // After a successful listing the file is trusted: replacing it
        // with garbage no longer fails the (cached) listing — the damage
        // surfaces at load_dsm instead.
        fs::write(store.dsm_path("cold"), "{ not json !").unwrap();
        assert_eq!(store.list_dsms().unwrap(), vec!["cold"]);
        assert!(store.load_dsm("cold").is_err());
    }

    #[test]
    fn list_dsms_surfaces_unreadable_entries() {
        let store = temp_store("unreadable");
        // A directory masquerading as a DSM file is unreadable as a file;
        // the IO error must propagate instead of being swallowed.
        fs::create_dir_all(store.dsm_path("dir")).unwrap();
        assert!(matches!(store.list_dsms(), Err(StoreError::Io(_))));
    }

    #[test]
    fn semantics_snapshot_roundtrip_via_store() {
        use trips_data::Duration;
        use trips_store::SemanticsSelector;
        let store = temp_store("semantics");
        let sem_store = SemanticsStore::with_shards(4);
        for d in 0..6u32 {
            let id = DeviceId::new(&format!("dev-{d}"));
            let sems: Vec<trips_annotate::MobilitySemantics> = (0..4u32)
                .map(|i| trips_annotate::MobilitySemantics {
                    device: id.clone(),
                    event: if i % 2 == 0 { "stay" } else { "pass-by" }.into(),
                    region: trips_dsm::RegionId((d + i) % 3),
                    region_name: format!("R{}", (d + i) % 3),
                    start: Timestamp::from_millis(i as i64 * 60_000),
                    end: Timestamp::from_millis(i as i64 * 60_000 + 30_000),
                    inferred: false,
                    display_point: None,
                })
                .collect();
            sem_store.ingest(&id, &sems);
        }
        store.save_semantics("mall-day1", &sem_store).unwrap();
        assert_eq!(store.list_semantics().unwrap(), vec!["mall-day1"]);
        let back = store.load_semantics("mall-day1").unwrap();
        let all = SemanticsSelector::all();
        assert_eq!(back.popular_regions(&all), sem_store.popular_regions(&all));
        assert_eq!(
            back.dwell_histogram(&all, Duration::from_mins(1)),
            sem_store.dwell_histogram(&all, Duration::from_mins(1))
        );
        assert_eq!(back.semantics(&all), sem_store.semantics(&all));
        assert!(matches!(
            store.load_semantics("ghost"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn training_roundtrip() {
        let store = temp_store("training");
        let editor = editor_with_data();
        store.save_training("mall-events", &editor).unwrap();
        let ts = store.load_training("mall-events").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.label_names, vec!["stay", "pass-by"]);
        assert_eq!(ts.xs[0].len(), trips_annotate::features::FEATURE_DIM);
    }
}
