//! Backend storage: "The data configurated in steps (2)-(3) will be stored
//! in the backend for the reuse in other translation tasks in the same
//! indoor space" (paper §4).
//!
//! The store persists DSMs and Event Editor training sets to a directory,
//! keyed by name, behind a thread-safe in-memory cache.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use trips_annotate::{EventEditor, TrainingSet};
use trips_dsm::{json as dsm_json, DigitalSpaceModel};

/// Errors raised by the store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Dsm(trips_dsm::DsmError),
    Serde(String),
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Dsm(e) => write!(f, "store DSM error: {e}"),
            StoreError::Serde(e) => write!(f, "store serialization error: {e}"),
            StoreError::NotFound(k) => write!(f, "'{k}' not in store"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<trips_dsm::DsmError> for StoreError {
    fn from(e: trips_dsm::DsmError) -> Self {
        StoreError::Dsm(e)
    }
}

/// Serializable form of an event editor's training data.
#[derive(serde::Serialize, serde::Deserialize)]
struct StoredTraining {
    patterns: Vec<(String, String)>,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
}

/// Directory-backed configuration store with an in-memory cache.
pub struct Store {
    dir: PathBuf,
    dsm_cache: RwLock<BTreeMap<String, DigitalSpaceModel>>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            dsm_cache: RwLock::new(BTreeMap::new()),
        })
    }

    fn dsm_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("dsm-{name}.json"))
    }

    fn training_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("events-{name}.json"))
    }

    /// Persists a DSM under `name`.
    pub fn save_dsm(&self, name: &str, dsm: &DigitalSpaceModel) -> Result<(), StoreError> {
        dsm_json::save(dsm, self.dsm_path(name))?;
        self.dsm_cache.write().insert(name.to_string(), dsm.clone());
        Ok(())
    }

    /// Loads a DSM by name (cache first, then disk; topology recomputed on
    /// cold loads).
    pub fn load_dsm(&self, name: &str) -> Result<DigitalSpaceModel, StoreError> {
        if let Some(dsm) = self.dsm_cache.read().get(name) {
            return Ok(dsm.clone());
        }
        let path = self.dsm_path(name);
        if !path.exists() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let dsm = dsm_json::load(path)?;
        self.dsm_cache.write().insert(name.to_string(), dsm.clone());
        Ok(dsm)
    }

    /// Lists stored DSM names.
    pub fn list_dsms(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().to_string();
            if let Some(stripped) = name
                .strip_prefix("dsm-")
                .and_then(|n| n.strip_suffix(".json"))
            {
                names.push(stripped.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Persists an event editor's patterns and designations under `name`.
    pub fn save_training(&self, name: &str, editor: &EventEditor) -> Result<(), StoreError> {
        let ts = editor
            .build_training_set()
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        let stored = StoredTraining {
            patterns: editor
                .patterns()
                .iter()
                .map(|p| (p.name.clone(), p.description.clone()))
                .collect(),
            xs: ts.xs,
            ys: ts.ys,
        };
        let json =
            serde_json::to_string_pretty(&stored).map_err(|e| StoreError::Serde(e.to_string()))?;
        fs::write(self.training_path(name), json)?;
        Ok(())
    }

    /// Loads a stored training set by name.
    pub fn load_training(&self, name: &str) -> Result<TrainingSet, StoreError> {
        let path = self.training_path(name);
        if !path.exists() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let json = fs::read_to_string(path)?;
        let stored: StoredTraining =
            serde_json::from_str(&json).map_err(|e| StoreError::Serde(e.to_string()))?;
        Ok(TrainingSet {
            xs: stored.xs,
            ys: stored.ys,
            label_names: stored.patterns.into_iter().map(|(n, _)| n).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, RawRecord, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("trips-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn editor_with_data() -> EventEditor {
        let mut e = EventEditor::with_default_patterns();
        let stay: Vec<RawRecord> = (0..10)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    5.0,
                    5.0,
                    0,
                    Timestamp::from_millis(i * 7000),
                )
            })
            .collect();
        let walk: Vec<RawRecord> = (0..10)
            .map(|i| {
                RawRecord::new(
                    DeviceId::new("d"),
                    2.0 * i as f64,
                    0.0,
                    0,
                    Timestamp::from_millis(i * 1000),
                )
            })
            .collect();
        e.designate_segment("stay", &stay).unwrap();
        e.designate_segment("pass-by", &walk).unwrap();
        e
    }

    #[test]
    fn dsm_roundtrip_with_cache() {
        let store = temp_store("dsm");
        let dsm = MallBuilder::new().shops_per_row(2).build();
        store.save_dsm("mall", &dsm).unwrap();
        let back = store.load_dsm("mall").unwrap();
        assert_eq!(back.entity_count(), dsm.entity_count());
        assert!(back.is_frozen());
        assert_eq!(store.list_dsms().unwrap(), vec!["mall"]);
    }

    #[test]
    fn cold_load_from_disk() {
        let dir = std::env::temp_dir().join(format!("trips-store-cold-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            store
                .save_dsm("mall", &MallBuilder::new().shops_per_row(2).build())
                .unwrap();
        }
        // New store instance: cache is empty, must read the file.
        let store2 = Store::open(&dir).unwrap();
        let dsm = store2.load_dsm("mall").unwrap();
        assert!(dsm.is_frozen(), "topology recomputed on load");
    }

    #[test]
    fn missing_keys() {
        let store = temp_store("missing");
        assert!(matches!(
            store.load_dsm("ghost"),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            store.load_training("ghost"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn training_roundtrip() {
        let store = temp_store("training");
        let editor = editor_with_data();
        store.save_training("mall-events", &editor).unwrap();
        let ts = store.load_training("mall-events").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.label_names, vec!["stay", "pass-by"]);
        assert_eq!(ts.xs[0].len(), trips_annotate::features::FEATURE_DIM);
    }
}
