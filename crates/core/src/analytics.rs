//! Downstream analytics over translated mobility semantics.
//!
//! The paper motivates translation with the applications it "enables, e.g.,
//! indoor behavior prediction, popular indoor location discovery and
//! in-store marketing" (§1, refs \[6\]\[8\]\[2\]). This module implements the
//! analytics a mall analyst runs *after* translation — all of them consume
//! only semantics, never raw records, demonstrating the representation's
//! value.

use crate::translator::TranslationResult;
use std::collections::BTreeMap;
use trips_data::Duration;
use trips_dsm::RegionId;

/// Popularity of one semantic region across all translated devices.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPopularity {
    pub region: RegionId,
    pub region_name: String,
    /// Number of `stay` semantics in the region.
    pub stays: usize,
    /// Number of `pass-by` semantics in the region.
    pub pass_bys: usize,
    /// Distinct devices that stayed at least once.
    pub unique_stayers: usize,
    /// Total stay dwell time.
    pub total_dwell: Duration,
}

impl RegionPopularity {
    /// Conversion rate: stays per (stays + pass-bys) — how often walking
    /// past turns into a visit (the in-store-marketing question).
    pub fn conversion_rate(&self) -> f64 {
        let total = self.stays + self.pass_bys;
        if total == 0 {
            0.0
        } else {
            self.stays as f64 / total as f64
        }
    }
}

/// Ranks regions by stay count (popular indoor location discovery, ref \[8\]).
pub fn popular_regions(result: &TranslationResult) -> Vec<RegionPopularity> {
    let mut map: BTreeMap<RegionId, RegionPopularity> = BTreeMap::new();
    let mut stayers: BTreeMap<RegionId, std::collections::BTreeSet<&str>> = BTreeMap::new();
    for d in &result.devices {
        for s in &d.semantics {
            let e = map.entry(s.region).or_insert_with(|| RegionPopularity {
                region: s.region,
                region_name: s.region_name.clone(),
                stays: 0,
                pass_bys: 0,
                unique_stayers: 0,
                total_dwell: Duration::ZERO,
            });
            if s.event == "stay" {
                e.stays += 1;
                e.total_dwell = e.total_dwell + s.duration();
                stayers
                    .entry(s.region)
                    .or_default()
                    .insert(d.raw.device().as_str());
            } else {
                e.pass_bys += 1;
            }
        }
    }
    let mut out: Vec<RegionPopularity> = map
        .into_values()
        .map(|mut p| {
            p.unique_stayers = stayers.get(&p.region).map_or(0, |s| s.len());
            p
        })
        .collect();
    out.sort_by(|a, b| {
        b.stays
            .cmp(&a.stays)
            .then(b.total_dwell.cmp(&a.total_dwell))
    });
    out
}

/// One directed flow between two regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    pub from: RegionId,
    pub from_name: String,
    pub to: RegionId,
    pub to_name: String,
    pub count: usize,
}

/// Ranks region-to-region transitions by frequency (the mobility patterns
/// behind indoor behavior prediction, ref \[6\]).
pub fn top_flows(result: &TranslationResult, limit: usize) -> Vec<Flow> {
    let mut counts: BTreeMap<(RegionId, RegionId), (String, String, usize)> = BTreeMap::new();
    for d in &result.devices {
        for w in d.semantics.windows(2) {
            if w[0].region == w[1].region {
                continue;
            }
            let e = counts
                .entry((w[0].region, w[1].region))
                .or_insert_with(|| (w[0].region_name.clone(), w[1].region_name.clone(), 0));
            e.2 += 1;
        }
    }
    let mut flows: Vec<Flow> = counts
        .into_iter()
        .map(|((from, to), (from_name, to_name, count))| Flow {
            from,
            from_name,
            to,
            to_name,
            count,
        })
        .collect();
    flows.sort_by_key(|f| std::cmp::Reverse(f.count));
    flows.truncate(limit);
    flows
}

/// Histogram of stay dwell times with the given bucket width.
pub fn dwell_histogram(result: &TranslationResult, bucket: Duration) -> Vec<(Duration, usize)> {
    assert!(bucket.as_millis() > 0, "bucket must be positive");
    let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
    for d in &result.devices {
        for s in d.semantics.iter().filter(|s| s.event == "stay") {
            let b = s.duration().as_millis() / bucket.as_millis();
            *counts.entry(b).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .map(|(b, n)| (Duration(b * bucket.as_millis()), n))
        .collect()
}

/// Per-device visit summary: how many regions were visited and total time
/// accounted for (dashboard row for the analyst).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSummary {
    pub device: String,
    pub regions_visited: usize,
    pub stays: usize,
    pub accounted: Duration,
}

/// Summarises each translated device.
pub fn device_summaries(result: &TranslationResult) -> Vec<DeviceSummary> {
    result
        .devices
        .iter()
        .map(|d| {
            let regions: std::collections::BTreeSet<RegionId> =
                d.semantics.iter().map(|s| s.region).collect();
            DeviceSummary {
                device: d.raw.device().anonymized(),
                regions_visited: regions.len(),
                stays: d.semantics.iter().filter(|s| s.event == "stay").count(),
                accounted: Duration(d.semantics.iter().map(|s| s.duration().as_millis()).sum()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::DeviceTranslation;
    use trips_annotate::MobilitySemantics;
    use trips_clean::{CleanedSequence, CleaningReport};
    use trips_data::{DeviceId, PositioningSequence, Timestamp};

    fn sem(
        device: &str,
        region: u32,
        name: &str,
        event: &str,
        start_s: i64,
        end_s: i64,
    ) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: event.into(),
            region: RegionId(region),
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn device(name: &str, sems: Vec<MobilitySemantics>) -> DeviceTranslation {
        let d = DeviceId::new(name);
        let raw = PositioningSequence::new(d);
        DeviceTranslation {
            cleaned: CleanedSequence {
                sequence: raw.clone(),
                repairs: Vec::new(),
                report: CleaningReport::default(),
            },
            raw,
            original_semantics: sems.clone(),
            semantics: sems,
        }
    }

    fn sample() -> TranslationResult {
        TranslationResult {
            report: Default::default(),
            devices: vec![
                device(
                    "a.b.c.1",
                    vec![
                        sem("a.b.c.1", 1, "Nike", "stay", 0, 600),
                        sem("a.b.c.1", 2, "Hall", "pass-by", 600, 630),
                        sem("a.b.c.1", 3, "Adidas", "stay", 630, 900),
                    ],
                ),
                device(
                    "a.b.c.2",
                    vec![
                        sem("a.b.c.2", 2, "Hall", "pass-by", 0, 60),
                        sem("a.b.c.2", 1, "Nike", "stay", 60, 360),
                        sem("a.b.c.2", 2, "Hall", "pass-by", 360, 400),
                        sem("a.b.c.2", 1, "Nike", "stay", 400, 500),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn popularity_ranks_by_stays() {
        let pops = popular_regions(&sample());
        assert_eq!(pops[0].region_name, "Nike");
        assert_eq!(pops[0].stays, 3);
        assert_eq!(pops[0].unique_stayers, 2);
        assert_eq!(pops[0].total_dwell, Duration::from_secs(1000));
        let hall = pops.iter().find(|p| p.region_name == "Hall").unwrap();
        assert_eq!(hall.stays, 0);
        assert_eq!(hall.pass_bys, 3);
        assert_eq!(hall.conversion_rate(), 0.0);
        let nike = &pops[0];
        assert!((nike.conversion_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flows_count_directed_transitions() {
        let flows = top_flows(&sample(), 10);
        let nike_to_hall = flows
            .iter()
            .find(|f| f.from_name == "Nike" && f.to_name == "Hall")
            .unwrap();
        assert_eq!(nike_to_hall.count, 2);
        let hall_to_nike = flows
            .iter()
            .find(|f| f.from_name == "Hall" && f.to_name == "Nike")
            .unwrap();
        assert_eq!(hall_to_nike.count, 2);
        // Limit respected.
        assert_eq!(top_flows(&sample(), 1).len(), 1);
    }

    #[test]
    fn dwell_histogram_buckets() {
        let h = dwell_histogram(&sample(), Duration::from_mins(5));
        // Stays: 600 s (bucket 2), 270 s (bucket 0), 300 s (bucket 1), 100 s (bucket 0).
        let total: usize = h.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
        assert_eq!(h[0].1, 2, "two stays under 5 min: {h:?}");
    }

    #[test]
    fn device_summaries_aggregate() {
        let s = device_summaries(&sample());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].device, "a.*.1");
        assert_eq!(s[0].regions_visited, 3);
        assert_eq!(s[0].stays, 2);
        assert_eq!(s[0].accounted, Duration::from_secs(900));
    }

    #[test]
    fn empty_result_analytics() {
        let r = TranslationResult::default();
        assert!(popular_regions(&r).is_empty());
        assert!(top_flows(&r, 5).is_empty());
        assert!(dwell_histogram(&r, Duration::from_mins(1)).is_empty());
        assert!(device_summaries(&r).is_empty());
    }
}
