//! Downstream analytics over translated mobility semantics.
//!
//! The paper motivates translation with the applications it "enables, e.g.,
//! indoor behavior prediction, popular indoor location discovery and
//! in-store marketing" (§1, refs \[6\]\[8\]\[2\]). This module implements the
//! analytics a mall analyst runs *after* translation — all of them consume
//! only semantics, never raw records, demonstrating the representation's
//! value.
//!
//! Since the `trips-store` refactor these functions are thin wrappers over
//! [`trips_store::SemanticsStore`] queries: each builds a one-shot
//! single-shard store from the [`TranslationResult`] and runs the
//! corresponding aggregate query, producing results identical to the old
//! full-rescan implementations (pinned by this module's tests and the
//! workspace `analytics_equivalence` test). Long-lived consumers should
//! query the live store published by `Trips::run` / the streaming
//! translator via [`trips_store::QueryService`] instead — that path reuses
//! the incremental aggregates and never rescans.

use crate::translator::TranslationResult;
use std::collections::BTreeMap;
use trips_data::{DeviceId, Duration};
use trips_store::{SemanticsSelector, SemanticsStore};

pub use trips_store::{DeviceSummary, Flow, RegionPopularity};

/// Publishes every device translation into `store` (device order
/// preserved; devices with no semantics still register).
///
/// Each entry is published as an independent session: if the same device
/// id appears in several result entries, no directed flow is counted
/// across the entry boundary — matching the pre-refactor per-entry
/// `windows(2)` flow counting. Region/dwell aggregates for such a device
/// merge across its entries (as the rescan implementations also did), and
/// its [`device_summaries`] row reflects the merged totals.
pub fn ingest_result(store: &SemanticsStore, result: &TranslationResult) {
    for d in &result.devices {
        // A translated device with zero semantics was still selected and
        // processed — register it so store stats reflect the run's scope
        // (a plain empty `ingest` is deliberately a no-op).
        store.register_device(d.raw.device());
        store.ingest(d.raw.device(), &d.semantics);
        store.end_session(d.raw.device());
    }
}

/// One-shot store for the wrapper functions: a single shard keeps the
/// merge step trivial for transient use.
fn store_from(result: &TranslationResult) -> SemanticsStore {
    let store = SemanticsStore::with_shards(1);
    ingest_result(&store, result);
    store
}

/// Ranks regions by stay count (popular indoor location discovery, ref \[8\]).
pub fn popular_regions(result: &TranslationResult) -> Vec<RegionPopularity> {
    store_from(result).popular_regions(&SemanticsSelector::all())
}

/// Ranks region-to-region transitions by frequency (the mobility patterns
/// behind indoor behavior prediction, ref \[6\]).
pub fn top_flows(result: &TranslationResult, limit: usize) -> Vec<Flow> {
    store_from(result).top_flows(&SemanticsSelector::all(), limit)
}

/// Histogram of stay dwell times with the given bucket width.
pub fn dwell_histogram(result: &TranslationResult, bucket: Duration) -> Vec<(Duration, usize)> {
    store_from(result).dwell_histogram(&SemanticsSelector::all(), bucket)
}

/// Summarises each translated device, in translation (input) order.
pub fn device_summaries(result: &TranslationResult) -> Vec<DeviceSummary> {
    let by_id: BTreeMap<DeviceId, DeviceSummary> = store_from(result)
        .device_summaries(&SemanticsSelector::all())
        .into_iter()
        .collect();
    result
        .devices
        .iter()
        .map(|d| by_id[d.raw.device()].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::DeviceTranslation;
    use trips_annotate::MobilitySemantics;
    use trips_clean::{CleanedSequence, CleaningReport};
    use trips_data::{DeviceId, PositioningSequence, Timestamp};
    use trips_dsm::RegionId;

    fn sem(
        device: &str,
        region: u32,
        name: &str,
        event: &str,
        start_s: i64,
        end_s: i64,
    ) -> MobilitySemantics {
        MobilitySemantics {
            device: DeviceId::new(device),
            event: event.into(),
            region: RegionId(region),
            region_name: name.into(),
            start: Timestamp::from_millis(start_s * 1000),
            end: Timestamp::from_millis(end_s * 1000),
            inferred: false,
            display_point: None,
        }
    }

    fn device(name: &str, sems: Vec<MobilitySemantics>) -> DeviceTranslation {
        let d = DeviceId::new(name);
        let raw = PositioningSequence::new(d);
        DeviceTranslation {
            cleaned: CleanedSequence {
                sequence: raw.clone(),
                repairs: Vec::new(),
                report: CleaningReport::default(),
            },
            raw,
            original_semantics: sems.clone(),
            semantics: sems,
        }
    }

    fn sample() -> TranslationResult {
        TranslationResult {
            report: Default::default(),
            devices: vec![
                device(
                    "a.b.c.1",
                    vec![
                        sem("a.b.c.1", 1, "Nike", "stay", 0, 600),
                        sem("a.b.c.1", 2, "Hall", "pass-by", 600, 630),
                        sem("a.b.c.1", 3, "Adidas", "stay", 630, 900),
                    ],
                ),
                device(
                    "a.b.c.2",
                    vec![
                        sem("a.b.c.2", 2, "Hall", "pass-by", 0, 60),
                        sem("a.b.c.2", 1, "Nike", "stay", 60, 360),
                        sem("a.b.c.2", 2, "Hall", "pass-by", 360, 400),
                        sem("a.b.c.2", 1, "Nike", "stay", 400, 500),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn popularity_ranks_by_stays() {
        let pops = popular_regions(&sample());
        assert_eq!(pops[0].region_name, "Nike");
        assert_eq!(pops[0].stays, 3);
        assert_eq!(pops[0].unique_stayers, 2);
        assert_eq!(pops[0].total_dwell, Duration::from_secs(1000));
        let hall = pops.iter().find(|p| p.region_name == "Hall").unwrap();
        assert_eq!(hall.stays, 0);
        assert_eq!(hall.pass_bys, 3);
        assert_eq!(hall.conversion_rate(), 0.0);
        let nike = &pops[0];
        assert!((nike.conversion_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flows_count_directed_transitions() {
        let flows = top_flows(&sample(), 10);
        let nike_to_hall = flows
            .iter()
            .find(|f| f.from_name == "Nike" && f.to_name == "Hall")
            .unwrap();
        assert_eq!(nike_to_hall.count, 2);
        let hall_to_nike = flows
            .iter()
            .find(|f| f.from_name == "Hall" && f.to_name == "Nike")
            .unwrap();
        assert_eq!(hall_to_nike.count, 2);
        // Limit respected.
        assert_eq!(top_flows(&sample(), 1).len(), 1);
    }

    #[test]
    fn dwell_histogram_buckets() {
        let h = dwell_histogram(&sample(), Duration::from_mins(5));
        // Stays: 600 s (bucket 2), 270 s (bucket 0), 300 s (bucket 1), 100 s (bucket 0).
        let total: usize = h.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
        assert_eq!(h[0].1, 2, "two stays under 5 min: {h:?}");
    }

    #[test]
    fn device_summaries_aggregate() {
        let s = device_summaries(&sample());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].device, "a.*.1");
        assert_eq!(s[0].regions_visited, 3);
        assert_eq!(s[0].stays, 2);
        assert_eq!(s[0].accounted, Duration::from_secs(900));
    }

    #[test]
    fn device_summaries_preserve_translation_order() {
        // Store iteration is device-id ordered; the wrapper must restore
        // the result's device order.
        let mut r = sample();
        r.devices.reverse();
        let s = device_summaries(&r);
        assert_eq!(s[0].device, "a.*.2");
        assert_eq!(s[1].device, "a.*.1");
    }

    #[test]
    fn duplicate_device_entries_do_not_flow_across_entries() {
        // Two result entries for the same device (e.g. two selected
        // sessions): flows must not be counted across the entry boundary,
        // exactly like the pre-refactor per-entry windows(2) counting.
        let r = TranslationResult {
            report: Default::default(),
            devices: vec![
                device("a.b.c.9", vec![sem("a.b.c.9", 1, "Nike", "stay", 0, 600)]),
                device(
                    "a.b.c.9",
                    vec![sem("a.b.c.9", 2, "Hall", "pass-by", 700, 730)],
                ),
            ],
        };
        assert!(
            top_flows(&r, 10).is_empty(),
            "no flow may span separate result entries"
        );
        // Region aggregates merge across the entries (as the rescan also
        // merged by region), and both summary rows carry the merged totals.
        let pops = popular_regions(&r);
        assert_eq!(pops.len(), 2);
        let sums = device_summaries(&r);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[0].regions_visited, 2);
    }

    #[test]
    fn empty_result_analytics() {
        let r = TranslationResult::default();
        assert!(popular_regions(&r).is_empty());
        assert!(top_flows(&r, 5).is_empty());
        assert!(dwell_histogram(&r, Duration::from_mins(1)).is_empty());
        assert!(device_summaries(&r).is_empty());
    }
}
