//! The [`Trips`] facade: the five-step workflow of the paper's §4 behind one
//! object.
//!
//! 1. set up the indoor positioning data (Data Selector);
//! 2. import or create the DSM (Space Modeler);
//! 3. define event patterns and collect training data (Event Editor);
//! 4. submit the translation task (Translator);
//! 5. browse the translation result (Viewer).

use crate::analytics;
use crate::config::Configurator;
use crate::translator::{TranslationResult, Translator, TranslatorConfig};
use std::sync::Arc;
use trips_data::{DeviceId, PositioningSequence};
use trips_store::{QueryService, SemanticsStore};
use trips_viewer::{Entry, SourceKind, Timeline};

/// The assembled TRIPS system.
pub struct Trips {
    pub configurator: Configurator,
    pub translator_config: TranslatorConfig,
    result: Option<TranslationResult>,
    /// Live semantics store: every `run` republishes into it, and
    /// [`Trips::query_service`] hands out concurrent read handles.
    store: Arc<SemanticsStore>,
}

impl Trips {
    /// Builds the system around a configuration (steps 1–3 done).
    pub fn new(configurator: Configurator) -> Self {
        Trips {
            configurator,
            translator_config: TranslatorConfig::standard(),
            result: None,
            store: Arc::new(SemanticsStore::new()),
        }
    }

    /// Overrides the translator configuration.
    pub fn with_translator_config(mut self, config: TranslatorConfig) -> Self {
        self.translator_config = config;
        self
    }

    /// Step 4: select and translate. Stores and returns the result, and
    /// publishes the semantics into a **fresh** live store swapped in
    /// whole, so a re-run is atomic from a reader's perspective:
    /// [`QueryService`] handles taken before this call keep serving the
    /// previous run's complete data (a consistent snapshot, never a torn
    /// mix of two runs); take a new [`Trips::query_service`] to see this
    /// run.
    pub fn run(
        &mut self,
        sequences: Vec<PositioningSequence>,
    ) -> Result<&TranslationResult, Box<dyn std::error::Error>> {
        let selected = self.configurator.select(sequences);
        let translator = Translator::from_editor(
            &self.configurator.dsm,
            &self.configurator.event_editor,
            self.translator_config.clone(),
        )?;
        let result = translator.translate(&selected);
        let store = Arc::new(SemanticsStore::new());
        analytics::ingest_result(&store, &result);
        self.store = store;
        self.result = Some(result);
        Ok(self.result.as_ref().expect("just stored"))
    }

    /// The last translation result, if `run` has been called.
    pub fn result(&self) -> Option<&TranslationResult> {
        self.result.as_ref()
    }

    /// The live semantics store the last `run` published into. Each `run`
    /// swaps in a fresh store, so handles obtained here pin that run's
    /// snapshot.
    pub fn semantics_store(&self) -> Arc<SemanticsStore> {
        self.store.clone()
    }

    /// A concurrent query handle over the last run's semantics (step 5 for
    /// analytics consumers; shareable across threads). The handle pins the
    /// run that was current when it was taken — re-take after a new `run`.
    pub fn query_service(&self) -> QueryService {
        QueryService::new(self.store.clone())
    }

    /// Per-stage wall-clock timings of the last translation run — the
    /// engine's [`trips_engine::PipelineReport`] collected by step 4.
    pub fn pipeline_report(&self) -> Option<&trips_engine::PipelineReport> {
        self.result.as_ref().map(|r| &r.report)
    }

    /// Step 5: build the Viewer timeline for one translated device,
    /// combining raw records, cleaned records and semantics entries.
    pub fn timeline_for(&self, device: &DeviceId) -> Option<Timeline> {
        let result = self.result.as_ref()?;
        let d = result.device(device)?;
        let mut entries: Vec<Entry> = Vec::with_capacity(d.raw.len() * 2 + d.semantics.len());
        for r in d.raw.records() {
            entries.push(Entry::from_record(r, SourceKind::Raw));
        }
        for r in d.cleaned.sequence.records() {
            entries.push(Entry::from_record(r, SourceKind::Cleaned));
        }
        for s in &d.semantics {
            entries.push(Entry::from_semantics(s, &self.configurator.dsm));
        }
        Some(Timeline::new(entries))
    }

    /// Step 5 (map view): render one device's data on one floor as SVG.
    pub fn render_svg(&self, device: &DeviceId, floor: trips_geom::FloorId) -> Option<String> {
        let timeline = self.timeline_for(device)?;
        let view =
            trips_viewer::MapView::fit_to_floor(&self.configurator.dsm, floor, 1000.0, 700.0);
        let renderer = trips_viewer::SvgRenderer::new(view);
        Some(renderer.render(
            &self.configurator.dsm,
            timeline.entries(),
            &trips_viewer::VisibilityControl::all_visible(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_sim::ScenarioConfig;

    fn system_with_data() -> (Trips, Vec<PositioningSequence>, DeviceId) {
        let ds = trips_sim::scenario::generate(
            2,
            3,
            &ScenarioConfig {
                devices: 3,
                days: 1,
                seed: 77,
                ..ScenarioConfig::default()
            },
        );
        let mut editor = trips_annotate::EventEditor::with_default_patterns();
        for trace in &ds.traces {
            for visit in &trace.truth_visits {
                let segment: Vec<trips_data::RawRecord> = trace
                    .raw
                    .records()
                    .iter()
                    .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                    .cloned()
                    .collect();
                if segment.len() >= 2 {
                    let _ = editor.designate_segment(visit.kind.name(), &segment);
                }
            }
        }
        let device = ds.traces[0].device.clone();
        let seqs = ds.sequences();
        let config = Configurator::new(ds.dsm).with_event_editor(editor);
        (Trips::new(config), seqs, device)
    }

    #[test]
    fn five_step_workflow() {
        let (mut trips, seqs, device) = system_with_data();
        assert!(trips.result().is_none());
        let result = trips.run(seqs).unwrap();
        assert_eq!(result.devices.len(), 3);
        assert!(result.total_semantics() > 0);

        // Step 5: viewer artifacts.
        let timeline = trips.timeline_for(&device).unwrap();
        assert!(timeline.navigator_len() > 0, "semantics entries present");
        assert!(timeline.len() > timeline.navigator_len(), "raw+cleaned too");

        let svg = trips.render_svg(&device, 0).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("entry-"), "data overlays rendered");
    }

    #[test]
    fn timeline_for_unknown_device() {
        let (mut trips, seqs, _) = system_with_data();
        trips.run(seqs).unwrap();
        assert!(trips.timeline_for(&DeviceId::new("ghost")).is_none());
    }

    #[test]
    fn timeline_before_run_is_none() {
        let (trips, _, device) = system_with_data();
        assert!(trips.timeline_for(&device).is_none());
    }

    #[test]
    fn run_publishes_into_query_service() {
        use trips_store::SemanticsSelector;
        let (mut trips, seqs, _) = system_with_data();
        assert!(trips.query_service().stats().devices == 0, "empty pre-run");
        trips.run(seqs.clone()).unwrap();
        let service = trips.query_service();
        let result = trips.result().unwrap();
        assert_eq!(service.stats().devices, result.devices.len());
        assert_eq!(service.stats().semantics, result.total_semantics());
        // Store queries agree with the batch analytics wrappers.
        assert_eq!(
            service.popular_regions(&SemanticsSelector::all()),
            crate::analytics::popular_regions(result)
        );
        assert_eq!(
            service.top_flows(&SemanticsSelector::all(), 10),
            crate::analytics::top_flows(result, 10)
        );
        // Re-running swaps in a fresh store: old handles pin the previous
        // run's snapshot, new handles see the new run (no accumulation).
        let prev_total = result.total_semantics();
        let stale = trips.query_service();
        trips.run(seqs).unwrap();
        assert!(
            !Arc::ptr_eq(stale.store(), &trips.semantics_store()),
            "re-run must swap the store"
        );
        assert_eq!(
            stale.stats().semantics,
            prev_total,
            "old handle still serves the prior run's complete data"
        );
        assert_eq!(
            trips.query_service().stats().semantics,
            trips.result().unwrap().total_semantics()
        );
    }
}
