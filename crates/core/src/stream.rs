//! Online (streaming) translation — an extension beyond the paper's batch
//! prototype.
//!
//! The paper's Data Selector already ingests "streams APIs" (§2), but its
//! Translator runs in batch. This module adds the natural next step: a
//! [`StreamingTranslator`] that consumes records incrementally and emits
//! finalized mobility semantics as soon as a device goes quiet (micro-batch
//! per session). Semantics for a quiet device are identical to what the
//! batch Translator would produce for that session's records.

use crate::translator::{ModelChoice, TranslatorConfig};
use std::collections::BTreeMap;
use std::sync::Arc;
use trips_annotate::{Annotator, EventEditor, EventModel, MobilitySemantics};
use trips_clean::Cleaner;
use trips_complement::{Complementor, MobilityKnowledge};
use trips_data::{DeviceId, Duration, PositioningSequence, RawRecord};
use trips_dsm::DigitalSpaceModel;
use trips_store::SemanticsStore;

/// Streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// A device silent for at least this long has finished its session; the
    /// buffered records are translated and emitted.
    pub flush_gap: Duration,
    /// Safety valve: a buffer reaching this many records is translated even
    /// without a gap (bounds memory for always-on devices).
    pub max_buffer: usize,
    /// Base translator settings (cleaner/annotator/complementor configs).
    pub translator: TranslatorConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            flush_gap: Duration::from_mins(10),
            max_buffer: 10_000,
            translator: TranslatorConfig::standard(),
        }
    }
}

/// The online translator.
///
/// Knowledge for the Complementing layer must be pre-built (e.g. from a
/// historical batch run) — a stream has no "all other sequences" to learn
/// from on day one. Pass `None` to skip complementing.
pub struct StreamingTranslator<'a> {
    dsm: &'a DigitalSpaceModel,
    cleaner: Cleaner<'a>,
    annotator: Annotator<'a>,
    complementor: Option<Complementor<'a>>,
    config: StreamConfig,
    buffers: BTreeMap<DeviceId, Vec<RawRecord>>,
    emitted: usize,
    /// Optional live store: every emitted batch is also published here,
    /// so concurrent readers can query mid-stream.
    store: Option<Arc<SemanticsStore>>,
}

impl<'a> StreamingTranslator<'a> {
    /// Creates a streaming translator from a trained editor.
    pub fn from_editor(
        dsm: &'a DigitalSpaceModel,
        editor: &EventEditor,
        knowledge: Option<MobilityKnowledge>,
        config: StreamConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let (model, labels): (EventModel, Vec<String>) = match config.translator.model {
            ModelChoice::DecisionTree => editor.train_default_model()?,
            ModelChoice::RandomForest(n) => {
                editor.train_forest(n, config.translator.forest_seed)?
            }
            ModelChoice::Knn(k) => editor.train_knn(k)?,
        };
        let cleaner = Cleaner::new(dsm, config.translator.cleaner.clone())?;
        let annotator = Annotator::new(dsm, model, labels, config.translator.annotator.clone());
        let complementor =
            knowledge.map(|k| Complementor::new(dsm, k, config.translator.complementor.clone()));
        Ok(StreamingTranslator {
            dsm,
            cleaner,
            annotator,
            complementor,
            config,
            buffers: BTreeMap::new(),
            emitted: 0,
            store: None,
        })
    }

    /// Attaches a live [`SemanticsStore`]: every semantics batch emitted by
    /// [`StreamingTranslator::push`] or [`StreamingTranslator::finish`] is
    /// also ingested there (incrementally — aggregates include flows across
    /// session boundaries), so readers can query while the stream runs.
    pub fn with_store(mut self, store: Arc<SemanticsStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Total semantics emitted so far (diagnostics).
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Number of devices with buffered (un-emitted) records.
    pub fn open_devices(&self) -> usize {
        self.buffers.len()
    }

    /// Records currently buffered across devices.
    pub fn buffered_records(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Feeds one record. Returns semantics finalized by this arrival (empty
    /// most of the time; a batch when the record closes a session).
    pub fn push(&mut self, record: RawRecord) -> Vec<MobilitySemantics> {
        if !record.is_well_formed() {
            return Vec::new();
        }
        let device = record.device.clone();
        let buffer = self.buffers.entry(device.clone()).or_default();

        let mut out = Vec::new();
        let gap_exceeded = buffer
            .last()
            .is_some_and(|last| record.ts - last.ts >= self.config.flush_gap);
        if gap_exceeded || buffer.len() >= self.config.max_buffer {
            let batch = std::mem::take(buffer);
            out = self.translate_batch(&device, batch);
        }
        self.buffers
            .get_mut(&device)
            .expect("entry exists")
            .push(record);
        if !out.is_empty() {
            if let Some(store) = &self.store {
                store.ingest(&device, &out);
            }
        }
        self.emitted += out.len();
        out
    }

    /// Flushes one device's buffered records without waiting for a gap:
    /// translates them now, publishes to the attached store (if any) and
    /// returns the emitted semantics. A device with no buffer emits
    /// nothing. Serving layers use this when a client session ends — its
    /// devices' in-flight records must become queryable immediately.
    pub fn flush_device(&mut self, device: &DeviceId) -> Vec<MobilitySemantics> {
        let Some(batch) = self.buffers.remove(device) else {
            return Vec::new();
        };
        let sems = self.translate_batch(device, batch);
        if !sems.is_empty() {
            if let Some(store) = &self.store {
                store.ingest(device, &sems);
            }
        }
        self.emitted += sems.len();
        sems
    }

    /// Flushes every device's buffer (end of stream). Returns semantics per
    /// device in device order. Devices fan out through the engine when the
    /// translator config asks for worker threads.
    pub fn finish(&mut self) -> BTreeMap<DeviceId, Vec<MobilitySemantics>> {
        // Buffers travel by move: `run_indexed` only hands workers `&T`, so
        // each batch rides in a mutex the worker takes from — no record copy.
        let entries: Vec<(DeviceId, parking_lot::Mutex<Vec<RawRecord>>)> =
            std::mem::take(&mut self.buffers)
                .into_iter()
                .map(|(device, batch)| (device, parking_lot::Mutex::new(batch)))
                .collect();
        let this: &Self = self;
        let translated = trips_engine::run_indexed(
            this.config.translator.threads,
            &entries,
            |_, (device, batch)| this.translate_batch(device, std::mem::take(&mut batch.lock())),
        );
        let mut out = BTreeMap::new();
        for ((device, _), sems) in entries.into_iter().zip(translated) {
            if let Some(store) = &self.store {
                store.ingest(&device, &sems);
            }
            self.emitted += sems.len();
            out.insert(device, sems);
        }
        out
    }

    fn translate_batch(&self, device: &DeviceId, batch: Vec<RawRecord>) -> Vec<MobilitySemantics> {
        if batch.is_empty() {
            return Vec::new();
        }
        let seq = PositioningSequence::from_records(device.clone(), batch);
        let cleaned = self.cleaner.clean(&seq);
        let sems = self.annotator.annotate(&cleaned.sequence);
        match &self.complementor {
            Some(c) => c.complement(&sems),
            None => sems,
        }
    }

    /// The DSM in use.
    pub fn dsm(&self) -> &DigitalSpaceModel {
        self.dsm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::Translator;
    use trips_sim::ScenarioConfig;

    fn setup() -> (trips_sim::SimulatedDataset, EventEditor) {
        let ds = trips_sim::scenario::generate(
            2,
            3,
            &ScenarioConfig {
                devices: 3,
                days: 1,
                seed: 0x57E4,
                ..ScenarioConfig::default()
            },
        );
        let mut editor = EventEditor::with_default_patterns();
        for trace in &ds.traces {
            for visit in &trace.truth_visits {
                let segment: Vec<RawRecord> = trace
                    .raw
                    .records()
                    .iter()
                    .filter(|r| r.ts >= visit.start && r.ts <= visit.end)
                    .cloned()
                    .collect();
                if segment.len() >= 2 {
                    let _ = editor.designate_segment(visit.kind.name(), &segment);
                }
            }
        }
        (ds, editor)
    }

    #[test]
    fn streaming_matches_batch_for_single_session() {
        let (ds, editor) = setup();
        // Batch reference (without complementing, which streaming skips
        // when knowledge is None).
        let translator =
            Translator::from_editor(&ds.dsm, &editor, TranslatorConfig::standard()).unwrap();
        let batch = translator.translate(&ds.sequences());

        let mut stream =
            StreamingTranslator::from_editor(&ds.dsm, &editor, None, StreamConfig::default())
                .unwrap();
        let mut streamed: BTreeMap<DeviceId, Vec<MobilitySemantics>> = BTreeMap::new();
        for r in ds.all_records() {
            let device = r.device.clone();
            for s in stream.push(r) {
                streamed.entry(device.clone()).or_default().push(s);
            }
        }
        for (device, sems) in stream.finish() {
            streamed.entry(device).or_default().extend(sems);
        }

        for d in &batch.devices {
            let got = &streamed[d.raw.device()];
            assert_eq!(
                got,
                &d.original_semantics,
                "streaming must equal batch annotation for {}",
                d.raw.device()
            );
        }
    }

    #[test]
    fn gap_triggers_emission() {
        let (ds, editor) = setup();
        let mut stream = StreamingTranslator::from_editor(
            &ds.dsm,
            &editor,
            None,
            StreamConfig {
                flush_gap: Duration::from_secs(60),
                ..StreamConfig::default()
            },
        )
        .unwrap();

        let d = DeviceId::new("gap-device");
        // Session 1: a two-minute in-shop dwell. Real "stay" traces wander
        // (browsing + positioning noise), so hop around inside a ~4 m patch
        // rather than reporting a frozen point no sensor would emit.
        for i in 0..20i64 {
            let dx = ((i * 7919) % 100) as f64 / 25.0 - 2.0;
            let dy = ((i * 104_729) % 100) as f64 / 25.0 - 2.0;
            let out = stream.push(RawRecord::new(
                d.clone(),
                5.0 + dx,
                4.0 + dy,
                0,
                trips_data::Timestamp::from_millis(i * 7000),
            ));
            assert!(out.is_empty(), "nothing finalized mid-session");
        }
        assert_eq!(stream.buffered_records(), 20);
        // A record 10 minutes later closes session 1.
        let out = stream.push(RawRecord::new(
            d.clone(),
            15.0,
            11.0,
            0,
            trips_data::Timestamp::from_millis(20 * 7000 + 600_000),
        ));
        assert!(!out.is_empty(), "gap must flush the session");
        assert!(out.iter().any(|s| s.event == "stay"));
        assert_eq!(stream.buffered_records(), 1, "new session started");
    }

    #[test]
    fn max_buffer_bounds_memory() {
        let (ds, editor) = setup();
        let mut stream = StreamingTranslator::from_editor(
            &ds.dsm,
            &editor,
            None,
            StreamConfig {
                max_buffer: 50,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let d = DeviceId::new("busy");
        let mut total = 0usize;
        for i in 0..500i64 {
            total += stream
                .push(RawRecord::new(
                    d.clone(),
                    5.0 + (i % 5) as f64 * 0.1,
                    4.0,
                    0,
                    trips_data::Timestamp::from_millis(i * 7000),
                ))
                .len();
        }
        assert!(stream.buffered_records() <= 50);
        assert!(total > 0, "periodic flushes emitted semantics");
    }

    #[test]
    fn finish_flushes_all_buffered_devices() {
        let (ds, editor) = setup();
        let mut stream =
            StreamingTranslator::from_editor(&ds.dsm, &editor, None, StreamConfig::default())
                .unwrap();
        // Three devices dwell in a shop; none hits a flush gap, so
        // everything is still buffered when the stream ends.
        let devices: Vec<DeviceId> = (0..3).map(|d| DeviceId::new(&format!("dev-{d}"))).collect();
        for (di, d) in devices.iter().enumerate() {
            for i in 0..20i64 {
                let dx = ((i * 7919) % 100) as f64 / 25.0 - 2.0;
                let dy = ((i * 104_729) % 100) as f64 / 25.0 - 2.0;
                let out = stream.push(RawRecord::new(
                    d.clone(),
                    5.0 + dx,
                    4.0 + dy,
                    0,
                    trips_data::Timestamp::from_millis((di as i64 * 13 + i) * 7000),
                ));
                assert!(out.is_empty(), "no gap: nothing may flush early");
            }
        }
        assert_eq!(stream.open_devices(), 3);
        assert_eq!(stream.emitted(), 0);

        let out = stream.finish();
        assert_eq!(out.len(), 3, "every buffered device must flush");
        for d in &devices {
            assert!(!out[d].is_empty(), "device {d} dwelled: semantics expected");
        }
        assert_eq!(stream.open_devices(), 0);
        assert_eq!(stream.buffered_records(), 0);
        assert_eq!(
            stream.emitted(),
            out.values().map(Vec::len).sum::<usize>(),
            "emitted counter covers the final flush"
        );
        assert!(stream.finish().is_empty(), "second finish is a no-op");
    }

    #[test]
    fn flush_device_emits_buffered_records_immediately() {
        use trips_store::SemanticsSelector;
        let (ds, editor) = setup();
        let store = Arc::new(trips_store::SemanticsStore::with_shards(4));
        let mut stream =
            StreamingTranslator::from_editor(&ds.dsm, &editor, None, StreamConfig::default())
                .unwrap()
                .with_store(store.clone());
        let d = DeviceId::new("flush-me");
        for i in 0..20i64 {
            let dx = ((i * 7919) % 100) as f64 / 25.0 - 2.0;
            let dy = ((i * 104_729) % 100) as f64 / 25.0 - 2.0;
            stream.push(RawRecord::new(
                d.clone(),
                5.0 + dx,
                4.0 + dy,
                0,
                trips_data::Timestamp::from_millis(i * 7000),
            ));
        }
        assert_eq!(stream.buffered_records(), 20);
        assert_eq!(store.semantics_count(), 0, "nothing queryable yet");

        let sems = stream.flush_device(&d);
        assert!(!sems.is_empty(), "a two-minute dwell must emit semantics");
        assert_eq!(stream.buffered_records(), 0);
        assert_eq!(stream.emitted(), sems.len());
        let sel = SemanticsSelector::all().with_device_pattern(d.as_str());
        assert_eq!(store.semantics(&sel), sems, "store sees the flush");

        // Unknown or already-flushed devices emit nothing.
        assert!(stream.flush_device(&d).is_empty());
        assert!(stream.flush_device(&DeviceId::new("ghost")).is_empty());
        // finish() afterwards has nothing left for this device.
        assert!(stream.finish().is_empty());
    }

    #[test]
    fn finish_fanout_matches_serial() {
        let (ds, editor) = setup();
        let mut results = Vec::new();
        for threads in [0usize, 4] {
            let config = StreamConfig {
                translator: TranslatorConfig {
                    threads,
                    ..TranslatorConfig::standard()
                },
                ..StreamConfig::default()
            };
            let mut stream =
                StreamingTranslator::from_editor(&ds.dsm, &editor, None, config).unwrap();
            for r in ds.all_records() {
                stream.push(r);
            }
            results.push(stream.finish());
        }
        assert_eq!(results[0], results[1], "finish must be thread-invariant");
    }

    #[test]
    fn malformed_records_ignored() {
        let (ds, editor) = setup();
        let mut stream =
            StreamingTranslator::from_editor(&ds.dsm, &editor, None, StreamConfig::default())
                .unwrap();
        let out = stream.push(RawRecord::new(
            DeviceId::new("bad"),
            f64::NAN,
            0.0,
            0,
            trips_data::Timestamp::from_millis(0),
        ));
        assert!(out.is_empty());
        assert_eq!(stream.open_devices(), 0);
    }

    #[test]
    fn attached_store_receives_every_emission() {
        use trips_store::SemanticsSelector;
        let (ds, editor) = setup();
        let store = Arc::new(SemanticsStore::with_shards(8));
        let mut stream =
            StreamingTranslator::from_editor(&ds.dsm, &editor, None, StreamConfig::default())
                .unwrap()
                .with_store(store.clone());
        let mut streamed: BTreeMap<DeviceId, Vec<MobilitySemantics>> = BTreeMap::new();
        for r in ds.all_records() {
            let device = r.device.clone();
            for s in stream.push(r) {
                streamed.entry(device.clone()).or_default().push(s);
            }
        }
        for (device, sems) in stream.finish() {
            streamed.entry(device).or_default().extend(sems);
        }
        assert_eq!(store.semantics_count(), stream.emitted());
        // The store holds exactly what the stream emitted, per device.
        let total: usize = streamed.values().map(Vec::len).sum();
        assert_eq!(store.semantics_count(), total);
        for (device, sems) in &streamed {
            let sel = SemanticsSelector::all().with_device_pattern(device.as_str());
            assert_eq!(&store.semantics(&sel), sems, "device {device}");
        }
    }

    #[test]
    fn complementing_applies_with_knowledge() {
        let (ds, editor) = setup();
        let knowledge = MobilityKnowledge::uniform(&ds.dsm);
        let mut stream = StreamingTranslator::from_editor(
            &ds.dsm,
            &editor,
            Some(knowledge),
            StreamConfig::default(),
        )
        .unwrap();
        for r in ds.all_records() {
            stream.push(r);
        }
        let out = stream.finish();
        let any_inferred = out.values().flatten().any(|s| s.inferred);
        // Dropout gaps exist in the default error model; knowledge-backed
        // streaming may fill some. Either way translation must succeed.
        assert!(out.values().map(Vec::len).sum::<usize>() > 0);
        let _ = any_inferred;
    }
}
