//! Translation result export.
//!
//! Two formats: the human-readable trace file of Figure 5(4) — one device
//! header followed by its semantics triplets, anonymized device ids — and a
//! machine-readable JSON document.

use crate::translator::TranslationResult;
use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Renders the result as the paper's text trace format:
///
/// ```text
/// 3a.*.14:
///   (stay, Adidas (0F-1), d0 13:02:05-d0 13:18:15)
///   (pass-by, Center Hall (0F), d0 13:18:16-d0 13:20:13) [inferred]
/// ```
pub fn to_text(result: &TranslationResult) -> String {
    let mut out = String::new();
    for d in &result.devices {
        let _ = writeln!(out, "{}:", d.raw.device().anonymized());
        for s in &d.semantics {
            let _ = writeln!(out, "  {s}");
        }
    }
    out
}

#[derive(Serialize)]
struct JsonSemantics<'a> {
    event: &'a str,
    region: &'a str,
    start_ms: i64,
    end_ms: i64,
    inferred: bool,
}

#[derive(Serialize)]
struct JsonDevice<'a> {
    device: String,
    raw_records: usize,
    cleaned_records: usize,
    semantics: Vec<JsonSemantics<'a>>,
}

/// Renders the result as a JSON document (anonymized device ids).
pub fn to_json(result: &TranslationResult) -> Result<String, serde_json::Error> {
    let doc: Vec<JsonDevice<'_>> = result
        .devices
        .iter()
        .map(|d| JsonDevice {
            device: d.raw.device().anonymized(),
            raw_records: d.raw.len(),
            cleaned_records: d.cleaned.sequence.len(),
            semantics: d
                .semantics
                .iter()
                .map(|s| JsonSemantics {
                    event: &s.event,
                    region: &s.region_name,
                    start_ms: s.start.as_millis(),
                    end_ms: s.end.as_millis(),
                    inferred: s.inferred,
                })
                .collect(),
        })
        .collect();
    serde_json::to_string_pretty(&doc)
}

/// Writes the text trace to a file.
pub fn save_text(result: &TranslationResult, path: impl AsRef<Path>) -> std::io::Result<()> {
    fs::write(path, to_text(result))
}

/// Writes the JSON document to a file.
pub fn save_json(result: &TranslationResult, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = to_json(result).map_err(std::io::Error::other)?;
    fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::DeviceTranslation;
    use trips_annotate::MobilitySemantics;
    use trips_clean::{CleanedSequence, CleaningReport};
    use trips_data::{DeviceId, PositioningSequence, RawRecord, Timestamp};
    use trips_dsm::RegionId;

    fn sample() -> TranslationResult {
        let device = DeviceId::new("3a.7f.99.14");
        let raw = PositioningSequence::from_records(
            device.clone(),
            vec![RawRecord::new(device.clone(), 1.0, 1.0, 0, Timestamp(0))],
        );
        let sems = vec![
            MobilitySemantics {
                device: device.clone(),
                event: "stay".into(),
                region: RegionId(1),
                region_name: "Adidas".into(),
                start: Timestamp::from_dhms(0, 13, 2, 5),
                end: Timestamp::from_dhms(0, 13, 18, 15),
                inferred: false,
                display_point: None,
            },
            MobilitySemantics {
                device: device.clone(),
                event: "pass-by".into(),
                region: RegionId(2),
                region_name: "Center Hall".into(),
                start: Timestamp::from_dhms(0, 13, 18, 16),
                end: Timestamp::from_dhms(0, 13, 20, 13),
                inferred: true,
                display_point: None,
            },
        ];
        TranslationResult {
            report: Default::default(),
            devices: vec![DeviceTranslation {
                cleaned: CleanedSequence {
                    sequence: raw.clone(),
                    repairs: vec![trips_clean::RepairKind::Valid],
                    report: CleaningReport {
                        input_records: 1,
                        valid: 1,
                        ..CleaningReport::default()
                    },
                },
                raw,
                original_semantics: sems[..1].to_vec(),
                semantics: sems,
            }],
        }
    }

    #[test]
    fn text_format_matches_figure5() {
        let text = to_text(&sample());
        assert!(text.starts_with("3a.*.14:\n"), "anonymized header: {text}");
        assert!(text.contains("(stay, Adidas, d0 13:02:05-d0 13:18:15)"));
        assert!(text.contains("(pass-by, Center Hall, "));
        assert!(text.contains("[inferred]"));
    }

    #[test]
    fn json_structure() {
        let json = to_json(&sample()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["device"], "3a.*.14");
        assert_eq!(v[0]["raw_records"], 1);
        assert_eq!(v[0]["semantics"][0]["event"], "stay");
        assert_eq!(v[0]["semantics"][1]["inferred"], true);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trips-export-test");
        fs::create_dir_all(&dir).unwrap();
        let r = sample();
        let tpath = dir.join("trace.txt");
        let jpath = dir.join("trace.json");
        save_text(&r, &tpath).unwrap();
        save_json(&r, &jpath).unwrap();
        assert!(fs::read_to_string(&tpath).unwrap().contains("Adidas"));
        assert!(fs::read_to_string(&jpath).unwrap().contains("Adidas"));
        fs::remove_file(tpath).ok();
        fs::remove_file(jpath).ok();
    }

    #[test]
    fn empty_result() {
        let r = TranslationResult::default();
        assert!(to_text(&r).is_empty());
        assert_eq!(to_json(&r).unwrap(), "[]");
    }
}
