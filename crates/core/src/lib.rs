//! TRIPS system core: the Configurator / Translator / Viewer wiring.
//!
//! This crate assembles the substrates into the system of the paper's
//! Figure 1:
//!
//! * [`config`] — the **Configurator**: positioning-data selection rules,
//!   the DSM, and Event Editor training data, bundled as one configuration;
//! * [`translator`] — the **Translator**: the three-layer pipeline
//!   (Cleaning → Annotation → Complementing) over each selected sequence,
//!   staged on the `trips-engine` executor (serial or multi-threaded, with
//!   identical output either way) and timed per stage;
//! * [`store`] — the file-backed storage that lets configurations be reused
//!   "in other translation tasks in the same indoor space" (paper §4), and
//!   doubles as the snapshot/restore backend for the in-memory
//!   `trips-store` semantics store;
//! * [`assess`] — translation-quality metrics against ground truth (the
//!   simulator provides what the paper's real deployment cannot);
//! * [`export`] — translation result files (text form of Figure 5(4) and
//!   JSON);
//! * [`analytics`] — the downstream analyses translation enables (popular
//!   location discovery, flows, dwell statistics — paper §1's motivation),
//!   now thin wrappers over `trips-store` queries;
//! * [`stream`] — an online (micro-batching) translator extension that can
//!   publish into a live `trips-store` semantics store;
//! * [`system`] — the [`system::Trips`] facade running the five-step
//!   workflow end to end and exposing a `QueryService` over the last run.

pub mod analytics;
pub mod assess;
pub mod config;
pub mod export;
pub mod store;
pub mod stream;
pub mod system;
pub mod translator;

pub use assess::AssessmentReport;
pub use config::Configurator;
pub use system::Trips;
pub use translator::{DeviceTranslation, TranslationResult, Translator, TranslatorConfig};
pub use trips_engine::{PipelineReport, StageReport};
