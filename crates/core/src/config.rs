//! The Configurator: one bundle of the three configured inputs (paper §2) —
//! the positioning-data selection, the indoor space information (DSM), and
//! the relevant contexts (semantic regions live in the DSM; mobility-event
//! training data lives in the Event Editor).

use trips_annotate::EventEditor;
use trips_data::{PositioningSequence, Selector};
use trips_dsm::DigitalSpaceModel;

/// The configuration of one translation task.
#[derive(Clone)]
pub struct Configurator {
    /// Data Selector rules choosing the sequences of interest.
    pub selector: Selector,
    /// The digital space model (geometry + topology + semantic regions).
    pub dsm: DigitalSpaceModel,
    /// Event patterns and their designated training segments.
    pub event_editor: EventEditor,
}

impl Configurator {
    /// Creates a configurator around a frozen DSM with match-all selection
    /// and the default stay/pass-by patterns.
    pub fn new(dsm: DigitalSpaceModel) -> Self {
        assert!(dsm.is_frozen(), "DSM must be frozen (topology computed)");
        Configurator {
            selector: Selector::all(),
            dsm,
            event_editor: EventEditor::with_default_patterns(),
        }
    }

    /// Replaces the selection rules.
    pub fn with_selector(mut self, selector: Selector) -> Self {
        self.selector = selector;
        self
    }

    /// Replaces the event editor.
    pub fn with_event_editor(mut self, editor: EventEditor) -> Self {
        self.event_editor = editor;
        self
    }

    /// Step (1) of the workflow: apply the Data Selector to ingested
    /// sequences.
    pub fn select(&self, sequences: Vec<PositioningSequence>) -> Vec<PositioningSequence> {
        self.selector.select(sequences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_data::{DeviceId, RawRecord, SelectionRule, Timestamp};
    use trips_dsm::builder::MallBuilder;

    fn seq(device: &str, n: usize) -> PositioningSequence {
        PositioningSequence::from_records(
            DeviceId::new(device),
            (0..n)
                .map(|i| {
                    RawRecord::new(
                        DeviceId::new(device),
                        5.0,
                        5.0,
                        0,
                        Timestamp::from_millis(i as i64 * 7000),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn default_configuration_selects_everything() {
        let c = Configurator::new(MallBuilder::new().shops_per_row(2).build());
        let seqs = vec![seq("a", 5), seq("b", 3)];
        assert_eq!(c.select(seqs).len(), 2);
        assert_eq!(c.event_editor.patterns().len(), 2);
    }

    #[test]
    fn selector_applies() {
        let c = Configurator::new(MallBuilder::new().shops_per_row(2).build())
            .with_selector(Selector::new(SelectionRule::MinRecords(4)));
        let picked = c.select(vec![seq("a", 5), seq("b", 3)]);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].device().as_str(), "a");
    }

    #[test]
    #[should_panic(expected = "must be frozen")]
    fn rejects_unfrozen_dsm() {
        Configurator::new(DigitalSpaceModel::new("raw"));
    }
}
