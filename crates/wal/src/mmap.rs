//! A minimal `MAP_SHARED` file mapping for the append hot path.
//!
//! Appending through a shared mapping is a bounds-checked `memcpy` into
//! the page cache — no `write(2)` per record, which is the difference
//! between a WAL append costing ~3 µs and ~0.3 µs. Durability semantics
//! are unchanged: `MAP_SHARED` dirty pages belong to the file's page
//! cache, so they survive a process crash exactly like `write(2)` data
//! and are flushed by the same `fdatasync(fd)` the sync paths already
//! issue (no `msync` needed).
//!
//! The container toolchain has no `libc` crate, so the three syscall
//! wrappers are declared directly; the constants are the POSIX values
//! shared by Linux and the BSDs. Non-unix builds fall back to the
//! `write(2)` path in `wal.rs`.

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x1;

/// A writable shared mapping of the leading `len` bytes of a file. The
/// file must be at least `len` bytes long for the mapping's lifetime
/// (writes beyond EOF through a mapping are fatal), which `Wal` upholds
/// by `set_len`-ing before mapping and unmapping before truncating.
pub(crate) struct Region {
    ptr: *mut u8,
    len: usize,
}

// The region is an exclusively-owned raw buffer; `Wal` is used behind a
// lock like any other writer.
unsafe impl Send for Region {}

impl Region {
    pub(crate) fn map(file: &File, len: usize) -> io::Result<Region> {
        debug_assert!(len > 0);
        // Safety: len > 0, fd is valid for the borrow, and we hand the
        // resulting pointer only to bounds-checked writes below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Region {
            ptr: ptr as *mut u8,
            len,
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Touches one byte per page from `from` (which must be inside the
    /// zero padding) to the end of the region, installing writable PTEs
    /// up front so appends never pay the first-touch minor fault +
    /// `page_mkwrite` on their critical path. Writing a zero over the
    /// padding's zero is a no-op data-wise.
    pub(crate) fn prefault_padding(&mut self, from: usize) {
        const PAGE: usize = 4096;
        let mut off = from;
        while off < self.len {
            // Safety: off < len; the byte is pre-sizing padding (zero).
            unsafe { self.ptr.add(off).write_volatile(0) };
            off = (off / PAGE + 1) * PAGE;
        }
    }

    /// A writable view of `len` bytes at `offset`, for encoding a record
    /// payload directly into the segment (zero-copy append). Panics on
    /// out-of-bounds rather than corrupting memory.
    pub(crate) fn slice_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "mmap write out of bounds: {offset}+{len} > {}",
            self.len
        );
        // Safety: bounds just checked; the region is exclusively ours
        // (&mut self) and mapped for the lifetime of the borrow.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        // Safety: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
    }
}
