//! Replay: an ordered iterator over every record in a WAL directory,
//! tolerant of a torn tail in the final segment.

use crate::frame::{scan_frame, FrameScan};
use crate::segment::{check_segment_header, list_segments, SEGMENT_HEADER_BYTES};
use crate::WalError;
use std::fs;
use std::path::{Path, PathBuf};

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Sequence of the segment the record was read from.
    pub segment: u64,
    /// Byte offset of the record's frame within that segment file.
    pub offset: u64,
    pub payload: Vec<u8>,
}

/// Where an interrupted append left a partial/corrupt frame at the end of
/// the last segment. Everything from `offset` on is not part of the log
/// (the record was never acked); [`crate::Wal::open`] truncates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    pub segment: u64,
    /// File offset at which the invalid data begins.
    pub offset: u64,
    pub reason: String,
}

/// Iterator over `Result<WalEntry, WalError>` for segments `>= min_seq`,
/// ascending. A torn tail ends iteration cleanly (inspect
/// [`Replay::torn_tail`] afterwards); mid-log corruption yields
/// [`WalError::Corrupt`] and ends iteration.
pub struct Replay {
    segments: Vec<(u64, PathBuf)>,
    next_segment: usize,
    /// (seq, file bytes, scan offset) of the segment being consumed.
    current: Option<(u64, Vec<u8>, usize)>,
    torn: Option<TornTail>,
    entries: u64,
    done: bool,
}

impl Replay {
    pub(crate) fn new(dir: &Path, min_seq: u64) -> Result<Replay, WalError> {
        let segments = list_segments(dir)?
            .into_iter()
            .filter(|(seq, _)| *seq >= min_seq)
            .collect();
        Ok(Replay {
            segments,
            next_segment: 0,
            current: None,
            torn: None,
            entries: 0,
            done: false,
        })
    }

    /// The torn tail, if iteration ended at one (meaningful once the
    /// iterator is exhausted).
    pub fn torn_tail(&self) -> Option<&TornTail> {
        self.torn.as_ref()
    }

    /// Records yielded so far.
    pub fn entries_read(&self) -> u64 {
        self.entries
    }

    /// Number of segment files this replay covers.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether the segment at `idx` is the final one (where invalid data
    /// is a torn tail rather than corruption).
    fn is_last(&self, idx: usize) -> bool {
        idx + 1 == self.segments.len()
    }

    fn fail(&mut self, err: WalError) -> Option<Result<WalEntry, WalError>> {
        self.done = true;
        Some(Err(err))
    }

    fn tear(
        &mut self,
        segment: u64,
        offset: usize,
        reason: String,
    ) -> Option<Result<WalEntry, WalError>> {
        self.torn = Some(TornTail {
            segment,
            offset: offset as u64,
            reason,
        });
        self.done = true;
        None
    }
}

impl Iterator for Replay {
    type Item = Result<WalEntry, WalError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if self.current.is_none() {
                if self.next_segment >= self.segments.len() {
                    self.done = true;
                    return None;
                }
                let idx = self.next_segment;
                self.next_segment += 1;
                let (seq, path) = self.segments[idx].clone();
                let data = match fs::read(&path) {
                    Ok(d) => d,
                    Err(e) => return self.fail(WalError::Io(e)),
                };
                // A *short* header on the last segment is a crash during
                // segment creation — a torn tail at offset 0. A full-
                // length header that is wrong (bad magic, future format
                // version, sequence mismatch), or any header problem in
                // an earlier segment, is corruption the replay must not
                // guess about: the segment may hold synced acked records.
                if data.len() < SEGMENT_HEADER_BYTES && self.is_last(idx) {
                    return self.tear(
                        seq,
                        0,
                        format!("short segment header ({} bytes)", data.len()),
                    );
                }
                if let Err(reason) = check_segment_header(&data, seq) {
                    return self.fail(WalError::BadSegment { path, reason });
                }
                self.current = Some((seq, data, SEGMENT_HEADER_BYTES));
            }
            let (seq, data, offset) = self.current.as_mut().expect("current segment loaded");
            let (seq, offset_now) = (*seq, *offset);
            match scan_frame(&data[..], offset_now) {
                FrameScan::Record { payload, next } => {
                    *offset = next;
                    self.entries += 1;
                    return Some(Ok(WalEntry {
                        segment: seq,
                        offset: offset_now as u64,
                        payload,
                    }));
                }
                FrameScan::End => {
                    self.current = None;
                }
                FrameScan::Invalid { reason } => {
                    let last = self.next_segment >= self.segments.len();
                    self.current = None;
                    if last {
                        return self.tear(seq, offset_now, reason);
                    }
                    return self.fail(WalError::Corrupt {
                        segment: seq,
                        offset: offset_now as u64,
                        reason,
                    });
                }
            }
        }
    }
}
