//! Record framing: `len u32 LE | crc32 u32 LE | payload`, plus the frame
//! scanner shared by replay (read) and open (tail validation/truncation),
//! so both always agree on where a torn tail begins.

/// Hard cap on one record's payload; a `len` beyond it is treated as
/// frame corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Bytes of `len` + `crc` preceding every payload.
pub(crate) const FRAME_HEADER_BYTES: usize = 8;

/// CRC-32C (Castagnoli, poly `0x1EDC6F41`) lookup tables for
/// slicing-by-8, built at compile time: table 0 is the classic
/// byte-at-a-time table; table `k` advances a byte through `k` further
/// zero bytes, letting the software loop fold 8 input bytes per
/// iteration. Castagnoli rather than IEEE because x86-64 ships it in
/// hardware (SSE4.2 `crc32`), and the checksum must not cost more than
/// the memcpy it protects.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc32_sw(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// SSE4.2 hardware CRC-32C: ~8 bytes/cycle vs the table loop's ~1.
///
/// # Safety
/// Caller must have verified `sse4.2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(bytes: &[u8]) -> u32 {
    use core::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c: u64 = 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32C of `bytes` (the checksum in every record frame), hardware-
/// accelerated where the CPU provides it.
pub fn crc32(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        // The detection macro caches its probe in an atomic; this is a
        // relaxed load per call.
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // Safety: feature presence just checked.
            return unsafe { crc32_hw(bytes) };
        }
    }
    crc32_sw(bytes)
}

/// Fills the 8-byte frame header (`header`) for `payload` — used by the
/// zero-copy append path, which writes the payload into the segment
/// first and stamps the header afterwards.
pub(crate) fn fill_frame_header(header: &mut [u8], payload: &[u8]) {
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
}

#[cfg(test)]
pub(crate) fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; FRAME_HEADER_BYTES + payload.len()];
    let (header, body) = buf.split_at_mut(FRAME_HEADER_BYTES);
    body.copy_from_slice(payload);
    fill_frame_header(header, body);
    buf
}

/// Outcome of scanning one frame at `offset` within a segment's byte
/// slice (past the segment header).
pub(crate) enum FrameScan {
    /// A valid frame: the payload and the offset just past it.
    Record { payload: Vec<u8>, next: usize },
    /// Clean end of data (offset is exactly the end).
    End,
    /// The bytes at `offset` are not a valid frame — a torn tail if this
    /// is the last data in the last segment, corruption otherwise.
    Invalid { reason: String },
}

/// Scans the frame starting at `offset` in `data` (a segment's contents
/// with the segment header already stripped by the caller's offset).
pub(crate) fn scan_frame(data: &[u8], offset: usize) -> FrameScan {
    if offset == data.len() {
        return FrameScan::End;
    }
    let remaining = data.len() - offset;
    if remaining < FRAME_HEADER_BYTES {
        return FrameScan::Invalid {
            reason: format!("partial frame header ({remaining} bytes)"),
        };
    }
    let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
    if len == 0 {
        // Zero-length records are forbidden on append precisely so that
        // the zero-filled tail of a pre-sized (mmap-appended) segment
        // can never masquerade as a run of valid empty records.
        return FrameScan::Invalid {
            reason: "zero-length frame (pre-sized segment padding)".to_string(),
        };
    }
    if len > MAX_RECORD_BYTES {
        return FrameScan::Invalid {
            reason: format!("frame length {len} exceeds {MAX_RECORD_BYTES}"),
        };
    }
    if remaining - FRAME_HEADER_BYTES < len {
        return FrameScan::Invalid {
            reason: format!(
                "partial payload ({} of {len} bytes)",
                remaining - FRAME_HEADER_BYTES
            ),
        };
    }
    let start = offset + FRAME_HEADER_BYTES;
    let payload = &data[start..start + len];
    let got = crc32(payload);
    if got != crc {
        return FrameScan::Invalid {
            reason: format!("crc mismatch (stored {crc:#010x}, computed {got:#010x})"),
        };
    }
    FrameScan::Record {
        payload: payload.to_vec(),
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // Standard CRC-32C (Castagnoli) check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x2262_0404
        );
        // Hardware and software paths must agree on every length class.
        for n in 0..64usize {
            let data: Vec<u8> = (0..n as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(crc32(&data), crc32_sw(&data), "len {n}");
        }
    }

    #[test]
    fn frame_roundtrip_and_torn_variants() {
        let frame = encode_frame(b"hello wal");
        match scan_frame(&frame, 0) {
            FrameScan::Record { payload, next } => {
                assert_eq!(payload, b"hello wal");
                assert_eq!(next, frame.len());
            }
            _ => panic!("valid frame must scan"),
        }
        assert!(matches!(scan_frame(&frame, frame.len()), FrameScan::End));
        // Zero padding (a crashed pre-sized segment) is never a record.
        assert!(matches!(
            scan_frame(&[0u8; 64], 0),
            FrameScan::Invalid { .. }
        ));
        // Torn header, torn payload, flipped payload bit.
        assert!(matches!(
            scan_frame(&frame[..4], 0),
            FrameScan::Invalid { .. }
        ));
        assert!(matches!(
            scan_frame(&frame[..frame.len() - 1], 0),
            FrameScan::Invalid { .. }
        ));
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(scan_frame(&bad, 0), FrameScan::Invalid { .. }));
        // Absurd length field.
        let mut huge = frame;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(scan_frame(&huge, 0), FrameScan::Invalid { .. }));
    }
}
