//! # trips-wal — append-only write-ahead log with segment rotation
//!
//! The durability substrate for the TRIPS serving stack: an append-only
//! record log that higher layers (the semantics store, the server) write
//! *before* acknowledging a mutation, so that a crash after an ack can
//! always be repaired by replay. The crate is payload-agnostic — records
//! are opaque byte strings; `trips-store` serializes its operations into
//! them.
//!
//! ## On-disk layout
//!
//! A WAL is a directory of **segment** files named
//! `wal-<seq>.log` (`seq` is a 20-digit zero-padded decimal, so
//! lexicographic order is numeric order). Each segment starts with a
//! 16-byte header, followed by zero or more record frames:
//!
//! ```text
//! segment header:  "TWAL" (4)  | format version u32 LE (4) | seq u64 LE (8)
//! record frame:    len u32 LE (4) | crc32(payload) u32 LE (4) | payload (len)
//! ```
//!
//! The CRC is CRC-32C (Castagnoli — hardware-accelerated on x86-64)
//! over the payload bytes only; `len` is bounds-checked against
//! [`MAX_RECORD_BYTES`] and the bytes remaining in the file, and must be
//! non-zero (zero-length frames are reserved so the zero padding of a
//! pre-sized mapped segment can never read as valid records). Appends go
//! to the highest-numbered segment — on unix via a `MAP_SHARED` mapping
//! of the zero-prefilled active segment, a memcpy into the page cache
//! with no per-record syscall (see the [`Wal`] module docs); when it
//! exceeds [`WalConfig::segment_bytes`] the writer **rotates** to a
//! fresh segment, truncating and syncing the sealed one. Rotation is
//! what makes checkpoint compaction possible: a checkpoint rotates,
//! snapshots everything up to the rotation point, and then retires
//! (deletes) all older segments ([`Wal::retire_below`]).
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for ingest latency:
//!
//! * `Always` — `fdatasync` after every append. An acked record survives
//!   power loss. Slowest.
//! * `EveryN(n)` — sync once per `n` appends (and on rotation/shutdown).
//!   An OS crash can lose up to `n - 1` acked records; a process crash
//!   loses nothing (the bytes are in the page cache).
//! * `Never` — rely on the OS to write back. A process crash still loses
//!   nothing; only an OS/power failure can drop acked records.
//!
//! ## Replay and torn tails
//!
//! [`Wal::replay_from`] returns an iterator over every record in segments
//! `>= seq`, in order. A crash mid-append leaves a **torn tail**: a
//! partial frame (or a frame whose CRC does not match) at the end of the
//! *last* segment. The iterator treats the first invalid frame in the
//! final segment as the torn tail — it stops there cleanly and reports it
//! via [`Replay::torn_tail`] — while an invalid frame in any *earlier*
//! segment (which no crash ordering can produce) is surfaced as
//! [`WalError::Corrupt`]. [`Wal::open`] physically truncates the torn
//! tail before appending resumes, so the un-acked partial record can
//! never resurrect.

mod frame;
#[cfg(unix)]
mod mmap;
mod replay;
mod segment;
mod wal;

pub use frame::{crc32, MAX_RECORD_BYTES};
pub use replay::{Replay, TornTail, WalEntry};
pub use wal::{Wal, WalConfig};

use std::fmt;
use std::path::PathBuf;

/// How often appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: acked ⇒ survives power loss.
    Always,
    /// Sync once per `n` appends (and on rotation / shutdown): an OS
    /// crash can lose up to `n - 1` acked records.
    EveryN(u32),
    /// Never sync explicitly; the OS writes back on its own schedule.
    Never,
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `always`, `never`, or `every=N` (N ≥ 1).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every=") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                    _ => Err(format!(
                        "invalid fsync interval {n:?} (want an integer ≥ 1)"
                    )),
                },
                None => Err(format!(
                    "unknown fsync policy {other:?} (want always, never, or every=N)"
                )),
            },
        }
    }
}

/// Errors raised by WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// An invalid frame in a position no crash can explain (any segment
    /// but the last, or before the last valid record): the log needs
    /// operator attention, replay must not guess.
    Corrupt {
        segment: u64,
        offset: u64,
        reason: String,
    },
    /// A segment file whose header is missing, garbled, or from an
    /// unsupported format version.
    BadSegment { path: PathBuf, reason: String },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal corruption in segment {segment} at byte {offset}: {reason}"
            ),
            WalError::BadSegment { path, reason } => {
                write!(f, "bad wal segment {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_roundtrips_through_strings() {
        for (s, p) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every=64", FsyncPolicy::EveryN(64)),
            ("every=1", FsyncPolicy::EveryN(1)),
        ] {
            assert_eq!(s.parse::<FsyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert!("every=0".parse::<FsyncPolicy>().is_err());
        assert!("every=".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }
}
