//! The WAL writer: open (with torn-tail truncation), append under an
//! fsync policy, rotate, and retire checkpointed segments.
//!
//! ## Append path
//!
//! On unix the active segment is pre-sized to the rotation threshold and
//! `MAP_SHARED`-mapped: an append is a bounds-checked `memcpy` into the
//! page cache — no syscall per record — with identical crash semantics
//! to `write(2)` (dirty mapped pages belong to the file's page cache and
//! are flushed by the same `fdatasync`). The unwritten tail of a
//! pre-sized segment is zeros, which the frame scanner rejects as
//! invalid (zero-length frames are forbidden), so after a crash the
//! padding reads as a torn tail and is truncated like any other tear.
//! Sealed segments are truncated to their real length on rotation and on
//! clean shutdown. Elsewhere a plain `write(2)` path is used.

use crate::frame::{scan_frame, FrameScan, MAX_RECORD_BYTES};
use crate::replay::{Replay, TornTail};
use crate::segment::{
    check_segment_header, encode_segment_header, list_segments, segment_path, SEGMENT_HEADER_BYTES,
};
use crate::{FsyncPolicy, WalError};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Writer configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the active one reaches this size
    /// (also the pre-sizing granularity of the mapped active segment).
    pub segment_bytes: u64,
    /// When appended records are flushed to stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(64),
        }
    }
}

/// An open write-ahead log rooted at a directory (see the crate docs for
/// the on-disk format). One writer per directory; readers ([`Replay`])
/// are independent.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    file: File,
    #[cfg(unix)]
    map: Option<crate::mmap::Region>,
    active_seq: u64,
    /// Bytes of real data in the active segment (header included) — the
    /// file itself may be pre-sized longer for the mapping.
    active_bytes: u64,
    /// Total size of the sealed (non-active) segments.
    sealed_bytes: u64,
    segment_count: usize,
    unsynced: u32,
    appended: u64,
    /// `fdatasync`s issued through this handle (explicit syncs, policy
    /// syncs, and segment seals — not the group-commit flusher's, which
    /// sync a cloned fd outside this struct).
    syncs: u64,
    /// Segment rotations performed through this handle.
    rotations: u64,
    truncated_tail: Option<TornTail>,
    /// Reused frame buffer for the non-mmap write path.
    #[cfg(not(unix))]
    frame_buf: Vec<u8>,
}

impl Wal {
    /// Opens the WAL at `dir` (creating the directory if needed) and
    /// positions for appending: the last segment's tail is validated and
    /// a torn final frame — the signature of a crash mid-append — is
    /// **truncated away** (retrievable via [`Wal::truncated_tail`]).
    /// Segments before the last are not scanned here; [`Wal::replay_from`]
    /// validates them and surfaces mid-log corruption.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<Wal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let mut truncated_tail = None;

        let (active_seq, mut file, active_bytes) = match segments.last() {
            None => {
                let seq = 1;
                let file = create_segment(&dir, seq)?;
                (seq, file, SEGMENT_HEADER_BYTES as u64)
            }
            Some((seq, path)) => {
                let seq = *seq;
                let data = fs::read(path)?;
                let valid_end = if data.len() < SEGMENT_HEADER_BYTES {
                    // Only a crash during segment creation can leave a
                    // short header: nothing in this segment is real.
                    // Rebuild the header in place.
                    truncated_tail = Some(TornTail {
                        segment: seq,
                        offset: 0,
                        reason: format!("short segment header ({} bytes)", data.len()),
                    });
                    0
                } else {
                    if let Err(reason) = check_segment_header(&data, seq) {
                        // A full-length header that is *wrong* (bad
                        // magic, future format version, sequence
                        // mismatch) is not a crash shape — the segment
                        // may be full of synced acked records this
                        // build must not wipe. Typed error, operator
                        // decides.
                        return Err(WalError::BadSegment {
                            path: path.clone(),
                            reason,
                        });
                    }
                    {
                        let mut offset = SEGMENT_HEADER_BYTES;
                        loop {
                            match scan_frame(&data, offset) {
                                FrameScan::Record { next, .. } => offset = next,
                                FrameScan::End => break,
                                FrameScan::Invalid { reason } => {
                                    truncated_tail = Some(TornTail {
                                        segment: seq,
                                        offset: offset as u64,
                                        reason,
                                    });
                                    break;
                                }
                            }
                        }
                        offset
                    }
                };
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                if valid_end == 0 {
                    file.set_len(0)?;
                    file.seek(SeekFrom::Start(0))?;
                    file.write_all(&encode_segment_header(seq))?;
                    file.sync_data()?;
                    (seq, file, SEGMENT_HEADER_BYTES as u64)
                } else {
                    if (valid_end as u64) < data.len() as u64 {
                        file.set_len(valid_end as u64)?;
                        file.sync_data()?;
                    }
                    file.seek(SeekFrom::Start(valid_end as u64))?;
                    (seq, file, valid_end as u64)
                }
            }
        };

        #[cfg(unix)]
        let map = map_active(&mut file, active_bytes, &config)?;

        let mut wal = Wal {
            dir,
            config,
            file,
            #[cfg(unix)]
            map,
            active_seq,
            active_bytes,
            sealed_bytes: 0,
            segment_count: 0,
            unsynced: 0,
            appended: 0,
            syncs: 0,
            rotations: 0,
            truncated_tail,
            #[cfg(not(unix))]
            frame_buf: Vec::new(),
        };
        wal.recount()?;
        Ok(wal)
    }

    /// Iterates every record in every segment of `dir` (see [`Replay`]).
    pub fn replay(dir: impl AsRef<Path>) -> Result<Replay, WalError> {
        Replay::new(dir.as_ref(), 0)
    }

    /// Iterates every record in segments with sequence `>= min_seq` — the
    /// recovery path after a checkpoint recorded `min_seq`.
    pub fn replay_from(dir: impl AsRef<Path>, min_seq: u64) -> Result<Replay, WalError> {
        Replay::new(dir.as_ref(), min_seq)
    }

    /// Appends one record, rotating first if the active segment is full,
    /// then syncing per the configured [`FsyncPolicy`]. When this returns
    /// `Ok`, the record is in the log (and on stable storage, if the
    /// policy says so) — the caller may ack. Payloads must be non-empty
    /// (zero-length frames are reserved for padding detection) and at
    /// most [`MAX_RECORD_BYTES`].
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        self.append_with(payload.len(), |slot| slot.copy_from_slice(payload))
    }

    /// Zero-copy append: reserves a `payload_len` slot in the log, has
    /// `fill` encode the payload **directly into the segment** (on unix,
    /// into the mapped page cache — no intermediate buffer, no copy),
    /// then stamps the frame header (length + CRC computed over the
    /// written bytes). `fill` must fill the whole slot. Same guarantees
    /// as [`Wal::append`].
    pub fn append_with(
        &mut self,
        payload_len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), WalError> {
        if payload_len == 0 {
            return Err(WalError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty wal records are forbidden (indistinguishable from segment padding)",
            )));
        }
        if payload_len > MAX_RECORD_BYTES {
            return Err(WalError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record of {payload_len} bytes exceeds {MAX_RECORD_BYTES}"),
            )));
        }
        if self.active_bytes >= self.config.segment_bytes {
            self.rotate()?;
        }
        let frame_len = crate::frame::FRAME_HEADER_BYTES + payload_len;
        self.write_frame(frame_len, payload_len, fill)?;
        self.active_bytes += frame_len as u64;
        self.appended += 1;
        match self.config.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    #[cfg(unix)]
    fn write_frame(
        &mut self,
        frame_len: usize,
        payload_len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), WalError> {
        let needed = self.active_bytes as usize + frame_len;
        let map_len = self.map.as_ref().map_or(0, crate::mmap::Region::len);
        if needed > map_len {
            // A frame larger than the remaining pre-sized space: grow the
            // file in rotation-threshold steps and remap (unmap first —
            // never shrink or race a live mapping).
            let step = self.config.segment_bytes.max(1) as usize;
            let new_len = needed.div_ceil(step) * step;
            self.map = None;
            zero_extend(&mut self.file, new_len as u64)?;
            let mut region = crate::mmap::Region::map(&self.file, new_len)?;
            region.prefault_padding(self.active_bytes as usize);
            self.map = Some(region);
        }
        let slot = self
            .map
            .as_mut()
            .expect("active segment is mapped")
            .slice_mut(self.active_bytes as usize, frame_len);
        let (header, payload) = slot.split_at_mut(crate::frame::FRAME_HEADER_BYTES);
        debug_assert_eq!(payload.len(), payload_len);
        fill(payload);
        crate::frame::fill_frame_header(header, payload);
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_frame(
        &mut self,
        frame_len: usize,
        payload_len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), WalError> {
        let mut frame = std::mem::take(&mut self.frame_buf);
        frame.clear();
        frame.resize(frame_len, 0);
        let (header, payload) = frame.split_at_mut(crate::frame::FRAME_HEADER_BYTES);
        debug_assert_eq!(payload.len(), payload_len);
        fill(payload);
        crate::frame::fill_frame_header(header, payload);
        let write = self.file.write_all(&frame);
        self.frame_buf = frame;
        write?;
        Ok(())
    }

    /// Flushes the active segment to stable storage now, regardless of
    /// policy (`fdatasync` flushes `MAP_SHARED` dirty pages too).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }

    /// A cloned handle to the active segment, for syncing **off** the
    /// writer's lock: `fdatasync` on the clone flushes the same file
    /// without stalling appenders for the sync's duration (the group-
    /// commit flusher's trick). If a rotation races the sync, the clone
    /// still points at the sealed segment — harmless, rotation syncs
    /// sealed segments itself.
    pub fn sync_handle(&self) -> io::Result<File> {
        self.file.try_clone()
    }

    /// Closes the active segment — truncating its pre-sized padding and
    /// syncing it regardless of fsync policy (rotation is rare, and a
    /// sealed segment that later vanished from the page cache would
    /// corrupt the *middle* of the log, which replay treats as fatal
    /// rather than as a tail to truncate) — and starts a fresh one;
    /// returns the **new** active sequence. A checkpoint rotates,
    /// snapshots state as of the rotation point, then
    /// [`Wal::retire_below`] the new sequence.
    pub fn rotate(&mut self) -> Result<u64, WalError> {
        self.seal_active()?;
        self.sealed_bytes += self.active_bytes;
        let seq = self.active_seq + 1;
        let mut file = create_segment(&self.dir, seq)?;
        #[cfg(unix)]
        {
            self.map = map_active(&mut file, SEGMENT_HEADER_BYTES as u64, &self.config)?;
        }
        self.file = file;
        self.active_seq = seq;
        self.active_bytes = SEGMENT_HEADER_BYTES as u64;
        self.segment_count += 1;
        self.unsynced = 0;
        self.rotations += 1;
        Ok(seq)
    }

    /// Unmaps, trims the pre-sizing padding, and syncs the active
    /// segment (used by rotation and shutdown).
    fn seal_active(&mut self) -> io::Result<()> {
        #[cfg(unix)]
        {
            self.map = None;
        }
        self.file.set_len(self.active_bytes)?;
        self.file.sync_data()?;
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Deletes every segment with sequence below `seq` (never the active
    /// one) — checkpoint compaction. Returns how many files were removed.
    pub fn retire_below(&mut self, seq: u64) -> Result<usize, WalError> {
        let cutoff = seq.min(self.active_seq);
        let mut removed = 0;
        for (s, path) in list_segments(&self.dir)? {
            if s < cutoff {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.sync_dir();
            self.recount()?;
        }
        Ok(removed)
    }

    /// Directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence of the segment currently being appended to.
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segment_count
    }

    /// Total bytes of real log data across live segments (headers
    /// included; the active segment's pre-sizing padding is not data).
    pub fn total_bytes(&self) -> u64 {
        self.sealed_bytes + self.active_bytes
    }

    /// Records appended through this handle since it was opened.
    pub fn records_appended(&self) -> u64 {
        self.appended
    }

    /// Appends not yet explicitly synced (0 under `FsyncPolicy::Always`).
    pub fn unsynced_records(&self) -> u32 {
        self.unsynced
    }

    /// `fdatasync`s issued through this handle since it was opened
    /// (policy syncs + explicit syncs + segment seals).
    pub fn fsyncs(&self) -> u64 {
        self.syncs
    }

    /// Segment rotations performed through this handle since it was
    /// opened.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The torn tail [`Wal::open`] truncated, if any.
    pub fn truncated_tail(&self) -> Option<&TornTail> {
        self.truncated_tail.as_ref()
    }

    /// Recomputes segment count + sealed bytes from the directory.
    fn recount(&mut self) -> Result<(), WalError> {
        let segments = list_segments(&self.dir)?;
        self.segment_count = segments.len();
        self.sealed_bytes = 0;
        for (seq, path) in &segments {
            if *seq != self.active_seq {
                self.sealed_bytes += fs::metadata(path)?.len();
            }
        }
        Ok(())
    }

    /// Best-effort directory fsync so segment creation/removal survives a
    /// power failure (ignored where directories cannot be opened).
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Graceful shutdown: trim the padding so readers and the next
        // open see exactly the real log, and don't lose the tail of an
        // EveryN window.
        let _ = self.seal_active();
    }
}

/// Pre-sizes the active segment for its mapping and maps it. The file
/// is grown to at least one rotation threshold (never shrunk here — the
/// real data length is tracked by the caller).
///
/// Growth is **zero-fill writes**, not `set_len` holes or `fallocate`
/// extents: first-touch of a sparse/unwritten page through the mapping
/// costs microseconds (fault + block allocation + `page_mkwrite`),
/// turning every append into the slow path, while pages already in the
/// cache cost ~0.3 µs (measured; PostgreSQL's `wal_init_zero` makes the
/// same call). The fill is one-time work at segment creation.
#[cfg(unix)]
fn map_active(
    file: &mut File,
    active_bytes: u64,
    config: &WalConfig,
) -> Result<Option<crate::mmap::Region>, WalError> {
    let step = config.segment_bytes.max(1);
    let target = active_bytes.max(1).div_ceil(step) * step;
    zero_extend(file, target)?;
    let len = fs::File::metadata(file)?.len() as usize;
    let mut region = crate::mmap::Region::map(file, len)?;
    region.prefault_padding(active_bytes as usize);
    Ok(Some(region))
}

/// Appends zeros until the file is `target` bytes long (no-op if it
/// already is).
#[cfg(unix)]
fn zero_extend(file: &mut File, target: u64) -> io::Result<()> {
    let len = fs::File::metadata(file)?.len();
    if len >= target {
        return Ok(());
    }
    static ZEROS: [u8; 64 * 1024] = [0; 64 * 1024];
    file.seek(SeekFrom::End(0))?;
    let mut remaining = target - len;
    while remaining > 0 {
        let chunk = remaining.min(ZEROS.len() as u64) as usize;
        file.write_all(&ZEROS[..chunk])?;
        remaining -= chunk as u64;
    }
    Ok(())
}

fn create_segment(dir: &Path, seq: u64) -> Result<File, WalError> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .read(true)
        .write(true)
        .open(&path)?;
    file.write_all(&encode_segment_header(seq))?;
    file.sync_data()?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(file)
}
