//! Segment files: naming, header encode/decode, and directory listing.

use crate::WalError;
use std::fs;
use std::path::{Path, PathBuf};

pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"TWAL";
pub(crate) const SEGMENT_FORMAT_VERSION: u32 = 1;
/// magic (4) + format version u32 (4) + seq u64 (8).
pub(crate) const SEGMENT_HEADER_BYTES: usize = 16;

/// `wal-<seq>.log` with a 20-digit zero-padded decimal sequence, so the
/// lexicographic directory order is the numeric replay order.
pub(crate) fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:020}.log")
}

pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(segment_file_name(seq))
}

/// Parses a segment sequence number out of a file name; `None` for
/// anything that is not a well-formed segment name.
pub(crate) fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The 16-byte header written at the start of every segment.
pub(crate) fn encode_segment_header(seq: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES];
    h[..4].copy_from_slice(&SEGMENT_MAGIC);
    h[4..8].copy_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Validates a segment's header against the sequence its file name
/// claims. `Ok(())` or a reason string.
pub(crate) fn check_segment_header(data: &[u8], want_seq: u64) -> Result<(), String> {
    if data.len() < SEGMENT_HEADER_BYTES {
        return Err(format!("short header ({} bytes)", data.len()));
    }
    if data[..4] != SEGMENT_MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SEGMENT_FORMAT_VERSION {
        return Err(format!(
            "unsupported segment format version {version} (expected {SEGMENT_FORMAT_VERSION})"
        ));
    }
    let seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if seq != want_seq {
        return Err(format!(
            "header sequence {seq} does not match file name sequence {want_seq}"
        ));
    }
    Ok(())
}

/// Lists the directory's segments sorted ascending by sequence. Files
/// that do not match the segment naming scheme are ignored (the snapshot
/// and its `.tmp` shadow share the directory).
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_by_key(|(seq, _)| *seq);
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_numerically() {
        for seq in [0u64, 1, 9, 10, 99, 1_000_000, u64::MAX] {
            let name = segment_file_name(seq);
            assert_eq!(parse_segment_file_name(&name), Some(seq), "{name}");
        }
        assert!(
            segment_file_name(9) < segment_file_name(10),
            "lexicographic == numeric"
        );
        for bad in [
            "wal-1.log",
            "wal-.log",
            "snapshot.json",
            "wal-00000000000000000001.tmp",
        ] {
            assert_eq!(parse_segment_file_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn header_checks() {
        let h = encode_segment_header(7);
        assert!(check_segment_header(&h, 7).is_ok());
        assert!(check_segment_header(&h, 8).is_err(), "seq mismatch");
        assert!(check_segment_header(&h[..10], 7).is_err(), "short");
        let mut bad = h;
        bad[0] = b'X';
        assert!(check_segment_header(&bad, 7).is_err(), "magic");
        let mut newer = h;
        newer[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(check_segment_header(&newer, 7).is_err(), "version");
    }
}
