//! Integration tests: append/replay roundtrips, rotation, retirement,
//! torn-tail truncation, and mid-log corruption detection.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use trips_wal::{FsyncPolicy, Wal, WalConfig, WalError};

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

/// A unique scratch WAL directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("trips-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tiny_segments(fsync: FsyncPolicy) -> WalConfig {
    WalConfig {
        segment_bytes: 64, // rotate after a record or two
        fsync,
    }
}

fn payloads(replay: trips_wal::Replay) -> (Vec<Vec<u8>>, Option<trips_wal::TornTail>) {
    let mut replay = replay;
    let mut out = Vec::new();
    for entry in replay.by_ref() {
        out.push(entry.expect("no corruption expected").payload);
    }
    let torn = replay.torn_tail().cloned();
    (out, torn)
}

#[test]
fn append_replay_roundtrip_across_rotation() {
    let dir = TempDir::new("roundtrip");
    let want: Vec<Vec<u8>> = (0..50)
        .map(|i| format!("record-{i}-{}", "x".repeat(i % 13)).into_bytes())
        .collect();
    {
        let mut wal = Wal::open(&dir.0, tiny_segments(FsyncPolicy::EveryN(8))).unwrap();
        for p in &want {
            wal.append(p).unwrap();
        }
        assert!(wal.segment_count() > 1, "tiny segments must have rotated");
        assert_eq!(wal.records_appended(), 50);
    }
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got, want, "order and content survive rotation");
    assert!(torn.is_none());
}

#[test]
fn reopen_continues_the_same_log() {
    let dir = TempDir::new("reopen");
    {
        let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
        wal.append(b"first").unwrap();
    }
    {
        let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
        assert!(wal.truncated_tail().is_none(), "clean shutdown, clean tail");
        wal.append(b"second").unwrap();
    }
    let (got, _) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
}

#[test]
fn torn_tail_is_truncated_not_fatal() {
    let dir = TempDir::new("torn");
    {
        let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append(format!("acked-{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
    }
    // Simulate a crash mid-append: chop bytes off the (only) segment.
    let seg = fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let full = fs::read(&seg).unwrap();
    fs::write(&seg, &full[..full.len() - 3]).unwrap();

    // Replay (read-only) stops at the tear and reports it.
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got.len(), 4, "last (torn) record dropped");
    assert_eq!(got[3], b"acked-3");
    let torn = torn.expect("tear reported");
    assert!(torn.reason.contains("partial"), "{}", torn.reason);

    // Open truncates the tear; the log is clean again and appendable.
    {
        let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
        assert!(wal.truncated_tail().is_some());
        wal.append(b"after-recovery").unwrap();
    }
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got.len(), 5);
    assert_eq!(got[4], b"after-recovery");
    assert!(torn.is_none(), "tear physically removed");
}

#[test]
fn garbage_tail_and_crc_flip_are_torn_tails() {
    // Garbage appended after both records tears after 2 survivors; a CRC
    // flip inside the second record tears after 1.
    for (tag, survivors, mutate) in [
        (
            "garbage",
            2,
            Box::new(|data: &mut Vec<u8>| data.extend_from_slice(b"\x07garbage"))
                as Box<dyn Fn(&mut Vec<u8>)>,
        ),
        (
            "crcflip",
            1,
            Box::new(|data: &mut Vec<u8>| {
                let n = data.len();
                data[n - 1] ^= 0xFF;
            }),
        ),
    ] {
        let dir = TempDir::new(tag);
        {
            let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
            wal.append(b"good-1").unwrap();
            wal.append(b"good-2").unwrap();
            wal.sync().unwrap();
        }
        let seg = fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let mut data = fs::read(&seg).unwrap();
        mutate(&mut data);
        fs::write(&seg, &data).unwrap();

        let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
        assert_eq!(
            got.len(),
            survivors,
            "{tag}: records after the tear are gone"
        );
        assert_eq!(got[0], b"good-1");
        assert!(torn.is_some(), "{tag}");
    }
}

#[test]
fn mid_log_corruption_is_an_error_not_a_truncation() {
    let dir = TempDir::new("midlog");
    {
        let mut wal = Wal::open(&dir.0, tiny_segments(FsyncPolicy::Never)).unwrap();
        for i in 0..20 {
            wal.append(format!("r{i}-{}", "y".repeat(10)).as_bytes())
                .unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() >= 3, "need non-last segments");
    }
    // Flip a payload byte inside the FIRST segment — not a crash shape.
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let mut data = fs::read(&segs[0]).unwrap();
    let n = data.len();
    data[n - 2] ^= 0x55;
    fs::write(&segs[0], &data).unwrap();

    let mut replay = Wal::replay(&dir.0).unwrap();
    let err = replay
        .by_ref()
        .find_map(|r| r.err())
        .expect("mid-log corruption must surface as an error");
    assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    assert!(replay.torn_tail().is_none(), "not a torn tail");
}

#[test]
fn bad_header_on_last_segment_reinitializes() {
    let dir = TempDir::new("badheader");
    {
        let mut wal = Wal::open(&dir.0, tiny_segments(FsyncPolicy::Never)).unwrap();
        for i in 0..10 {
            wal.append(format!("keep-{i}-{}", "z".repeat(12)).as_bytes())
                .unwrap();
        }
        // Crash "during" creating a fresh segment: simulate by rotating
        // and then mangling the new segment's header.
        wal.rotate().unwrap();
    }
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let last = segs.last().unwrap();
    fs::write(last, b"TW").unwrap(); // partial header

    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got.len(), 10, "earlier segments unaffected");
    assert!(torn.is_some(), "partial header is a torn tail at offset 0");

    let mut wal = Wal::open(&dir.0, tiny_segments(FsyncPolicy::Never)).unwrap();
    assert!(wal.truncated_tail().is_some());
    wal.append(b"alive").unwrap();
    drop(wal);
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got.len(), 11);
    assert!(torn.is_none());
}

/// A *complete* header that is wrong — future format version, corrupted
/// magic — is not a crash shape: the segment may be full of synced acked
/// records, so open and replay must fail typed instead of wiping it.
#[test]
fn wrong_complete_header_is_a_typed_error_not_a_wipe() {
    for (tag, mutate) in [
        ("version", 4usize), // format-version byte
        ("magic", 0usize),   // magic byte
    ] {
        let dir = TempDir::new(&format!("hdr-{tag}"));
        {
            let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
            wal.append(b"synced-acked-record").unwrap();
            wal.sync().unwrap();
        }
        let seg = fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let mut data = fs::read(&seg).unwrap();
        data[mutate] ^= 0x7F;
        fs::write(&seg, &data).unwrap();

        match Wal::open(&dir.0, WalConfig::default()) {
            Err(WalError::BadSegment { .. }) => {}
            Err(e) => panic!("{tag}: want BadSegment, got {e}"),
            Ok(_) => panic!("{tag}: a wrong header must not open"),
        }
        let mut replay = Wal::replay(&dir.0).unwrap();
        let err = replay.by_ref().find_map(|r| r.err());
        assert!(
            matches!(err, Some(WalError::BadSegment { .. })),
            "{tag}: replay must not guess either"
        );
        // Crucially: the record is still on disk, untouched.
        let after = fs::read(&seg).unwrap();
        assert_eq!(after, data, "{tag}: no wipe, no truncation");
    }
}

#[test]
fn rotate_and_retire_below_compact_the_log() {
    let dir = TempDir::new("retire");
    let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
    wal.append(b"old-1").unwrap();
    wal.append(b"old-2").unwrap();
    let checkpoint_seq = wal.rotate().unwrap();
    wal.append(b"new-1").unwrap();
    wal.sync().unwrap();

    // Only post-rotation records replay from the checkpoint sequence.
    let (newer, _) = payloads(Wal::replay_from(&dir.0, checkpoint_seq).unwrap());
    assert_eq!(newer, vec![b"new-1".to_vec()]);

    let removed = wal.retire_below(checkpoint_seq).unwrap();
    assert_eq!(removed, 1);
    assert_eq!(wal.segment_count(), 1);
    let (all, _) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(all, vec![b"new-1".to_vec()], "old records compacted away");

    // Retiring at or below the active sequence never deletes the active
    // segment, even with an absurd cutoff.
    let removed = wal.retire_below(u64::MAX).unwrap();
    assert_eq!(removed, 0);
    assert_eq!(wal.segment_count(), 1);
}

#[test]
fn all_fsync_policies_produce_identical_logs() {
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(4),
        FsyncPolicy::Never,
    ] {
        let dir = TempDir::new("policy");
        {
            let mut wal = Wal::open(&dir.0, tiny_segments(policy)).unwrap();
            for i in 0..25 {
                wal.append(format!("p-{i}").as_bytes()).unwrap();
            }
        }
        let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
        assert!(torn.is_none(), "{policy}");
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{policy}"),
        }
    }
}

#[test]
fn empty_log_opens_and_replays_empty() {
    let dir = TempDir::new("empty");
    let wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
    assert_eq!(wal.segment_count(), 1);
    assert_eq!(wal.records_appended(), 0);
    drop(wal);
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert!(got.is_empty());
    assert!(torn.is_none());
}

#[test]
fn oversized_record_is_rejected_up_front() {
    let dir = TempDir::new("oversize");
    let mut wal = Wal::open(&dir.0, WalConfig::default()).unwrap();
    let huge = vec![0u8; trips_wal::MAX_RECORD_BYTES + 1];
    assert!(wal.append(&huge).is_err());
    // The failed append must not have written a partial frame.
    wal.append(b"ok").unwrap();
    drop(wal);
    let (got, torn) = payloads(Wal::replay(&dir.0).unwrap());
    assert_eq!(got, vec![b"ok".to_vec()]);
    assert!(torn.is_none());
}
