//! Grid index vs linear scan on the DSM query hot path.
//!
//! `nearest_region` is the Translator's per-record workhorse; this bench
//! compares the frozen (grid-indexed) model against the same unfrozen model
//! (linear scan) at 10 / 100 / 1000 entities. The indexed path must win
//! from ~100 entities up — the acceptance bar for the index refactor.
//!
//! Run: `cargo bench -p trips-dsm --bench spatial_index`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trips_dsm::{DigitalSpaceModel, Entity, EntityKind, SemanticRegion, SemanticTag};
use trips_geom::{IndoorPoint, Point, Polygon};

/// `n` shops (entity + region each) laid out on a √n × √n grid, 12 m pitch.
fn model_with(n: usize, frozen: bool) -> DigitalSpaceModel {
    let mut dsm = DigitalSpaceModel::new("bench");
    let cols = (n as f64).sqrt().ceil() as usize;
    for i in 0..n {
        let (cx, cy) = ((i % cols) as f64 * 12.0, (i / cols) as f64 * 12.0);
        let poly = Polygon::rectangle(Point::new(cx, cy), Point::new(cx + 10.0, cy + 8.0));
        let e = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            e,
            EntityKind::Room,
            0,
            &format!("shop-{i}"),
            poly.clone(),
        ))
        .unwrap();
        let r = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            r,
            &format!("Shop {i}"),
            SemanticTag::new("shop", "shop"),
            0,
            poly,
            e,
        ))
        .unwrap();
    }
    if frozen {
        dsm.freeze();
    }
    dsm
}

/// Deterministic pseudo-random probe points over (and slightly beyond) the
/// layout extent.
fn probes(n: usize) -> Vec<IndoorPoint> {
    let extent = (n as f64).sqrt().ceil() * 12.0;
    (0..64u64)
        .map(|i| {
            let h = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (h >> 11) as f64 / (1u64 << 53) as f64;
            let y = (h.rotate_left(17) >> 11) as f64 / (1u64 << 53) as f64;
            IndoorPoint::new(
                x * extent * 1.2 - extent * 0.1,
                y * extent * 1.2 - extent * 0.1,
                0,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_index_nearest_region");
    for &n in &[10usize, 100, 1000] {
        let linear = model_with(n, false);
        let indexed = model_with(n, true);
        let queries = probes(n);
        // Sanity: both paths agree before we time them.
        for p in &queries {
            let a = linear.nearest_region(p).map(|(r, d)| (r.id, d));
            let b = indexed.nearest_region(p).map(|(r, d)| (r.id, d));
            assert_eq!(a, b, "index must be result-identical at {p:?}");
        }
        g.bench_with_input(BenchmarkId::new("linear", n), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .filter_map(|p| linear.nearest_region(p))
                    .map(|(r, _)| r.id.0 as u64)
                    .sum::<u64>()
            })
        });
        g.bench_with_input(BenchmarkId::new("indexed", n), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .filter_map(|p| indexed.nearest_region(p))
                    .map(|(r, _)| r.id.0 as u64)
                    .sum::<u64>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
