//! The spatial grid index must be observationally invisible: on any model,
//! every query (`locate`, `region_at`, `nearest_walkable`, `nearest_region`)
//! answered through the frozen model's grid returns exactly what the
//! unfrozen model's linear scan returns — same ids, bitwise-equal
//! distances, same tie-breaks.

use proptest::prelude::*;
use trips_dsm::{DigitalSpaceModel, Entity, EntityKind, SemanticRegion, SemanticTag};
use trips_geom::{IndoorPoint, Point, Polygon};

/// Raw material for one random entity: position, size, floor, kind tag.
type RawEntity = (f64, f64, f64, f64, i16, u8);

fn arb_entities() -> impl Strategy<Value = Vec<RawEntity>> {
    proptest::collection::vec(
        (
            -50.0f64..150.0,
            -50.0f64..150.0,
            0.5f64..40.0,
            0.5f64..40.0,
            0i16..3,
            0u8..6,
        ),
        1..40,
    )
}

/// Builds a model from raw entities. Every third area entity also gets a
/// semantic region; every seventh walkable becomes a multi-floor staircase.
/// Returned unfrozen (linear-scan queries).
fn build_model(raw: &[RawEntity]) -> DigitalSpaceModel {
    let mut dsm = DigitalSpaceModel::new("random");
    for (i, &(x, y, w, h, floor, kind)) in raw.iter().enumerate() {
        let poly = Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h));
        let id = dsm.next_entity_id();
        if i % 7 == 6 {
            dsm.add_entity(Entity::staircase(
                id,
                &format!("stairs-{i}"),
                poly.clone(),
                &[floor, floor + 1],
            ))
            .unwrap();
        } else {
            let kind = match kind {
                0 | 1 => EntityKind::Room,
                2 => EntityKind::Hallway,
                3 => EntityKind::Obstacle,
                4 => EntityKind::Wall,
                _ => EntityKind::Room,
            };
            let entity = if kind == EntityKind::Wall {
                Entity::wall(
                    id,
                    floor,
                    &format!("wall-{i}"),
                    trips_geom::Polyline::new(vec![Point::new(x, y), Point::new(x + w, y + h)]),
                )
            } else {
                Entity::area(id, kind, floor, &format!("e-{i}"), poly.clone())
            };
            dsm.add_entity(entity).unwrap();
        }
        if i % 3 == 0 {
            let rid = dsm.next_region_id();
            dsm.add_region(SemanticRegion::new(
                rid,
                &format!("region-{i}"),
                SemanticTag::new("shop", "shop"),
                floor,
                poly,
                id,
            ))
            .unwrap();
        }
    }
    dsm
}

fn arb_query_point() -> impl Strategy<Value = IndoorPoint> {
    // Deliberately wider than the entity extent (points far outside the
    // grid) and one floor beyond the populated range (empty floors).
    (-120.0f64..250.0, -120.0f64..250.0, 0i16..5).prop_map(|(x, y, f)| IndoorPoint::new(x, y, f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_queries_equal_linear_queries(
        raw in arb_entities(),
        points in proptest::collection::vec(arb_query_point(), 1..24),
    ) {
        let linear = build_model(&raw);
        let mut indexed = linear.clone();
        indexed.freeze();
        prop_assert!(indexed.spatial_index().is_some());
        prop_assert!(linear.spatial_index().is_none());

        for p in &points {
            prop_assert_eq!(
                linear.locate(p).map(|e| e.id),
                indexed.locate(p).map(|e| e.id),
                "locate diverged at {:?}", p
            );
            prop_assert_eq!(
                linear.region_at(p).map(|r| r.id),
                indexed.region_at(p).map(|r| r.id),
                "region_at diverged at {:?}", p
            );
            prop_assert_eq!(
                linear.nearest_walkable(p).map(|(e, d)| (e.id, d)),
                indexed.nearest_walkable(p).map(|(e, d)| (e.id, d)),
                "nearest_walkable diverged at {:?}", p
            );
            prop_assert_eq!(
                linear.nearest_region(p).map(|(r, d)| (r.id, d)),
                indexed.nearest_region(p).map(|(r, d)| (r.id, d)),
                "nearest_region diverged at {:?}", p
            );
        }
    }

    #[test]
    fn queries_on_shared_boundaries_agree(
        cols in 1usize..6,
        rows in 1usize..6,
        floor in 0i16..2,
    ) {
        // Abutting 10×10 rooms: probe exactly on the shared edges and
        // corners, where bbox/cell boundary handling is most delicate.
        let mut dsm = DigitalSpaceModel::new("lattice");
        for cy in 0..rows {
            for cx in 0..cols {
                let (x, y) = (cx as f64 * 10.0, cy as f64 * 10.0);
                let poly = Polygon::rectangle(Point::new(x, y), Point::new(x + 10.0, y + 10.0));
                let id = dsm.next_entity_id();
                dsm.add_entity(Entity::area(id, EntityKind::Room, floor, "r", poly.clone()))
                    .unwrap();
                let rid = dsm.next_region_id();
                dsm.add_region(SemanticRegion::new(
                    rid, "reg", SemanticTag::new("shop", "shop"), floor, poly, id,
                )).unwrap();
            }
        }
        let linear = dsm.clone();
        let mut indexed = dsm;
        indexed.freeze();

        for gy in 0..=rows {
            for gx in 0..=cols {
                let p = IndoorPoint::new(gx as f64 * 10.0, gy as f64 * 10.0, floor);
                prop_assert_eq!(
                    linear.locate(&p).map(|e| e.id),
                    indexed.locate(&p).map(|e| e.id)
                );
                prop_assert_eq!(
                    linear.region_at(&p).map(|r| r.id),
                    indexed.region_at(&p).map(|r| r.id)
                );
                prop_assert_eq!(
                    linear.nearest_walkable(&p).map(|(e, d)| (e.id, d)),
                    indexed.nearest_walkable(&p).map(|(e, d)| (e.id, d))
                );
                prop_assert_eq!(
                    linear.nearest_region(&p).map(|(r, d)| (r.id, d)),
                    indexed.nearest_region(&p).map(|(r, d)| (r.id, d))
                );
            }
        }
    }
}
