//! Property-based tests for the DSM: the minimum indoor walking distance
//! must behave like a metric over the mall, and location queries must be
//! consistent.

use proptest::prelude::*;
use trips_dsm::builder::MallBuilder;
use trips_dsm::{DigitalSpaceModel, PathQuery};
use trips_geom::IndoorPoint;

fn mall() -> DigitalSpaceModel {
    MallBuilder::new().floors(2).shops_per_row(3).build()
}

/// Points constrained to the mall's footprint on floors 0-1.
fn arb_point() -> impl Strategy<Value = IndoorPoint> {
    (0.0f64..30.0, 0.0f64..22.0, 0i16..2).prop_map(|(x, y, f)| IndoorPoint::new(x, y, f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn walking_distance_symmetric(a in arb_point(), b in arb_point()) {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        let d1 = pq.distance(&a, &b);
        let d2 = pq.distance(&b, &a);
        match (d1, d2) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}"),
            (None, None) => {}
            _ => prop_assert!(false, "reachability must be symmetric"),
        }
    }

    #[test]
    fn walking_distance_nonnegative_and_zero_on_self(a in arb_point()) {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        if let Some(d) = pq.distance(&a, &a) {
            prop_assert!(d.abs() < 1e-9, "self distance {d}");
        }
        let b = IndoorPoint::new(a.xy.x + 0.5, a.xy.y, a.floor);
        if let Some(d) = pq.distance(&a, &b) {
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn walking_distance_at_least_planar_on_same_floor(a in arb_point(), b in arb_point()) {
        prop_assume!(a.floor == b.floor);
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        if let Some(d) = pq.distance(&a, &b) {
            // Walking distance can undercut planar distance only by snapping
            // slack when a point lies outside every walkable area.
            let inside = dsm.locate(&a).is_some() && dsm.locate(&b).is_some();
            if inside {
                prop_assert!(d + 1e-6 >= a.planar_distance(&b),
                    "walking {d} < planar {}", a.planar_distance(&b));
            }
        }
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        if let (Some(ab), Some(bc), Some(ac)) =
            (pq.distance(&a, &b), pq.distance(&b, &c), pq.distance(&a, &c))
        {
            prop_assert!(ac <= ab + bc + 1e-6, "ac {ac} > ab {ab} + bc {bc}");
        }
    }

    #[test]
    fn path_endpoints_match_query(a in arb_point(), b in arb_point()) {
        let dsm = mall();
        let pq = PathQuery::new(&dsm).unwrap();
        if let Some(path) = pq.path(&a, &b) {
            prop_assert_eq!(path.points[0], a);
            prop_assert_eq!(*path.points.last().unwrap(), b);
            prop_assert!(path.distance.is_finite());
            // Fraction endpoints are exact.
            prop_assert_eq!(path.point_at_fraction(0.0), a);
            prop_assert_eq!(path.point_at_fraction(1.0), b);
        }
    }

    #[test]
    fn locate_agrees_with_entity_contains(p in arb_point()) {
        let dsm = mall();
        if let Some(e) = dsm.locate(&p) {
            prop_assert!(e.contains(p.xy), "located entity must contain the point");
            prop_assert!(e.on_floor(p.floor));
        }
    }

    #[test]
    fn region_at_returns_containing_region(p in arb_point()) {
        let dsm = mall();
        if let Some(r) = dsm.region_at(&p) {
            prop_assert!(r.contains(p.xy));
            prop_assert_eq!(r.floor, p.floor);
        }
    }

    #[test]
    fn json_roundtrip_preserves_queries(p in arb_point()) {
        let dsm = mall();
        let back = trips_dsm::json::from_json(&trips_dsm::json::to_json(&dsm).unwrap()).unwrap();
        let r1 = dsm.region_at(&p).map(|r| r.id);
        let r2 = back.region_at(&p).map(|r| r.id);
        prop_assert_eq!(r1, r2);
    }
}
