//! Topological relations: which door opens into which walkable areas, which
//! areas are adjacent, how semantic regions connect, and the node/edge graph
//! the walking-distance engine runs on.

use crate::entity::{EntityId, EntityKind, Footprint};
use crate::model::DigitalSpaceModel;
use crate::semantic::RegionId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use trips_geom::{FloorId, Point};

/// How close (metres) a door anchor must be to an area boundary for the door
/// to be considered an opening of that area.
pub const DOOR_ATTACH_TOLERANCE: f64 = 0.5;

/// A node of the walking graph: a door anchor or a staircase port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    /// The entity (door or staircase) this node represents.
    pub entity: EntityId,
    pub point: Point,
    pub floor: FloorId,
}

/// A weighted edge of the walking graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphEdge {
    pub to: usize,
    pub weight: f64,
}

/// The computed topology of a DSM.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// door id → walkable areas the door opens into (usually 2).
    pub door_areas: BTreeMap<EntityId, Vec<EntityId>>,
    /// walkable area id → (neighbour area, connecting door).
    pub area_adjacency: BTreeMap<EntityId, Vec<(EntityId, EntityId)>>,
    /// region id → directly reachable neighbour regions.
    pub region_adjacency: BTreeMap<RegionId, Vec<RegionId>>,
    /// entity id → regions mapped onto it.
    pub entity_regions: BTreeMap<EntityId, Vec<RegionId>>,
    /// Walking-graph nodes (door anchors + staircase ports).
    pub nodes: Vec<GraphNode>,
    /// walkable area id → indices into `nodes` reachable from inside it.
    pub area_nodes: BTreeMap<EntityId, Vec<usize>>,
    /// Adjacency list aligned with `nodes`.
    pub edges: Vec<Vec<GraphEdge>>,
}

impl Topology {
    /// Computes all topological relations of `dsm`.
    pub fn compute(dsm: &DigitalSpaceModel) -> Topology {
        let mut topo = Topology::default();

        let walkables: Vec<&crate::entity::Entity> =
            dsm.entities().filter(|e| e.kind.is_walkable()).collect();

        // --- door ↔ area attachment -------------------------------------
        for door in dsm.entities().filter(|e| e.kind == EntityKind::Door) {
            let Footprint::Opening { anchor, .. } = &door.footprint else {
                continue;
            };
            let mut areas = Vec::new();
            for w in &walkables {
                if !w.on_floor(door.floor) {
                    continue;
                }
                if let Some(poly) = w.footprint.as_area() {
                    if poly.distance_to_point(*anchor) <= DOOR_ATTACH_TOLERANCE {
                        areas.push(w.id);
                    }
                }
            }
            topo.door_areas.insert(door.id, areas);
        }

        // --- area adjacency through doors --------------------------------
        for (door, areas) in &topo.door_areas {
            for (i, &a) in areas.iter().enumerate() {
                for &b in &areas[i + 1..] {
                    topo.area_adjacency.entry(a).or_default().push((b, *door));
                    topo.area_adjacency.entry(b).or_default().push((a, *door));
                }
            }
        }

        // --- staircases join their footprint areas across floors ---------
        // A staircase port on floor f belongs to the walkable area that
        // contains its anchor on f (often a hallway, or the staircell itself).
        // Build walking-graph nodes while we are at it.
        for door in dsm.entities().filter(|e| e.kind == EntityKind::Door) {
            let Footprint::Opening { anchor, .. } = &door.footprint else {
                continue;
            };
            let idx = topo.nodes.len();
            topo.nodes.push(GraphNode {
                entity: door.id,
                point: *anchor,
                floor: door.floor,
            });
            if let Some(areas) = topo.door_areas.get(&door.id) {
                for a in areas {
                    topo.area_nodes.entry(*a).or_default().push(idx);
                }
            }
        }

        // Staircase ports: one node per floor the staircase touches.
        let mut stair_ports: BTreeMap<EntityId, Vec<usize>> = BTreeMap::new();
        for stair in dsm.entities().filter(|e| e.kind == EntityKind::Staircase) {
            let Some(poly) = stair.footprint.as_area() else {
                continue;
            };
            let anchor = poly.interior_point();
            for f in stair.floors() {
                let idx = topo.nodes.len();
                topo.nodes.push(GraphNode {
                    entity: stair.id,
                    point: anchor,
                    floor: f,
                });
                stair_ports.entry(stair.id).or_default().push(idx);
                // The port is reachable from inside the staircell itself...
                topo.area_nodes.entry(stair.id).or_default().push(idx);
                // ...and from every walkable area whose footprint contains or
                // abuts the staircase anchor on this floor.
                for w in &walkables {
                    if w.id == stair.id || !w.on_floor(f) {
                        continue;
                    }
                    if let Some(wpoly) = w.footprint.as_area() {
                        if wpoly.distance_to_point(anchor)
                            <= DOOR_ATTACH_TOLERANCE.max(poly.perimeter() / 4.0)
                        {
                            topo.area_nodes.entry(w.id).or_default().push(idx);
                        }
                    }
                }
            }
        }

        // --- edges --------------------------------------------------------
        topo.edges = vec![Vec::new(); topo.nodes.len()];

        // Intra-area edges: all node pairs sharing a walkable area, weighted
        // by planar Euclidean distance (areas are room-scale and near-convex
        // in floorplans; the straight line is the walking distance).
        for indices in topo.area_nodes.values() {
            for (i, &u) in indices.iter().enumerate() {
                for &v in &indices[i + 1..] {
                    if topo.nodes[u].floor != topo.nodes[v].floor {
                        continue;
                    }
                    let w = topo.nodes[u].point.distance(topo.nodes[v].point);
                    topo.edges[u].push(GraphEdge { to: v, weight: w });
                    topo.edges[v].push(GraphEdge { to: u, weight: w });
                }
            }
        }

        // Vertical edges between consecutive staircase ports.
        for ports in stair_ports.values() {
            let mut sorted: Vec<usize> = ports.clone();
            sorted.sort_by_key(|&i| topo.nodes[i].floor);
            for w in sorted.windows(2) {
                let (u, v) = (w[0], w[1]);
                let df = (topo.nodes[u].floor - topo.nodes[v].floor).abs() as f64;
                // Walking a staircase costs ~3x the vertical rise in path
                // length (run + rise of typical stairs).
                let weight = df * dsm.floor_height * 3.0;
                topo.edges[u].push(GraphEdge { to: v, weight });
                topo.edges[v].push(GraphEdge { to: u, weight });
            }
        }

        // --- entity → regions mapping ------------------------------------
        for region in dsm.regions() {
            for &e in &region.entities {
                topo.entity_regions.entry(e).or_default().push(region.id);
            }
        }

        // --- region adjacency ---------------------------------------------
        // Regions A, B are adjacent iff some backing area of A is adjacent to
        // (or identical with) some backing area of B.
        let region_ids: Vec<RegionId> = dsm.regions().map(|r| r.id).collect();
        let mut adj: BTreeMap<RegionId, BTreeSet<RegionId>> = BTreeMap::new();
        for &rid in &region_ids {
            adj.entry(rid).or_default();
        }
        for region in dsm.regions() {
            for &e in &region.entities {
                // Same-entity regions.
                if let Some(shared) = topo.entity_regions.get(&e) {
                    for &other in shared {
                        if other != region.id {
                            adj.entry(region.id).or_default().insert(other);
                        }
                    }
                }
                // Door-adjacent entities' regions.
                if let Some(neigh) = topo.area_adjacency.get(&e) {
                    for (area, _door) in neigh {
                        if let Some(rids) = topo.entity_regions.get(area) {
                            for &other in rids {
                                if other != region.id {
                                    adj.entry(region.id).or_default().insert(other);
                                }
                            }
                        }
                    }
                }
                // Staircase-linked entities' regions: if a staircase port is
                // reachable from this entity, regions of other areas sharing
                // that staircase are reachable too.
                if let Some(nodes) = topo.area_nodes.get(&e) {
                    for &n in nodes {
                        let node_entity = topo.nodes[n].entity;
                        if let Some(rids) = topo.entity_regions.get(&node_entity) {
                            for &other in rids {
                                if other != region.id {
                                    adj.entry(region.id).or_default().insert(other);
                                }
                            }
                        }
                    }
                }
            }
        }
        topo.region_adjacency = adj
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect();

        topo
    }

    /// The walkable areas a door opens into.
    pub fn areas_of_door(&self, door: EntityId) -> &[EntityId] {
        self.door_areas.get(&door).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Neighbour regions of `region`.
    pub fn neighbours(&self, region: RegionId) -> &[RegionId] {
        self.region_adjacency
            .get(&region)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether two regions are directly connected.
    pub fn regions_adjacent(&self, a: RegionId, b: RegionId) -> bool {
        self.neighbours(a).contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Entity;
    use crate::semantic::{SemanticRegion, SemanticTag};
    use trips_geom::Polygon;

    fn sq(x: f64, y: f64, w: f64, h: f64) -> Polygon {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h))
    }

    /// Two rooms joined to a hallway by one door each, a staircase in the
    /// hallway rising to floor 1 with one room there.
    ///
    /// ```text
    /// floor 0:  [RoomA][ Hall +stairs ][RoomB]     floor 1: [RoomC over hall]
    /// ```
    fn two_room_model() -> (DigitalSpaceModel, Vec<EntityId>, Vec<RegionId>) {
        let mut dsm = DigitalSpaceModel::new("t");
        let a = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            a,
            EntityKind::Room,
            0,
            "A",
            sq(0.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let hall = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            hall,
            EntityKind::Hallway,
            0,
            "Hall",
            sq(10.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let b = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            b,
            EntityKind::Room,
            0,
            "B",
            sq(20.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();
        let d1 = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d1, 0, "door-A", Point::new(10.0, 5.0), 1.0))
            .unwrap();
        let d2 = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d2, 0, "door-B", Point::new(20.0, 5.0), 1.0))
            .unwrap();
        let stairs = dsm.next_entity_id();
        dsm.add_entity(Entity::staircase(
            stairs,
            "stairs",
            sq(14.0, 8.0, 2.0, 2.0),
            &[0, 1],
        ))
        .unwrap();
        let c = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            c,
            EntityKind::Room,
            1,
            "C",
            sq(10.0, 0.0, 10.0, 10.0),
        ))
        .unwrap();

        let ra = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            ra,
            "Shop A",
            SemanticTag::new("shop-a", "shop"),
            0,
            sq(0.0, 0.0, 10.0, 10.0),
            a,
        ))
        .unwrap();
        let rhall = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            rhall,
            "Center Hall",
            SemanticTag::new("atrium", "circulation"),
            0,
            sq(10.0, 0.0, 10.0, 10.0),
            hall,
        ))
        .unwrap();
        let rb = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            rb,
            "Shop B",
            SemanticTag::new("shop-b", "shop"),
            0,
            sq(20.0, 0.0, 10.0, 10.0),
            b,
        ))
        .unwrap();
        let rc = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            rc,
            "Shop C",
            SemanticTag::new("shop-c", "shop"),
            1,
            sq(10.0, 0.0, 10.0, 10.0),
            c,
        ))
        .unwrap();

        dsm.freeze();
        (
            dsm,
            vec![a, hall, b, d1, d2, stairs, c],
            vec![ra, rhall, rb, rc],
        )
    }

    #[test]
    fn doors_attach_to_both_sides() {
        let (dsm, e, _) = two_room_model();
        let topo = dsm.topology().unwrap();
        let d1_areas = topo.areas_of_door(e[3]);
        assert!(d1_areas.contains(&e[0]) && d1_areas.contains(&e[1]));
        let d2_areas = topo.areas_of_door(e[4]);
        assert!(d2_areas.contains(&e[1]) && d2_areas.contains(&e[2]));
    }

    #[test]
    fn area_adjacency_via_doors() {
        let (dsm, e, _) = two_room_model();
        let topo = dsm.topology().unwrap();
        let a_neigh = &topo.area_adjacency[&e[0]];
        assert!(a_neigh.iter().any(|(n, d)| *n == e[1] && *d == e[3]));
        // A and B are NOT directly adjacent (must go through the hall).
        assert!(!a_neigh.iter().any(|(n, _)| *n == e[2]));
    }

    #[test]
    fn region_adjacency_follows_area_adjacency() {
        let (dsm, _, r) = two_room_model();
        let topo = dsm.topology().unwrap();
        assert!(topo.regions_adjacent(r[0], r[1]), "Shop A ↔ Hall");
        assert!(topo.regions_adjacent(r[1], r[2]), "Hall ↔ Shop B");
        assert!(!topo.regions_adjacent(r[0], r[2]), "Shop A ↮ Shop B");
    }

    #[test]
    fn graph_nodes_cover_doors_and_stair_ports() {
        let (dsm, _, _) = two_room_model();
        let topo = dsm.topology().unwrap();
        // 2 doors + 2 staircase ports (floors 0 and 1).
        assert_eq!(topo.nodes.len(), 4);
        let floors: Vec<FloorId> = topo.nodes.iter().map(|n| n.floor).collect();
        assert_eq!(floors.iter().filter(|&&f| f == 0).count(), 3);
        assert_eq!(floors.iter().filter(|&&f| f == 1).count(), 1);
    }

    #[test]
    fn hallway_reaches_both_doors_and_stairs() {
        let (dsm, e, _) = two_room_model();
        let topo = dsm.topology().unwrap();
        let hall_nodes = &topo.area_nodes[&e[1]];
        assert_eq!(hall_nodes.len(), 3, "two doors + stair port on floor 0");
    }

    #[test]
    fn vertical_edges_exist() {
        let (dsm, _, _) = two_room_model();
        let topo = dsm.topology().unwrap();
        let port0 = topo
            .nodes
            .iter()
            .position(|n| n.floor == 0 && n.entity == EntityId(5))
            .unwrap();
        let port1 = topo
            .nodes
            .iter()
            .position(|n| n.floor == 1 && n.entity == EntityId(5))
            .unwrap();
        assert!(topo.edges[port0].iter().any(|e| e.to == port1));
        let w = topo.edges[port0]
            .iter()
            .find(|e| e.to == port1)
            .unwrap()
            .weight;
        assert!((w - dsm.floor_height * 3.0).abs() < 1e-9);
    }

    #[test]
    fn upstairs_region_connected_through_staircase() {
        let (dsm, _, r) = two_room_model();
        let topo = dsm.topology().unwrap();
        // Shop C (floor 1) has no regions adjacency except via the staircase,
        // whose entity has no region. The hall's region connects to the
        // staircase node, and Shop C's room contains the stair anchor on
        // floor 1 — region adjacency includes both directions through the
        // staircase entity only if the staircase is region-mapped. Without
        // mapping, C connects to nothing at region level.
        assert!(topo.neighbours(r[3]).is_empty());
        // But the hall's neighbour set contains only shops A and B.
        let hall_neigh = topo.neighbours(r[1]);
        assert!(hall_neigh.contains(&r[0]) && hall_neigh.contains(&r[2]));
    }

    #[test]
    fn dangling_door_attaches_to_nothing() {
        let mut dsm = DigitalSpaceModel::new("t");
        let d = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d, 0, "nowhere", Point::new(100.0, 100.0), 1.0))
            .unwrap();
        dsm.freeze();
        assert!(dsm.topology().unwrap().areas_of_door(d).is_empty());
    }
}
