//! DSM (de)serialization.
//!
//! The paper stores the DSM "in JSON format, which is flexible to parse and
//! manipulate" (§3). The JSON document carries the geometric attributes,
//! the semantic regions and the entity↔region mapping; topology is always
//! recomputed on load (it is derived data).

use crate::model::{DigitalSpaceModel, DsmError};
use std::fs;
use std::path::Path;

/// Serializes the DSM to a pretty-printed JSON string.
pub fn to_json(dsm: &DigitalSpaceModel) -> Result<String, DsmError> {
    serde_json::to_string_pretty(dsm).map_err(|e| DsmError::Serde(e.to_string()))
}

/// Deserializes a DSM from JSON and recomputes its topology.
pub fn from_json(json: &str) -> Result<DigitalSpaceModel, DsmError> {
    let mut dsm: DigitalSpaceModel =
        serde_json::from_str(json).map_err(|e| DsmError::Serde(e.to_string()))?;
    dsm.freeze();
    Ok(dsm)
}

/// Saves the DSM as a JSON file.
pub fn save(dsm: &DigitalSpaceModel, path: impl AsRef<Path>) -> Result<(), DsmError> {
    let json = to_json(dsm)?;
    fs::write(path, json).map_err(|e| DsmError::Serde(e.to_string()))
}

/// Loads a DSM from a JSON file (topology recomputed).
pub fn load(path: impl AsRef<Path>) -> Result<DigitalSpaceModel, DsmError> {
    let json = fs::read_to_string(path).map_err(|e| DsmError::Serde(e.to_string()))?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, EntityKind};
    use crate::semantic::{SemanticRegion, SemanticTag};
    use trips_geom::{Point, Polygon};

    fn sample() -> DigitalSpaceModel {
        let mut dsm = DigitalSpaceModel::new("json-test");
        let a = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            a,
            EntityKind::Room,
            0,
            "A",
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
        ))
        .unwrap();
        let d = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d, 0, "door", Point::new(10.0, 5.0), 1.0))
            .unwrap();
        let r = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            r,
            "Shop A",
            SemanticTag::new("shop-a", "shop"),
            0,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            a,
        ))
        .unwrap();
        dsm.freeze();
        dsm
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let dsm = sample();
        let json = to_json(&dsm).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.name, dsm.name);
        assert_eq!(back.entity_count(), dsm.entity_count());
        assert_eq!(back.region_count(), dsm.region_count());
        assert!(back.is_frozen(), "topology recomputed on load");
        // Region query still works identically.
        assert_eq!(
            back.region_at_xy(5.0, 5.0, 0).unwrap().name,
            dsm.region_at_xy(5.0, 5.0, 0).unwrap().name
        );
    }

    #[test]
    fn json_contains_expected_fields() {
        let json = to_json(&sample()).unwrap();
        assert!(json.contains("\"name\": \"json-test\""));
        assert!(json.contains("Shop A"));
        assert!(json.contains("floor_height"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(from_json("{ not json"), Err(DsmError::Serde(_))));
        assert!(matches!(from_json("{}"), Err(DsmError::Serde(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trips-dsm-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let dsm = sample();
        save(&dsm, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.entity_count(), dsm.entity_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load("/definitely/not/a/real/path.json").is_err());
    }
}
