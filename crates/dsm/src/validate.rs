//! DSM validation: floorplan lints for the Space Modeler.
//!
//! Hand-traced floorplans contain predictable mistakes — doors drawn off
//! their wall, rooms accidentally overlapping, areas that no door reaches.
//! Each breaks a downstream layer silently (a dangling door disconnects the
//! walking graph; an unreachable shop can never be annotated). `validate`
//! finds them before a translation task is submitted.

use crate::entity::{EntityId, EntityKind};
use crate::model::DigitalSpaceModel;
use crate::semantic::RegionId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A door attached to fewer than two walkable areas connects nothing.
    DanglingDoor { door: EntityId, attached: usize },
    /// Two room interiors overlap (each contains the other's anchor).
    OverlappingRooms(EntityId, EntityId),
    /// A walkable area with no connection to the building's main component.
    UnreachableArea(EntityId),
    /// A semantic region whose backing entities are all non-walkable.
    RegionWithoutWalkableEntity(RegionId),
    /// A staircase spanning a single floor connects nothing vertically.
    SingleFloorStaircase(EntityId),
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationIssue::DanglingDoor { door, attached } => {
                write!(f, "door {door} attaches to {attached} area(s), needs 2")
            }
            ValidationIssue::OverlappingRooms(a, b) => {
                write!(f, "rooms {a} and {b} overlap")
            }
            ValidationIssue::UnreachableArea(e) => {
                write!(
                    f,
                    "walkable area {e} is unreachable from the main component"
                )
            }
            ValidationIssue::RegionWithoutWalkableEntity(r) => {
                write!(f, "region {r} has no walkable backing entity")
            }
            ValidationIssue::SingleFloorStaircase(e) => {
                write!(f, "staircase {e} spans a single floor")
            }
        }
    }
}

/// Validates a frozen DSM. Returns all detected issues (empty = clean).
///
/// # Panics
/// Panics if the DSM is not frozen (validation needs the topology).
pub fn validate(dsm: &DigitalSpaceModel) -> Vec<ValidationIssue> {
    let topo = dsm.topology().expect("validate requires a frozen DSM");
    let mut issues = Vec::new();

    // Dangling doors.
    for door in dsm.entities().filter(|e| e.kind == EntityKind::Door) {
        let attached = topo.areas_of_door(door.id).len();
        if attached < 2 {
            issues.push(ValidationIssue::DanglingDoor {
                door: door.id,
                attached,
            });
        }
    }

    // Overlapping rooms: same floor, each contains the other's interior
    // anchor (cheap but effective for traced rectangles; partial edge
    // overlaps register through the anchor of the smaller room).
    let rooms: Vec<_> = dsm
        .entities()
        .filter(|e| e.kind == EntityKind::Room)
        .collect();
    for (i, a) in rooms.iter().enumerate() {
        let Some(pa) = a.footprint.as_area() else {
            continue;
        };
        for b in &rooms[i + 1..] {
            if a.floor != b.floor {
                continue;
            }
            let Some(pb) = b.footprint.as_area() else {
                continue;
            };
            if !pa.bbox().intersects(&pb.bbox()) {
                continue;
            }
            if pa.contains(pb.interior_point()) || pb.contains(pa.interior_point()) {
                issues.push(ValidationIssue::OverlappingRooms(a.id, b.id));
            }
        }
    }

    // Reachability: areas form a graph through shared walking-graph nodes
    // (doors, staircase ports). The largest connected component is "the
    // building"; everything else is unreachable.
    let walkables: Vec<EntityId> = dsm
        .entities()
        .filter(|e| e.kind.is_walkable())
        .map(|e| e.id)
        .collect();
    if walkables.len() > 1 {
        // node index -> areas touching it.
        let mut node_areas: BTreeMap<usize, Vec<EntityId>> = BTreeMap::new();
        for (&area, nodes) in &topo.area_nodes {
            for &n in nodes {
                node_areas.entry(n).or_default().push(area);
            }
        }
        // BFS over areas.
        let mut component: BTreeMap<EntityId, usize> = BTreeMap::new();
        let mut next_comp = 0usize;
        for &start in &walkables {
            if component.contains_key(&start) {
                continue;
            }
            let comp = next_comp;
            next_comp += 1;
            let mut queue = VecDeque::from([start]);
            component.insert(start, comp);
            while let Some(area) = queue.pop_front() {
                let Some(nodes) = topo.area_nodes.get(&area) else {
                    continue;
                };
                for &n in nodes {
                    // Nodes are shared between areas; edges connect nodes.
                    let mut reach: BTreeSet<usize> = BTreeSet::from([n]);
                    for e in &topo.edges[n] {
                        reach.insert(e.to);
                    }
                    for r in reach {
                        if let Some(areas) = node_areas.get(&r) {
                            for &other in areas {
                                if let std::collections::btree_map::Entry::Vacant(v) =
                                    component.entry(other)
                                {
                                    v.insert(comp);
                                    queue.push_back(other);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Largest component wins.
        let mut sizes: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in component.values() {
            *sizes.entry(c).or_default() += 1;
        }
        if let Some((&main, _)) = sizes.iter().max_by_key(|(_, &n)| n) {
            for &area in &walkables {
                if component.get(&area) != Some(&main) {
                    issues.push(ValidationIssue::UnreachableArea(area));
                }
            }
        }
    }

    // Regions without walkable backing.
    for region in dsm.regions() {
        let any_walkable = region.entities.iter().any(|&e| {
            dsm.entity(e)
                .map(|ent| ent.kind.is_walkable())
                .unwrap_or(false)
        });
        if !any_walkable {
            issues.push(ValidationIssue::RegionWithoutWalkableEntity(region.id));
        }
    }

    // Single-floor staircases.
    for stair in dsm.entities().filter(|e| e.kind == EntityKind::Staircase) {
        if stair.floors().count() < 2 {
            issues.push(ValidationIssue::SingleFloorStaircase(stair.id));
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MallBuilder;
    use crate::entity::Entity;
    use crate::semantic::{SemanticRegion, SemanticTag};
    use trips_geom::{Point, Polygon};

    fn sq(x: f64, y: f64, w: f64) -> Polygon {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + w))
    }

    #[test]
    fn builder_mall_is_clean() {
        let dsm = MallBuilder::new().floors(3).shops_per_row(4).build();
        let issues = validate(&dsm);
        assert!(issues.is_empty(), "builder mall must validate: {issues:?}");
    }

    #[test]
    fn dangling_door_detected() {
        let mut dsm = MallBuilder::new().shops_per_row(2).build();
        let d = dsm.next_entity_id();
        dsm.add_entity(Entity::door(d, 0, "nowhere", Point::new(500.0, 500.0), 1.0))
            .unwrap();
        dsm.freeze();
        let issues = validate(&dsm);
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::DanglingDoor { door, attached: 0 } if *door == d)
        ));
    }

    #[test]
    fn overlapping_rooms_detected() {
        let mut dsm = DigitalSpaceModel::new("t");
        let a = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            a,
            EntityKind::Room,
            0,
            "A",
            sq(0.0, 0.0, 10.0),
        ))
        .unwrap();
        let b = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            b,
            EntityKind::Room,
            0,
            "B",
            sq(5.0, 5.0, 10.0),
        ))
        .unwrap();
        dsm.freeze();
        let issues = validate(&dsm);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::OverlappingRooms(x, y) if *x == a && *y == b)));
        // Different floors don't overlap.
        let mut dsm2 = DigitalSpaceModel::new("t2");
        let a2 = dsm2.next_entity_id();
        dsm2.add_entity(Entity::area(
            a2,
            EntityKind::Room,
            0,
            "A",
            sq(0.0, 0.0, 10.0),
        ))
        .unwrap();
        let b2 = dsm2.next_entity_id();
        dsm2.add_entity(Entity::area(
            b2,
            EntityKind::Room,
            1,
            "B",
            sq(5.0, 5.0, 10.0),
        ))
        .unwrap();
        dsm2.freeze();
        assert!(!validate(&dsm2)
            .iter()
            .any(|i| matches!(i, ValidationIssue::OverlappingRooms(..))));
    }

    #[test]
    fn unreachable_area_detected() {
        let mut dsm = MallBuilder::new().shops_per_row(2).build();
        let island = dsm.next_entity_id();
        dsm.add_entity(Entity::area(
            island,
            EntityKind::Room,
            0,
            "Island",
            sq(500.0, 500.0, 10.0),
        ))
        .unwrap();
        dsm.freeze();
        let issues = validate(&dsm);
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, ValidationIssue::UnreachableArea(e) if *e == island)),
            "island must be unreachable: {issues:?}"
        );
    }

    #[test]
    fn region_on_wall_detected() {
        let mut dsm = MallBuilder::new().shops_per_row(2).build();
        let wall = dsm.next_entity_id();
        dsm.add_entity(Entity::wall(
            wall,
            0,
            "w",
            trips_geom::Polyline::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]),
        ))
        .unwrap();
        let r = dsm.next_region_id();
        dsm.add_region(SemanticRegion::new(
            r,
            "Wall Region",
            SemanticTag::new("x", "shop"),
            0,
            sq(0.0, 0.0, 5.0),
            wall,
        ))
        .unwrap();
        dsm.freeze();
        let issues = validate(&dsm);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::RegionWithoutWalkableEntity(x) if *x == r)));
    }

    #[test]
    fn single_floor_staircase_detected() {
        let mut dsm = MallBuilder::new().shops_per_row(2).build();
        let s = dsm.next_entity_id();
        dsm.add_entity(Entity::staircase(s, "stub", sq(15.0, 9.0, 1.0), &[0]))
            .unwrap();
        dsm.freeze();
        let issues = validate(&dsm);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SingleFloorStaircase(x) if *x == s)));
    }

    #[test]
    fn issues_display() {
        let i = ValidationIssue::DanglingDoor {
            door: EntityId(3),
            attached: 1,
        };
        assert!(i.to_string().contains("e3"));
        assert!(ValidationIssue::UnreachableArea(EntityId(9))
            .to_string()
            .contains("unreachable"));
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn requires_frozen_dsm() {
        let dsm = DigitalSpaceModel::new("x");
        validate(&dsm);
    }
}
